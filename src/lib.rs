//! # ggpdes — GVT-Guided Demand-Driven Scheduling for PDES
//!
//! A from-scratch Rust reproduction of *GVT-Guided Demand-Driven Scheduling
//! in Parallel Discrete Event Simulation* (Eker, Timmerman, Williams, Chiu,
//! Ponomarev — ICPP 2021).
//!
//! The workspace provides:
//!
//! * [`pdes_core`] — the optimistic (Time Warp) engine: events, LPs,
//!   rollback, anti-messages, fossil collection, a sequential oracle;
//! * [`models`] — PHOLD (balanced + `1-k` imbalanced), SEIR epidemics with
//!   rotating lock-downs, and a vehicular traffic grid;
//! * [`machine`] — a deterministic simulator of a many-core machine
//!   (cores, SMT, CFS-like scheduling, affinity, virtual sync primitives);
//! * [`sim_rt`] — the six systems of the paper's evaluation running on the
//!   virtual machine, used to regenerate every figure at 256–4096-thread
//!   scale on any host;
//! * [`thread_rt`] — the same engine on real `std::thread`s with crossbeam
//!   queues, parking-lot semaphores, and `sched_setaffinity`;
//! * [`cons_rt`] — the conservative counterpart: Chandy–Misra–Bryant
//!   null-message synchronization on the same engine and thread chassis,
//!   switchable against the optimistic runtimes with one CLI flag;
//! * [`dist_rt`] — the engine partitioned into shards that exchange events
//!   over reliable TCP/memory links, driven by an asynchronous
//!   Mattern-style distributed GVT with checkpoint cuts and kill recovery;
//! * [`ingest`] — the client-facing external-event ingest plane: retrying
//!   admission clients, a framed TCP feeder, file/rate sources;
//! * [`metrics`] — committed-event-rate and GVT-timing reporting.
//!
//! ## Quickstart
//!
//! ```
//! use ggpdes::prelude::*;
//! use std::sync::Arc;
//!
//! // 8 simulation threads, 4 LPs each, 1-2 imbalanced PHOLD.
//! let threads = 8;
//! let model = Arc::new(Phold::new(PholdConfig::imbalanced(
//!     threads, 4, 2, 10.0, LocalityPattern::Linear,
//! )));
//! let engine = EngineConfig::default()
//!     .with_end_time(10.0)
//!     .with_gvt_interval(25)
//!     .with_zero_counter_threshold(100);
//!
//! // Run GG-PDES-Async on a small virtual machine…
//! let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
//! let rc = RunConfig::new(threads, engine.clone(), sys)
//!     .with_machine(MachineConfig::small(4, 2));
//! let result = run_sim(&model, &rc);
//!
//! // …and check it against the sequential oracle.
//! let oracle = run_sequential(&model, &engine, None);
//! assert_eq!(result.metrics.committed, oracle.committed);
//! assert_eq!(result.metrics.commit_digest, oracle.commit_digest);
//! println!("{:.0} committed events/s", result.metrics.committed_event_rate());
//! ```

pub use cons_rt;
pub use dist_rt;
pub use ingest;
pub use machine;
pub use metrics;
pub use models;
pub use pdes_core;
pub use sim_rt;
pub use telemetry;
pub use thread_rt;

/// The most commonly used items, re-exported.
pub mod prelude {
    pub use cons_rt::{run_cons, ConsError, ConsResult, ConsRunConfig};
    pub use dist_rt::{run_loopback, DistConfig, DistError, DistResult, Transport};
    pub use machine::{CostModel, Machine, MachineConfig};
    pub use metrics::{RunMetrics, Series, Table};
    pub use models::{
        ActivitySchedule, Burr, Epidemics, EpidemicsConfig, LocalityPattern, Phold, PholdConfig,
        Traffic, TrafficConfig,
    };
    pub use pdes_core::{
        run_sequential, AdaptiveGvt, DetRng, EngineConfig, Event, EventKey, FaultPlan, LpId, LpMap,
        MapKind, Model, Msg, SendCtx, SequentialResult, SimThreadId, StallDump, ThreadStats,
        VirtualTime,
    };
    pub use sim_rt::{
        run_sim, AffinityPolicy, GvtMode, RunConfig, Scheduler, SimCost, SimResult, SystemConfig,
    };
}
