//! `ggpdes` — command-line driver: run any model under any system
//! configuration on the virtual machine (deterministic) or on real threads.
//!
//! ```text
//! ggpdes --model phold|epidemics|traffic --system gg|dd|baseline
//!        [--gvt sync|async] [--affinity none|constant|dynamic]
//!        [--threads N] [--lps-per-thread N] [--imbalance K]
//!        [--end T] [--seed S] [--cores N] [--smt N]
//!        [--snapshot-period K] [--optimism-window W]
//!        [--gvt-interval N] [--gvt-max-no-change N]
//!        [--runtime vm|threads|dist|cons] [--verify] [--json] [--stats-json FILE]
//!        [--chaos-seed S] [--chaos-plan FILE.json] [--watchdog-secs T]
//!        [--checkpoint-every-gvt N] [--checkpoint-path FILE] [--max-recoveries N]
//!        [--shards N] [--transport mem|loopback|tcp]
//!        [--hb-interval-ms T] [--hb-miss N] [--degrade]
//!        [--kill-shard S:AT ...] [--partition FROM:TO:ROUNDS ...]
//!        [--join-at N] [--leave-at S:N]
//!        [--shard-id I --listen ADDR --connect ADDR ...] [--connect-timeout-secs T]
//!        [--trace-out FILE] [--trace-capacity N] [--round-stream FILE] [--gantt]
//!        [--ingest listen:ADDR|file:PATH|rate:N] [--ingest-journal PATH] [--ingest-replay]
//! ```
//!
//! Distributed runtime (`--runtime dist`): with only `--shards N` the whole
//! cluster runs loopback in this process (one thread per shard, `--transport`
//! selects memory or localhost-TCP links). With `--shard-id I --listen ADDR`
//! the process runs exactly one shard of a real multi-process cluster: shard
//! `I` listens on `ADDR`, dials one `--connect` address per lower shard
//! (the listen addresses of shards `0..I`, in order), and accepts the higher
//! shards. Shard 0 is the GVT coordinator and prints the final metrics;
//! workers exit 0 silently. `--connect-timeout-secs` bounds the mesh
//! handshake — a peer that never appears is a clean non-zero exit, not a
//! hang. On `dist`, `--chaos-seed` selects the per-link fault plan
//! (delay/drop/duplicate below the reliable layer) and
//! `--checkpoint-every-gvt` arms distributed checkpoint cuts.
//!
//! Elastic membership (loopback `dist` only): `--hb-interval-ms T` turns on
//! heartbeat failure detection (`--hb-miss N` intervals of silence declare a
//! peer dead); `--kill-shard S:AT` kills shard `S` at its `AT`th GVT publish
//! (repeatable) so the supervisor can exercise partial recovery;
//! `--partition FROM:TO:ROUNDS` silences one link direction for roughly
//! `ROUNDS` GVT rounds and lets retransmission heal it (repeatable);
//! `--join-at N` admits a new shard at the first checkpoint cut after the
//! `N`th publish; `--leave-at S:N` drains shard `S` out at a cut; and
//! `--degrade` shrinks the cluster around a dead shard instead of failing
//! once `--max-recoveries` is exhausted.
//!
//! Conservative runtime (`--runtime cons`): the same models and engine under
//! Chandy–Misra–Bryant null-message synchronization instead of Time Warp —
//! no speculation, no rollbacks, processing bounded by per-thread channel
//! clocks plus the model's declared lookahead (`Model::lookahead`, strictly
//! positive or the run is refused). The GVT round machinery runs unchanged
//! as periodic LBTS rounds, so `--verify`, `--stats-json`, telemetry, and
//! `--checkpoint-every-gvt` all work; `--chaos-*`, `--ingest`, and
//! `--max-recoveries` are optimistic/supervised-only and are rejected. The
//! emitted metrics carry `protocol: "conservative"`, `null_messages_sent`,
//! and `lbts_rounds` for cross-protocol comparison (see DESIGN.md §15).
//!
//! GVT cadence: `--gvt-interval N` sets the base round interval in main-loop
//! cycles (default 25); `--gvt-max-no-change N` enables the ROSS-style
//! "7 O'clock" backoff — after `N` consecutive rounds with an unchanged GVT
//! the effective interval doubles (capped at 64× the base) until GVT moves
//! again, so quiescent phases stop paying round costs. `0` (default)
//! disables the backoff.
//!
//! `--stats-json FILE` additionally writes the final `RunMetrics` of any
//! runtime to `FILE` as pretty-printed JSON (the same document `--json`
//! prints to stdout).
//!
//! Chaos harness: `--chaos-seed S` enables the default fault mix (delays,
//! reordering, straggler storms, backpressure) with deterministic decision
//! streams derived from `S`; `--chaos-plan FILE.json` loads a full
//! `FaultPlan` instead. `--watchdog-secs T` bounds GVT progress (wall-clock
//! seconds on `--runtime threads`, virtual seconds on `vm`; `0` disables) —
//! a stalled run exits with a per-thread diagnostic dump rather than
//! hanging.
//!
//! Telemetry: `--trace-out FILE` turns on per-thread tracing and writes a
//! Chrome `trace_event` JSON (load it at <https://ui.perfetto.dev> or
//! `chrome://tracing`); `--round-stream FILE` writes one JSON object per
//! GVT round (counter deltas, per-thread LVTs, queue depths);
//! `--trace-capacity N` sizes each thread's ring (records; rounded up to a
//! power of two; oldest records drop first); `--gantt` prints the Figure-1
//! style activity gantt derived from the trace's park spans. Any of these
//! flags enables collection on every runtime — `vm` traces virtual time,
//! `threads` wall time, `dist` merges per-shard wall clocks onto the
//! coordinator's. Telemetry is off (and costs nothing) by default.
//!
//! External-event ingest (`--runtime threads|dist`): `--ingest` attaches a
//! live admission gate to the running simulation and feeds it from one of
//! three sources — `listen:ADDR` serves the framed TCP ingest protocol
//! (see the `ingest` crate's `TcpEndpoint`/`IngestClient`), `file:PATH`
//! drives a JSONL script of `IngestRequest` lines through a retrying local
//! client, and `rate:N` synthesizes `N` seeded requests spread over the
//! run's horizon (`--model phold` only; other models carry structured
//! payloads — feed them with `file:`). Events stamped at or below the
//! committed GVT floor are rejected with the floor so clients can re-stamp
//! and retry; bounded queues answer `Busy`/`Shed` under overload.
//! `--ingest-journal PATH` makes admissions crash-durable (JSONL, one
//! record per accepted idempotency id; on loopback `dist` each shard `S`
//! journals to `PATH.sS`), and `--ingest-replay` recovers the journal at
//! startup and re-injects its suffix exactly once. Final admission
//! counters print to stderr; `--verify` checks the committed trace against
//! a sequential oracle fed the merged (seeded + accepted-ingest) stream.
//!
//! Recovery: `--checkpoint-every-gvt N` takes a GVT-aligned consistent cut
//! every `N` GVT rounds (written atomically to `--checkpoint-path` when
//! given) and runs under a supervisor that restores the newest cut after a
//! worker is lost, remapping its LPs onto the survivors. `--max-recoveries N`
//! (default 3) bounds the retries; on exhaustion the run degrades to the
//! sequential engine from the last cut and still completes.

use ggpdes::prelude::*;
use std::sync::Arc;

#[derive(Debug)]
struct Args {
    model: String,
    system: String,
    gvt: String,
    affinity: String,
    threads: usize,
    lps: usize,
    imbalance: usize,
    end: f64,
    seed: u64,
    cores: usize,
    smt: usize,
    snapshot_period: u32,
    optimism_window: Option<f64>,
    gvt_interval: u32,
    gvt_max_no_change: u32,
    runtime: String,
    verify: bool,
    json: bool,
    chaos_seed: Option<u64>,
    chaos_plan: Option<String>,
    watchdog_secs: Option<f64>,
    checkpoint_every_gvt: u64,
    checkpoint_path: Option<String>,
    max_recoveries: Option<u32>,
    stats_json: Option<String>,
    shards: usize,
    transport: String,
    hb_interval_ms: Option<f64>,
    hb_miss: Option<u32>,
    kill_shard: Vec<(usize, u64)>,
    partitions: Vec<(usize, usize, u64)>,
    join_at: Option<u64>,
    leave_at: Option<(usize, u64)>,
    degrade: bool,
    shard_id: Option<usize>,
    listen: Option<String>,
    connect: Vec<String>,
    connect_timeout_secs: f64,
    trace_out: Option<String>,
    trace_capacity: Option<usize>,
    round_stream: Option<String>,
    gantt: bool,
    ingest: Option<String>,
    ingest_journal: Option<String>,
    ingest_replay: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            model: "phold".into(),
            system: "gg".into(),
            gvt: "async".into(),
            affinity: "constant".into(),
            threads: 16,
            lps: 16,
            imbalance: 4,
            end: 8.0,
            seed: 0x5EED,
            cores: 8,
            smt: 2,
            snapshot_period: 1,
            optimism_window: None,
            gvt_interval: 25,
            gvt_max_no_change: 0,
            runtime: "vm".into(),
            verify: false,
            json: false,
            chaos_seed: None,
            chaos_plan: None,
            watchdog_secs: None,
            checkpoint_every_gvt: 0,
            checkpoint_path: None,
            max_recoveries: None,
            stats_json: None,
            shards: 2,
            transport: "tcp".into(),
            hb_interval_ms: None,
            hb_miss: None,
            kill_shard: Vec::new(),
            partitions: Vec::new(),
            join_at: None,
            leave_at: None,
            degrade: false,
            shard_id: None,
            listen: None,
            connect: Vec::new(),
            connect_timeout_secs: 10.0,
            trace_out: None,
            trace_capacity: None,
            round_stream: None,
            gantt: false,
            ingest: None,
            ingest_journal: None,
            ingest_replay: false,
        }
    }
}

/// Friendly fatal: usage / validation errors exit 2, runtime failures exit 1.
fn die(code: i32, msg: &str) -> ! {
    eprintln!("ggpdes: {msg}");
    std::process::exit(code);
}

/// Split a `:`-separated flag value into exactly `n` integer fields.
fn colon_fields(flag: &str, val: &str, n: usize) -> Vec<u64> {
    let parts: Vec<u64> = val
        .split(':')
        .map(|p| {
            p.parse()
                .unwrap_or_else(|e| die(2, &format!("{flag} '{val}': {e}")))
        })
        .collect();
    if parts.len() != n {
        die(
            2,
            &format!("{flag} '{val}': want {n} colon-separated fields"),
        );
    }
    parts
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match flag.as_str() {
            "--model" => a.model = val(),
            "--system" => a.system = val(),
            "--gvt" => a.gvt = val(),
            "--affinity" => a.affinity = val(),
            "--threads" => a.threads = val().parse().expect("--threads"),
            "--lps-per-thread" => a.lps = val().parse().expect("--lps-per-thread"),
            "--imbalance" => a.imbalance = val().parse().expect("--imbalance"),
            "--end" => a.end = val().parse().expect("--end"),
            "--seed" => a.seed = val().parse().expect("--seed"),
            "--cores" => a.cores = val().parse().expect("--cores"),
            "--smt" => a.smt = val().parse().expect("--smt"),
            "--snapshot-period" => a.snapshot_period = val().parse().expect("--snapshot-period"),
            "--optimism-window" => {
                a.optimism_window = Some(val().parse().expect("--optimism-window"))
            }
            "--gvt-interval" => {
                a.gvt_interval = val()
                    .parse()
                    .unwrap_or_else(|e| die(2, &format!("--gvt-interval: {e}")));
                if a.gvt_interval == 0 {
                    die(2, "--gvt-interval must be positive");
                }
            }
            "--gvt-max-no-change" => {
                a.gvt_max_no_change = val()
                    .parse()
                    .unwrap_or_else(|e| die(2, &format!("--gvt-max-no-change: {e}")))
            }
            "--runtime" => a.runtime = val(),
            "--verify" => a.verify = true,
            "--json" => a.json = true,
            "--chaos-seed" => a.chaos_seed = Some(val().parse().expect("--chaos-seed")),
            "--chaos-plan" => a.chaos_plan = Some(val()),
            "--watchdog-secs" => a.watchdog_secs = Some(val().parse().expect("--watchdog-secs")),
            "--checkpoint-every-gvt" => {
                a.checkpoint_every_gvt = val().parse().expect("--checkpoint-every-gvt")
            }
            "--checkpoint-path" => a.checkpoint_path = Some(val()),
            "--max-recoveries" => a.max_recoveries = Some(val().parse().expect("--max-recoveries")),
            "--stats-json" => a.stats_json = Some(val()),
            "--shards" => {
                a.shards = val()
                    .parse()
                    .unwrap_or_else(|e| die(2, &format!("--shards: {e}")))
            }
            "--transport" => a.transport = val(),
            "--hb-interval-ms" => {
                a.hb_interval_ms = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|e| die(2, &format!("--hb-interval-ms: {e}"))),
                )
            }
            "--hb-miss" => {
                a.hb_miss = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|e| die(2, &format!("--hb-miss: {e}"))),
                )
            }
            "--kill-shard" => {
                let f = colon_fields("--kill-shard", &val(), 2);
                a.kill_shard.push((f[0] as usize, f[1]));
            }
            "--partition" => {
                let f = colon_fields("--partition", &val(), 3);
                a.partitions.push((f[0] as usize, f[1] as usize, f[2]));
            }
            "--join-at" => {
                a.join_at = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|e| die(2, &format!("--join-at: {e}"))),
                )
            }
            "--leave-at" => {
                let f = colon_fields("--leave-at", &val(), 2);
                a.leave_at = Some((f[0] as usize, f[1]));
            }
            "--degrade" => a.degrade = true,
            "--shard-id" => {
                a.shard_id = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|e| die(2, &format!("--shard-id: {e}"))),
                )
            }
            "--listen" => a.listen = Some(val()),
            "--connect" => a.connect.push(val()),
            "--connect-timeout-secs" => {
                a.connect_timeout_secs = val()
                    .parse()
                    .unwrap_or_else(|e| die(2, &format!("--connect-timeout-secs: {e}")))
            }
            "--trace-out" => a.trace_out = Some(val()),
            "--trace-capacity" => {
                a.trace_capacity = Some(
                    val()
                        .parse()
                        .unwrap_or_else(|e| die(2, &format!("--trace-capacity: {e}"))),
                )
            }
            "--round-stream" => a.round_stream = Some(val()),
            "--gantt" => a.gantt = true,
            "--ingest" => a.ingest = Some(val()),
            "--ingest-journal" => a.ingest_journal = Some(val()),
            "--ingest-replay" => a.ingest_replay = true,
            "--help" | "-h" => {
                println!("see module docs: cargo doc --open -p ggpdes");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

fn system_of(a: &Args) -> SystemConfig {
    let scheduler = match a.system.as_str() {
        "gg" => Scheduler::GgPdes,
        "dd" => Scheduler::DdPdes,
        "baseline" => Scheduler::Baseline,
        s => panic!("unknown system '{s}' (gg|dd|baseline)"),
    };
    let gvt = match a.gvt.as_str() {
        "sync" => GvtMode::Sync,
        "async" => GvtMode::Async,
        s => panic!("unknown gvt mode '{s}' (sync|async)"),
    };
    let affinity = match a.affinity.as_str() {
        "none" => AffinityPolicy::NoAffinity,
        "constant" => AffinityPolicy::Constant,
        "dynamic" => AffinityPolicy::Dynamic,
        s => panic!("unknown affinity '{s}' (none|constant|dynamic)"),
    };
    SystemConfig::new(scheduler, gvt, affinity)
}

fn report(m: &RunMetrics, json: bool) {
    if json {
        println!("{}", serde_json::to_string_pretty(m).expect("serialize"));
        return;
    }
    println!("system                : {}", m.system);
    println!("threads               : {}", m.threads);
    println!("LPs                   : {}", m.lps);
    println!("committed events      : {}", m.committed);
    println!("processed events      : {}", m.processed);
    println!(
        "rolled back           : {} ({:.1}%)",
        m.rolled_back,
        m.rollback_ratio() * 100.0
    );
    println!(
        "committed event rate  : {:.0} events/s",
        m.committed_event_rate()
    );
    println!("GVT rounds            : {}", m.gvt_rounds);
    println!("GVT s/round (Σthreads): {:.6}", m.gvt_secs_per_round());
    println!("max de-scheduled      : {}", m.max_descheduled);
    if m.protocol == "conservative" {
        println!("protocol              : {}", m.protocol);
        println!("null messages sent    : {}", m.null_messages_sent);
        println!("LBTS rounds           : {}", m.lbts_rounds);
    }
    println!("wall seconds          : {:.4}", m.wall_secs);
}

/// Telemetry configuration implied by the CLI: any trace-consuming flag
/// switches collection on; otherwise it stays off (and free).
fn telemetry_cfg(a: &Args) -> telemetry::TelemetryConfig {
    if a.trace_out.is_none() && a.round_stream.is_none() && !a.gantt {
        return telemetry::TelemetryConfig::default();
    }
    match a.trace_capacity {
        Some(0) => die(2, "--trace-capacity must be positive"),
        Some(cap) => telemetry::TelemetryConfig::with_capacity(cap),
        None => telemetry::TelemetryConfig::on(),
    }
}

/// Write the trace artifacts the CLI asked for from the run's collected
/// telemetry (absent on runs that never produce one, e.g. worker shards).
fn emit_telemetry(a: &Args, data: &Option<telemetry::TelemetryData>, threads: usize) {
    if a.trace_out.is_none() && a.round_stream.is_none() && !a.gantt {
        return;
    }
    let Some(data) = data else {
        eprintln!("telemetry: no trace collected (run produced no telemetry)");
        return;
    };
    if data.total_dropped() > 0 {
        eprintln!(
            "telemetry: ring overflow dropped {} oldest record(s); raise --trace-capacity \
             for a longer window",
            data.total_dropped()
        );
    }
    if let Some(path) = &a.trace_out {
        let json = telemetry::chrome_trace_json(data);
        if let Err(e) = std::fs::write(path, json) {
            die(1, &format!("--trace-out {path}: {e}"));
        }
        eprintln!("telemetry: wrote Chrome trace to {path} (load at ui.perfetto.dev)");
    }
    if let Some(path) = &a.round_stream {
        let jsonl = telemetry::round_stream_jsonl(&data.rounds);
        if let Err(e) = std::fs::write(path, jsonl) {
            die(1, &format!("--round-stream {path}: {e}"));
        }
        eprintln!(
            "telemetry: wrote {} GVT round snapshot(s) to {path}",
            data.rounds.len()
        );
    }
    if a.gantt {
        let transitions = metrics::transitions_from_trace(data, threads);
        let horizon = metrics::trace_horizon(data);
        print!(
            "{}",
            metrics::render_gantt(&transitions, threads, horizon, 72)
        );
    }
}

/// Resolve the fault plan from `--chaos-plan` (full JSON) or `--chaos-seed`
/// (the default chaos mix); empty plan otherwise.
fn fault_plan(a: &Args) -> FaultPlan {
    if let Some(path) = &a.chaos_plan {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--chaos-plan {path}: {e}"));
        return serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("--chaos-plan {path}: bad FaultPlan JSON: {e}"));
    }
    if let Some(seed) = a.chaos_seed {
        return FaultPlan::chaos(seed);
    }
    FaultPlan::default()
}

/// What feeds the ingest gate, parsed from `--ingest`.
enum IngestSource {
    Listen(String),
    File(String),
    Rate(usize),
}

fn ingest_source(a: &Args) -> Option<IngestSource> {
    let spec = a.ingest.as_ref()?;
    Some(match spec.split_once(':') {
        Some(("listen", addr)) if !addr.is_empty() => IngestSource::Listen(addr.into()),
        Some(("file", path)) if !path.is_empty() => IngestSource::File(path.into()),
        Some(("rate", n)) => IngestSource::Rate(
            n.parse()
                .unwrap_or_else(|e| die(2, &format!("--ingest rate '{n}': {e}"))),
        ),
        _ => die(
            2,
            &format!("--ingest '{spec}': want listen:ADDR | file:PATH | rate:N"),
        ),
    })
}

/// Whether any ingest flag is active (a gate must be built and reported).
fn ingest_active(a: &Args) -> bool {
    a.ingest.is_some() || a.ingest_journal.is_some() || a.ingest_replay
}

/// Build one shard's gate: fresh, journaling, or recovered-with-replay.
/// `journal` already carries any per-shard suffix.
fn build_gate<M: Model>(
    a: &Args,
    shard: u64,
    journal: Option<&str>,
) -> Arc<pdes_core::IngestGate<M::Payload>> {
    use pdes_core::{IngestConfig, IngestGate};
    let cfg = IngestConfig::default();
    let gate = match journal {
        Some(path) if a.ingest_replay => {
            let (gate, replay) = IngestGate::recover(
                cfg,
                shard,
                std::path::Path::new(path),
                pdes_core::VirtualTime::ZERO,
            )
            .unwrap_or_else(|e| die(1, &format!("--ingest-replay: {e}")));
            if gate.accepted_count() > 0 {
                eprintln!(
                    "ingest: recovered {} accepted event(s) from {path}; {} staged for replay",
                    gate.accepted_count(),
                    replay.len()
                );
            }
            gate.stage_replay(replay);
            gate
        }
        Some(path) => IngestGate::with_journal(cfg, shard, std::path::Path::new(path))
            .unwrap_or_else(|e| die(1, &format!("--ingest-journal: {e}"))),
        None => IngestGate::new(cfg, shard),
    };
    Arc::new(gate)
}

/// The client-facing feeder attached to the entry gate, torn down by
/// [`finish_ingest`] after the run.
struct IngestPlane {
    server: Option<ingest::IngestServer>,
    feeder: Option<std::thread::JoinHandle<ingest::DriveReport>>,
}

/// Start the `--ingest` source against `gate`: a TCP server, a scripted
/// file driven through a retrying client, or seeded synthesis.
fn start_feeder<M: Model>(
    a: &Args,
    gate: &Arc<pdes_core::IngestGate<M::Payload>>,
    num_lps: u32,
    synth: Option<fn(u64) -> M::Payload>,
) -> IngestPlane {
    let mut plane = IngestPlane {
        server: None,
        feeder: None,
    };
    let Some(src) = ingest_source(a) else {
        return plane;
    };
    match src {
        IngestSource::Listen(addr) => {
            let server = ingest::IngestServer::spawn(Arc::clone(gate), &addr)
                .unwrap_or_else(|e| die(1, &format!("--ingest listen:{addr}: {e}")));
            eprintln!("ingest: serving external events on {}", server.addr());
            plane.server = Some(server);
        }
        IngestSource::File(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| die(2, &format!("--ingest file:{path}: {e}")));
            let script = ingest::parse_script::<M::Payload>(&text)
                .unwrap_or_else(|e| die(2, &format!("--ingest file:{path}: {e}")));
            eprintln!(
                "ingest: driving {} scripted request(s) from {path}",
                script.len()
            );
            plane.feeder = Some(spawn_driver(Arc::clone(gate), a.seed, script));
        }
        IngestSource::Rate(n) => {
            let Some(payload) = synth else {
                die(
                    2,
                    "--ingest rate:N synthesis is defined for --model phold; feed \
                     other models with file:PATH (JSON payloads)",
                )
            };
            let lo = pdes_core::VirtualTime::from_f64(a.end * 0.05)
                .ticks()
                .max(1);
            let hi = pdes_core::VirtualTime::from_f64(a.end * 0.85)
                .ticks()
                .max(lo + 1);
            let script = ingest::synth_requests(a.seed, 9, n, num_lps, lo, hi, payload);
            eprintln!("ingest: driving {n} synthesized request(s)");
            plane.feeder = Some(spawn_driver(Arc::clone(gate), a.seed, script));
        }
    }
    plane
}

/// A local retrying client on its own thread: re-stamps on `Rejected`,
/// backs off on `Busy`/`Shed`, gives up only after a generous budget.
fn spawn_driver<P: Clone + Send + 'static>(
    gate: Arc<pdes_core::IngestGate<P>>,
    seed: u64,
    script: Vec<pdes_core::IngestRequest<P>>,
) -> std::thread::JoinHandle<ingest::DriveReport> {
    std::thread::spawn(move || {
        let mut client = ingest::IngestClient::with_policy(
            ingest::local_endpoint(gate, std::time::Duration::from_secs(30)),
            seed,
            ingest::RetryPolicy {
                max_attempts: 64,
                ..ingest::RetryPolicy::default()
            },
        );
        ingest::drive(&mut client, script)
    })
}

/// Close the gates, land the feeder, and report admission counters.
fn finish_ingest<P>(plane: IngestPlane, gates: &[Arc<pdes_core::IngestGate<P>>]) {
    for g in gates {
        g.close();
    }
    if let Some(h) = plane.feeder {
        match h.join() {
            Ok(r) => eprintln!(
                "ingest: feeder: {} landed ({} duplicate), {} gave up, {} after close, \
                 {} transport-failed; {} attempt(s), {} re-stamp(s)",
                r.landed(),
                r.duplicate,
                r.gave_up,
                r.closed,
                r.transport_failed,
                r.attempts,
                r.restamped
            ),
            Err(_) => eprintln!("ingest: feeder thread panicked"),
        }
    }
    if let Some(s) = plane.server {
        s.shutdown();
    }
    let mut t = pdes_core::IngestStats::default();
    for g in gates {
        let s = g.stats();
        t.submitted += s.submitted;
        t.admitted += s.admitted;
        t.rejected += s.rejected;
        t.busy += s.busy;
        t.shed += s.shed;
        t.duplicate += s.duplicate;
        t.replayed += s.replayed;
    }
    eprintln!(
        "ingest: {} submitted, {} admitted, {} rejected, {} busy, {} shed, \
         {} duplicate, {} replayed",
        t.submitted, t.admitted, t.rejected, t.busy, t.shed, t.duplicate, t.replayed
    );
}

/// Report a run that degraded to the sequential engine (no `RunMetrics` —
/// the parallel attempt was abandoned), verify it if asked, and exit 0.
fn finish_degraded<M: Model>(
    seq: &SequentialResult,
    model: &Arc<M>,
    ecfg: &EngineConfig,
    a: &Args,
    extra: &[pdes_core::Event<M::Payload>],
) -> ! {
    if a.verify {
        let oracle = if extra.is_empty() {
            run_sequential(model, ecfg, None)
        } else {
            pdes_core::run_sequential_with(model, ecfg, extra, None)
        };
        assert_eq!(
            seq.commit_digest, oracle.commit_digest,
            "degraded run diverged from the sequential oracle!"
        );
        eprintln!("verify: committed trace matches the sequential oracle ✓");
    }
    if a.json {
        println!(
            "{{\"degraded\":true,\"committed\":{},\"commit_digest\":{}}}",
            seq.committed, seq.commit_digest
        );
    } else {
        println!("degraded to sequential     : yes");
        println!("committed events           : {}", seq.committed);
        println!("commit digest              : {:#018x}", seq.commit_digest);
    }
    std::process::exit(0);
}

/// The distributed runtime: loopback cluster by default, or one shard of a
/// real multi-process mesh when `--shard-id`/`--listen`/`--connect` are
/// given. Returns the coordinator's metrics plus merged telemetry; worker
/// shards exit 0 here.
fn run_dist<M: Model>(
    model: &Arc<M>,
    ecfg: &EngineConfig,
    a: &Args,
    synth: Option<fn(u64) -> M::Payload>,
    ingest_accepted: &mut Vec<pdes_core::Event<M::Payload>>,
) -> (RunMetrics, Option<telemetry::TelemetryData>) {
    use ggpdes::dist_rt::{self, DistError};
    use std::net::ToSocketAddrs;
    use std::time::Duration;

    if a.shards == 0 {
        die(2, "--shards must be at least 1");
    }
    let transport = match a.transport.as_str() {
        // "loopback" is an alias for the in-process memory transport.
        "mem" | "loopback" => dist_rt::Transport::Mem,
        "tcp" => dist_rt::Transport::Tcp,
        other => die(
            2,
            &format!("unknown transport '{other}' (mem|loopback|tcp)"),
        ),
    };
    let watchdog = match a.watchdog_secs {
        Some(s) if s <= 0.0 => None,
        Some(s) => Some(Duration::from_secs_f64(s)),
        None => Some(Duration::from_secs(30)),
    };
    if a.connect_timeout_secs.is_nan() || a.connect_timeout_secs <= 0.0 {
        die(2, "--connect-timeout-secs must be positive");
    }
    // Either heartbeat knob switches the failure detector on; the other
    // keeps its default.
    let heartbeat = (a.hb_interval_ms.is_some() || a.hb_miss.is_some()).then(|| {
        let mut hb = dist_rt::HeartbeatConfig::default();
        if let Some(ms) = a.hb_interval_ms {
            if ms <= 0.0 || ms.is_nan() {
                die(2, "--hb-interval-ms must be positive");
            }
            hb.interval = Duration::from_secs_f64(ms / 1e3);
        }
        if let Some(miss) = a.hb_miss {
            if miss == 0 {
                die(2, "--hb-miss must be at least 1");
            }
            hb.miss_threshold = miss;
        }
        hb
    });
    for &(from, to, _) in &a.partitions {
        if from >= a.shards || to >= a.shards || from == to {
            die(2, &format!("--partition {from}:{to}: bad shard pair"));
        }
    }
    for &(s, _) in &a.kill_shard {
        if s == 0 || s >= a.shards {
            die(
                2,
                &format!("--kill-shard {s}: not a worker shard (1..{})", a.shards),
            );
        }
    }
    if let Some((s, _)) = a.leave_at {
        if s == 0 || s >= a.shards {
            die(
                2,
                &format!("--leave-at {s}: not a worker shard (1..{})", a.shards),
            );
        }
    }
    let dcfg = dist_rt::DistConfig {
        shards: a.shards,
        transport,
        link_faults: a.chaos_seed.map(pdes_core::LinkFaultPlan::chaos),
        kills: a.kill_shard.clone(),
        heartbeat,
        partitions: a.partitions.clone(),
        join_at: a.join_at,
        leave_at: a.leave_at,
        max_recoveries: a.max_recoveries.unwrap_or(0),
        degrade: a.degrade,
        ckpt_every_rounds: a.checkpoint_every_gvt,
        watchdog,
        mesh_timeout: Duration::from_secs_f64(a.connect_timeout_secs),
        telemetry: telemetry_cfg(a),
        ..dist_rt::DistConfig::default()
    };

    let shards_initial = a.shards;
    let finish = move |r: dist_rt::DistResult| -> (RunMetrics, Option<telemetry::TelemetryData>) {
        if r.recoveries > 0 {
            eprintln!(
                "dist: completed after {} recovery(ies){} ({} partial)",
                r.recoveries,
                if r.used_checkpoint {
                    " from a checkpoint cut"
                } else {
                    " by replaying from the start"
                },
                r.partial_recoveries
            );
        }
        if r.membership_epoch > 0 {
            eprintln!(
                "dist: membership epoch {} — cluster reshaped {} -> {} shard(s)",
                r.membership_epoch, shards_initial, r.shards_final
            );
        }
        (r.metrics, r.telemetry)
    };
    let fail = |what: &str, e: DistError| -> ! {
        match e {
            DistError::ConnectTimeout { shard, detail } => die(
                1,
                &format!("{what}: shard {shard} mesh handshake timed out ({detail})"),
            ),
            e => die(1, &format!("{what}: {e}")),
        }
    };

    let multi_process = a.shard_id.is_some() || a.listen.is_some() || !a.connect.is_empty();
    let elastic = !a.kill_shard.is_empty()
        || !a.partitions.is_empty()
        || a.join_at.is_some()
        || a.leave_at.is_some()
        || a.degrade
        || dcfg.heartbeat.is_some();
    if multi_process && elastic {
        die(
            2,
            "elastic-membership flags (--kill-shard/--partition/--join-at/--leave-at/\
             --degrade/--hb-*) need the loopback supervisor; drop --shard-id/--listen/--connect",
        );
    }
    if !multi_process {
        // Loopback: the whole cluster in this process, one thread per shard.
        // With ingest active, every shard gets a gate (shard `s` journals to
        // `PATH.s{s}`); the feeder enters at shard 0 and the mesh forwards
        // each submission to the shard owning its destination LP.
        let gates = ingest_active(a).then(|| -> dist_rt::IngestGates<M> {
            (0..a.shards)
                .map(|s| {
                    let journal = a.ingest_journal.as_ref().map(|p| format!("{p}.s{s}"));
                    build_gate::<M>(a, s as u64, journal.as_deref())
                })
                .collect()
        });
        let plane = gates
            .as_ref()
            .map(|gs| start_feeder::<M>(a, &gs[0], model.num_lps() as u32, synth));
        let res = match &gates {
            Some(gs) => {
                dist_rt::run_loopback_ingest(Arc::clone(model), ecfg, &dcfg, Some(gs.clone()))
            }
            None => dist_rt::run_loopback(Arc::clone(model), ecfg, &dcfg),
        };
        if let (Some(p), Some(gs)) = (plane, &gates) {
            finish_ingest(p, gs);
            let mut evs: Vec<_> = gs.iter().flat_map(|g| g.accepted_events()).collect();
            evs.sort_by_key(|e| e.key);
            *ingest_accepted = evs;
        }
        return match res {
            Ok(r) => finish(r),
            Err(e) => fail("dist loopback", e),
        };
    }

    let shard = a.shard_id.unwrap_or_else(|| {
        die(
            2,
            "--listen/--connect need --shard-id (which shard is this process?)",
        )
    });
    if shard >= a.shards {
        die(
            2,
            &format!("--shard-id {shard} out of range for --shards {}", a.shards),
        );
    }
    let listen = a
        .listen
        .clone()
        .unwrap_or_else(|| die(2, &format!("shard {shard} needs --listen ADDR")));
    if listen
        .to_socket_addrs()
        .map(|mut i| i.next())
        .ok()
        .flatten()
        .is_none()
    {
        die(
            2,
            &format!("--listen '{listen}' is not a valid endpoint (want HOST:PORT)"),
        );
    }
    if a.connect.len() != shard {
        die(
            2,
            &format!(
                "shard {shard} needs exactly {shard} --connect address(es) — the \
                 listen addresses of shards 0..{shard}, in order — got {}",
                a.connect.len()
            ),
        );
    }
    for addr in &a.connect {
        if addr
            .to_socket_addrs()
            .map(|mut i| i.next())
            .ok()
            .flatten()
            .is_none()
        {
            die(
                2,
                &format!("--connect '{addr}' is not a valid endpoint (want HOST:PORT)"),
            );
        }
    }
    let opts = dist_rt::ProcessOpts {
        shards: a.shards,
        shard,
        listen,
        connect: a.connect.clone(),
        dcfg,
    };
    // Multi-process: this shard's own gate and feeder — each shard process
    // may run its own `--ingest listen:` front door.
    let gate =
        ingest_active(a).then(|| build_gate::<M>(a, shard as u64, a.ingest_journal.as_deref()));
    let plane = gate
        .as_ref()
        .map(|g| start_feeder::<M>(a, g, model.num_lps() as u32, synth));
    if gate.is_some() && a.verify {
        eprintln!(
            "warning: --verify on a multi-process shard sees only this shard's \
             admissions; events ingested at peers will fail the oracle check"
        );
    }
    let res = dist_rt::run_shard_process_ingest(Arc::clone(model), ecfg, &opts, gate.clone());
    if let (Some(p), Some(g)) = (plane, &gate) {
        finish_ingest(p, std::slice::from_ref(g));
        *ingest_accepted = g.accepted_events();
    }
    match res {
        Ok(Some(r)) => finish(r),
        Ok(None) => std::process::exit(0), // worker shard: coordinator reports
        Err(e) => fail(&format!("dist shard {shard}"), e),
    }
}

fn run<M: Model>(model: Arc<M>, a: &Args, synth: Option<fn(u64) -> M::Payload>) {
    if ingest_active(a) {
        if a.ingest_replay && a.ingest_journal.is_none() {
            die(2, "--ingest-replay needs --ingest-journal PATH");
        }
        if a.runtime == "vm" {
            die(
                2,
                "--ingest needs --runtime threads|dist (the vm is scripted; \
                 see sim_rt::run_sim_ingest)",
            );
        }
    }
    let ecfg = EngineConfig::default()
        .with_end_time(a.end)
        .with_seed(a.seed)
        .with_gvt_interval(a.gvt_interval)
        .with_gvt_max_no_change(a.gvt_max_no_change)
        .with_zero_counter_threshold(250)
        .with_snapshot_period(a.snapshot_period)
        .with_optimism_window(a.optimism_window);
    let sys = system_of(a);
    // Checkpointing or an explicit retry budget opts the run into the
    // supervisor (which also needs checkpoints to recover from, so a bare
    // --max-recoveries enables a per-round cut).
    let supervised = a.checkpoint_every_gvt > 0 || a.max_recoveries.is_some();
    let ckpt_every = if supervised {
        a.checkpoint_every_gvt.max(1)
    } else {
        0
    };
    let sup = pdes_core::SupervisorConfig::new(a.max_recoveries.unwrap_or(3));
    let tcfg = telemetry_cfg(a);
    // Events admitted by the ingest plane, if one was attached: the verify
    // oracle must be fed the merged (seeded + accepted-ingest) stream.
    let mut ingest_accepted: Vec<pdes_core::Event<M::Payload>> = Vec::new();

    let (metrics, tel) = match a.runtime.as_str() {
        "vm" => {
            let mut mc = if a.smt == 4 {
                MachineConfig {
                    num_cores: a.cores,
                    ..Default::default()
                }
            } else {
                MachineConfig::small(a.cores, a.smt)
            };
            mc.quantum = 50_000;
            let watchdog_ns = match a.watchdog_secs {
                Some(s) if s <= 0.0 => None,
                Some(s) => Some((s * 1e9) as u64),
                None => Some(10_000_000_000),
            };
            let mut rc = sim_rt::RunConfig::new(a.threads, ecfg.clone(), sys)
                .with_machine(mc)
                .with_faults(fault_plan(a))
                .with_watchdog_ns(watchdog_ns)
                .with_checkpoint_every(ckpt_every)
                .with_telemetry(tcfg.clone());
            if let Some(p) = &a.checkpoint_path {
                rc = rc.with_checkpoint_path(p.into());
            }
            if supervised {
                let s = sim_rt::run_sim_supervised(&model, &rc, &sup);
                for line in &s.log {
                    eprintln!("supervisor: {line}");
                }
                if s.recoveries > 0 {
                    eprintln!("supervisor: completed after {} recovery(ies)", s.recoveries);
                }
                match s.outcome {
                    sim_rt::VmRecovered::Parallel(r) => (r.metrics, r.telemetry),
                    sim_rt::VmRecovered::Sequential(seq) => {
                        finish_degraded(&seq, &model, &ecfg, a, &[])
                    }
                }
            } else {
                let r = sim_rt::run_sim(&model, &rc);
                if let Some(dump) = &r.stall {
                    eprintln!("{dump}");
                    std::process::exit(1);
                }
                if !r.completed {
                    eprintln!("warning: virtual time limit hit before completion");
                }
                (r.metrics, r.telemetry)
            }
        }
        "threads" => {
            let watchdog = match a.watchdog_secs {
                Some(s) if s <= 0.0 => None,
                Some(s) => Some(std::time::Duration::from_secs_f64(s)),
                None => Some(std::time::Duration::from_secs(30)),
            };
            let mut rc = thread_rt::RtRunConfig::new(a.threads, ecfg.clone(), sys)
                .with_faults(fault_plan(a))
                .with_watchdog(watchdog)
                .with_checkpoint_every(ckpt_every)
                .with_telemetry(tcfg.clone());
            if let Some(p) = &a.checkpoint_path {
                rc = rc.with_checkpoint_path(p.into());
            }
            let gate = ingest_active(a).then(|| build_gate::<M>(a, 0, a.ingest_journal.as_deref()));
            let plane = gate
                .as_ref()
                .map(|g| start_feeder::<M>(a, g, model.num_lps() as u32, synth));
            if supervised {
                let s = thread_rt::run_supervised_ingest(&model, &rc, &sup, gate.clone());
                for line in &s.log {
                    eprintln!("supervisor: {line}");
                }
                if s.recoveries > 0 {
                    eprintln!("supervisor: completed after {} recovery(ies)", s.recoveries);
                }
                // Land the feeder and report admission counters before any
                // exit path (the degraded branch never returns).
                if let (Some(p), Some(g)) = (plane, &gate) {
                    finish_ingest(p, std::slice::from_ref(g));
                    ingest_accepted = g.accepted_events();
                }
                match s.outcome {
                    thread_rt::Recovered::Parallel(r) => (r.metrics, r.telemetry),
                    thread_rt::Recovered::Sequential(seq) => {
                        finish_degraded(&seq, &model, &ecfg, a, &ingest_accepted)
                    }
                }
            } else {
                let res = match &gate {
                    Some(g) => thread_rt::run_threads_ingest(&model, &rc, Arc::clone(g)),
                    None => thread_rt::run_threads(&model, &rc),
                };
                if let (Some(p), Some(g)) = (plane, &gate) {
                    finish_ingest(p, std::slice::from_ref(g));
                    ingest_accepted = g.accepted_events();
                }
                match res {
                    Ok(r) => (r.metrics, r.telemetry),
                    Err(err) => {
                        eprintln!("{err}");
                        std::process::exit(1);
                    }
                }
            }
        }
        "dist" => run_dist(&model, &ecfg, a, synth, &mut ingest_accepted),
        "cons" => {
            // The conservative runtime never rolls back, so the optimistic
            // escape hatches make no sense on it: chaos plans hold messages
            // back (an unrecoverable causality break without rollback),
            // ingest admits events against a GVT floor the conservative
            // bound has already passed, and the supervisor restarts from
            // optimistic attempt state.
            if a.chaos_seed.is_some() || a.chaos_plan.is_some() {
                die(
                    2,
                    "--chaos-* needs an optimistic runtime (cons cannot roll back)",
                );
            }
            if ingest_active(a) {
                die(
                    2,
                    "--ingest needs --runtime threads|dist (cons has no admission floor)",
                );
            }
            if a.max_recoveries.is_some() {
                die(2, "--max-recoveries needs --runtime vm|threads|dist");
            }
            let watchdog = match a.watchdog_secs {
                Some(s) if s <= 0.0 => None,
                Some(s) => Some(std::time::Duration::from_secs_f64(s)),
                None => Some(std::time::Duration::from_secs(30)),
            };
            let mut rc = ConsRunConfig::new(a.threads, ecfg.clone(), sys)
                .with_watchdog(watchdog)
                .with_checkpoint_every(ckpt_every)
                .with_telemetry(tcfg.clone());
            if let Some(p) = &a.checkpoint_path {
                rc = rc.with_checkpoint_path(p.into());
            }
            match run_cons(&model, &rc) {
                Ok(r) => (r.metrics, r.telemetry),
                Err(err) => {
                    eprintln!("{err}");
                    let code = if matches!(err, ConsError::ZeroLookahead { .. }) {
                        2
                    } else {
                        1
                    };
                    std::process::exit(code);
                }
            }
        }
        other => die(
            2,
            &format!("unknown runtime '{other}' (vm|threads|dist|cons)"),
        ),
    };

    if a.verify {
        let (oracle, what) = if ingest_accepted.is_empty() {
            (run_sequential(&model, &ecfg, None), "sequential")
        } else {
            (
                pdes_core::run_sequential_with(&model, &ecfg, &ingest_accepted, None),
                "merged-stream sequential",
            )
        };
        assert_eq!(
            metrics.commit_digest, oracle.commit_digest,
            "run diverged from the {what} oracle!"
        );
        eprintln!("verify: committed trace matches the {what} oracle ✓");
    }
    report(&metrics, a.json);
    emit_telemetry(a, &tel, metrics.threads);
    if let Some(path) = &a.stats_json {
        let text = serde_json::to_string_pretty(&metrics).expect("serialize metrics");
        if let Err(e) = std::fs::write(path, text) {
            die(1, &format!("--stats-json {path}: {e}"));
        }
    }
}

fn main() {
    let a = parse_args();
    match a.model.as_str() {
        "phold" => {
            let cfg = if a.imbalance <= 1 {
                PholdConfig::balanced(a.threads, a.lps)
            } else {
                PholdConfig::imbalanced(
                    a.threads,
                    a.lps,
                    a.imbalance,
                    a.end,
                    LocalityPattern::Linear,
                )
            };
            // PHOLD's unit payload is synthesizable, so `--ingest rate:N`
            // works without a script.
            run(Arc::new(Phold::new(cfg)), &a, Some(|_| ()));
        }
        "epidemics" => {
            let cfg = EpidemicsConfig::new(a.threads, a.lps, a.imbalance.max(2), a.end);
            run(Arc::new(Epidemics::new(cfg)), &a, None);
        }
        "traffic" => {
            let mut cfg = TrafficConfig::new(a.threads, a.lps, 0.5);
            cfg.mapping = MapKind::Block;
            run(Arc::new(Traffic::new(cfg)), &a, None);
        }
        other => panic!("unknown model '{other}' (phold|epidemics|traffic)"),
    }
}
