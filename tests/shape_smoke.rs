//! Shape smoke tests: the paper's headline qualitative results must hold at
//! test scale. These are the fast gate on the reproduction; the full curves
//! come from `cargo run --release -p ggpdes-bench --bin repro`.

use ggpdes::prelude::*;
use std::sync::Arc;

fn rate(model: &Arc<Phold>, threads: usize, sys: SystemConfig, machine: MachineConfig) -> f64 {
    let ecfg = EngineConfig::default()
        .with_end_time(8.0)
        .with_seed(42)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250);
    let rc = RunConfig::new(threads, ecfg, sys).with_machine(machine);
    let r = sim_rt::run_sim(model, &rc);
    assert!(r.completed, "{} did not complete", sys.name());
    r.metrics.committed_event_rate()
}

fn imbalanced(threads: usize, k: usize, pattern: LocalityPattern) -> Arc<Phold> {
    let mut cfg = PholdConfig::imbalanced(threads, 16, k, 8.0, pattern);
    cfg.lookahead = 0.02;
    cfg.mean_delay = 0.08;
    Arc::new(Phold::new(cfg))
}

/// §6.2–§6.3: on over-subscribed imbalanced PHOLD, GG-PDES-Async beats both
/// baselines and DD-PDES.
#[test]
fn gg_wins_on_oversubscribed_imbalanced_phold() {
    let machine = MachineConfig::small(4, 2); // 8 hw threads
    let threads = 32; // 4× over-subscribed
    let model = imbalanced(threads, 4, LocalityPattern::Linear);
    let gg = rate(&model, threads, SystemConfig::ALL_SIX[5], machine.clone());
    let dd = rate(&model, threads, SystemConfig::ALL_SIX[3], machine.clone());
    let base_sync = rate(&model, threads, SystemConfig::ALL_SIX[0], machine.clone());
    let base_async = rate(&model, threads, SystemConfig::ALL_SIX[1], machine);
    assert!(gg > base_sync, "GG {gg:.0} vs Baseline-Sync {base_sync:.0}");
    assert!(
        gg > base_async,
        "GG {gg:.0} vs Baseline-Async {base_async:.0}"
    );
    assert!(gg > dd, "GG {gg:.0} vs DD {dd:.0}");
}

/// §6.6 / Fig. 7b: under non-linear (strided) locality, dynamic affinity
/// beats constant affinity decisively.
#[test]
fn dynamic_affinity_beats_constant_on_strided_locality() {
    let machine = MachineConfig::small(4, 2);
    let threads = 32;
    let model = imbalanced(threads, 4, LocalityPattern::Strided);
    let mk = |p| SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, p);
    let dynamic = rate(
        &model,
        threads,
        mk(AffinityPolicy::Dynamic),
        machine.clone(),
    );
    let constant = rate(&model, threads, mk(AffinityPolicy::Constant), machine);
    assert!(
        dynamic > constant * 1.5,
        "dynamic {dynamic:.0} must clearly beat constant {constant:.0}"
    );
}

/// Fig. 7a: under linear locality, dynamic affinity stays within a small
/// factor of constant affinity (the paper reports a 0.5% penalty).
#[test]
fn dynamic_affinity_competitive_on_linear_locality() {
    let machine = MachineConfig::small(4, 2);
    let threads = 32;
    let model = imbalanced(threads, 4, LocalityPattern::Linear);
    let mk = |p| SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, p);
    let dynamic = rate(
        &model,
        threads,
        mk(AffinityPolicy::Dynamic),
        machine.clone(),
    );
    let constant = rate(&model, threads, mk(AffinityPolicy::Constant), machine);
    assert!(
        dynamic > constant * 0.7,
        "dynamic {dynamic:.0} must stay near constant {constant:.0}"
    );
}

/// §6.1 / Fig. 2: on balanced PHOLD the GG machinery costs almost nothing.
#[test]
fn gg_overhead_is_small_on_balanced_phold() {
    let machine = MachineConfig::small(4, 2);
    let threads = 8; // exactly the hardware
    let mut cfg = PholdConfig::balanced(threads, 16);
    cfg.lookahead = 0.02;
    cfg.mean_delay = 0.08;
    let model = Arc::new(Phold::new(cfg));
    let gg = rate(&model, threads, SystemConfig::ALL_SIX[5], machine.clone());
    let base = rate(&model, threads, SystemConfig::ALL_SIX[1], machine);
    let overhead = (base - gg) / base;
    assert!(
        overhead < 0.10,
        "GG overhead on balanced PHOLD is {:.1}% (paper: ≤ ~5%)",
        overhead * 100.0
    );
}

/// §6.2: GVT rounds must be far cheaper under GG than under the baseline
/// when the model is imbalanced and over-subscribed.
#[test]
fn gg_accelerates_gvt_rounds() {
    let machine = MachineConfig::small(4, 2);
    let threads = 32;
    let model = imbalanced(threads, 4, LocalityPattern::Linear);
    let ecfg = EngineConfig::default()
        .with_end_time(8.0)
        .with_seed(42)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250);
    let run = |sys| {
        let rc = RunConfig::new(threads, ecfg.clone(), sys).with_machine(machine.clone());
        sim_rt::run_sim(&model, &rc).metrics
    };
    let gg = run(SystemConfig::ALL_SIX[5]);
    let base = run(SystemConfig::ALL_SIX[1]);
    assert!(
        gg.gvt_secs_per_round() < base.gvt_secs_per_round(),
        "GG {:.6}s/round vs baseline {:.6}s/round",
        gg.gvt_secs_per_round(),
        base.gvt_secs_per_round()
    );
    assert!(gg.max_descheduled > 0);
    assert_eq!(base.max_descheduled, 0);
}

/// §6.2: the demand-driven system executes fewer total instructions (work
/// units) than the baseline on imbalanced workloads.
#[test]
fn gg_executes_less_work() {
    let machine = MachineConfig::small(4, 2);
    let threads = 32;
    let model = imbalanced(threads, 8, LocalityPattern::Linear);
    let ecfg = EngineConfig::default()
        .with_end_time(8.0)
        .with_seed(42)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250);
    let run = |sys| {
        let rc = RunConfig::new(threads, ecfg.clone(), sys).with_machine(machine.clone());
        sim_rt::run_sim(&model, &rc).metrics.total_work
    };
    let gg = run(SystemConfig::ALL_SIX[5]);
    let base = run(SystemConfig::ALL_SIX[1]);
    assert!(gg < base, "GG work {gg} vs baseline {base}");
}
