//! Property-based tests over the whole stack: random workload parameters,
//! random seeds — the Time Warp invariants must hold every time.

use ggpdes::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_phold() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    // (threads, lps_per_thread, groups k, seed)
    (
        2usize..=8,
        2usize..=6,
        prop::sample::select(vec![1usize, 2, 4]),
        any::<u64>(),
    )
        .prop_filter("threads divisible by groups", |(t, _, k, _)| t % k == 0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Any PHOLD configuration, any seed: the virtual-machine run commits
    /// exactly the sequential trace and GVT never regresses.
    #[test]
    fn vm_matches_oracle_on_random_phold((threads, lps, k, seed) in arb_phold()) {
        let end = 6.0;
        let cfg = if k == 1 {
            PholdConfig::balanced(threads, lps)
        } else {
            PholdConfig::imbalanced(threads, lps, k, end, LocalityPattern::Linear)
        };
        let model = Arc::new(Phold::new(cfg));
        let ecfg = EngineConfig::default()
            .with_end_time(end)
            .with_seed(seed)
            .with_gvt_interval(15)
            .with_zero_counter_threshold(60);
        let oracle = run_sequential(&model, &ecfg, None);
        let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
        let rc = RunConfig::new(threads, ecfg, sys).with_machine(MachineConfig::small(2, 2));
        let r = sim_rt::run_sim(&model, &rc);
        prop_assert!(r.completed);
        prop_assert_eq!(r.gvt_regressions, 0);
        prop_assert_eq!(r.metrics.committed, oracle.committed);
        prop_assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
        prop_assert_eq!(r.digests, oracle.state_digests);
    }

    /// Determinism: the same configuration twice gives bit-identical metrics.
    #[test]
    fn vm_runs_are_deterministic(seed in any::<u64>()) {
        let threads = 4;
        let model = Arc::new(Phold::new(PholdConfig::imbalanced(
            threads, 4, 2, 5.0, LocalityPattern::Linear,
        )));
        let ecfg = EngineConfig::default()
            .with_end_time(5.0)
            .with_seed(seed)
            .with_gvt_interval(15)
            .with_zero_counter_threshold(60);
        let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Sync, AffinityPolicy::Constant);
        let rc = RunConfig::new(threads, ecfg, sys).with_machine(MachineConfig::small(2, 2));
        let a = sim_rt::run_sim(&model, &rc);
        let b = sim_rt::run_sim(&model, &rc);
        prop_assert_eq!(a.metrics, b.metrics);
        prop_assert_eq!(a.report.virtual_ns, b.report.virtual_ns);
    }

    /// The sequential oracle is insensitive to the LP→thread mapping (it is
    /// a property of the model + seed only).
    #[test]
    fn oracle_ignores_mapping(seed in any::<u64>()) {
        let model = Arc::new(Phold::new(PholdConfig::balanced(4, 4)));
        let a = run_sequential(
            &model,
            &EngineConfig::default().with_end_time(4.0).with_seed(seed),
            None,
        );
        let b = run_sequential(
            &model,
            &EngineConfig::default()
                .with_end_time(4.0)
                .with_seed(seed)
                .with_mapping(MapKind::Block),
            None,
        );
        prop_assert_eq!(a.commit_digest, b.commit_digest);
        prop_assert_eq!(a.state_digests, b.state_digests);
    }

    /// Burr sampling respects its CDF at every quantile.
    #[test]
    fn burr_quantiles_invert(u in 0.0001f64..0.9999) {
        let b = Burr::TRAVEL_TIME;
        let x = b.quantile(u);
        prop_assert!((b.cdf(x) - u).abs() < 1e-6);
    }

    /// Virtual time conversion preserves ordering.
    #[test]
    fn virtual_time_order_preserved(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let (va, vb) = (VirtualTime::from_f64(a), VirtualTime::from_f64(b));
        if a < b && (b - a) > 1e-5 {
            prop_assert!(va < vb);
        }
        if (a - b).abs() < 1e-9 {
            prop_assert_eq!(va, vb);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Sparse state saving and bounded optimism are pure optimizations: for
    /// any snapshot period and window, the committed trace equals the
    /// classical configuration's (and the oracle's).
    #[test]
    fn snapshot_period_and_window_preserve_trace(
        seed in any::<u64>(),
        period in 1u32..12,
        window in prop::option::of(0.5f64..4.0),
    ) {
        let threads = 4;
        let model = Arc::new(Phold::new(PholdConfig::imbalanced(
            threads, 4, 2, 5.0, LocalityPattern::Linear,
        )));
        let ecfg = EngineConfig::default()
            .with_end_time(5.0)
            .with_seed(seed)
            .with_gvt_interval(15)
            .with_zero_counter_threshold(60)
            .with_snapshot_period(period)
            .with_optimism_window(window);
        let oracle = run_sequential(&model, &ecfg, None);
        let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
        let rc = RunConfig::new(threads, ecfg, sys).with_machine(MachineConfig::small(2, 2));
        let r = sim_rt::run_sim(&model, &rc);
        prop_assert!(r.completed);
        prop_assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
        prop_assert_eq!(r.digests, oracle.state_digests);
    }

    /// Random *safe* fault plans (delivery delays, adversarial reordering,
    /// straggler storms): GVT never regresses, the run completes, and the
    /// committed trace still equals the sequential oracle's.
    #[test]
    fn gvt_never_regresses_under_random_fault_plans(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        delay in 0.0f64..0.35,
        reorder in 0.0f64..1.0,
        straggler in 0.0f64..0.15,
    ) {
        let threads = 4;
        let model = Arc::new(Phold::new(PholdConfig::imbalanced(
            threads, 4, 2, 5.0, LocalityPattern::Linear,
        )));
        let ecfg = EngineConfig::default()
            .with_end_time(5.0)
            .with_seed(seed)
            .with_gvt_interval(15)
            .with_zero_counter_threshold(60);
        let oracle = run_sequential(&model, &ecfg, None);
        let plan = FaultPlan {
            seed: fault_seed,
            delay: Some(ggpdes::pdes_core::DelayFault { prob: delay }),
            reorder: Some(ggpdes::pdes_core::ReorderFault { prob: reorder }),
            straggler: Some(ggpdes::pdes_core::StragglerFault {
                prob: straggler,
                max_storms: 8,
            }),
            ..FaultPlan::default()
        };
        let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
        let rc = RunConfig::new(threads, ecfg, sys)
            .with_machine(MachineConfig::small(2, 2))
            .with_faults(plan);
        let r = sim_rt::run_sim(&model, &rc);
        prop_assert!(r.completed, "stalled under a safe plan: {:?}", r.stall);
        prop_assert_eq!(r.gvt_regressions, 0);
        prop_assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
        prop_assert_eq!(r.digests, oracle.state_digests);
    }
}
