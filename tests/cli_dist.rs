//! End-to-end tests of the `ggpdes` binary's distributed runtime: the
//! loopback launcher, the real multi-process `--listen/--connect` mesh,
//! `--stats-json`, and the friendly failure modes (malformed endpoints,
//! a peer that never connects) — all bounded, none may hang.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::{Duration, Instant};

use serde::Value;

const BIN: &str = env!("CARGO_BIN_EXE_ggpdes");

/// Pull a string field out of a parsed metrics document.
fn str_field<'a>(v: &'a Value, key: &str) -> &'a str {
    match v.get(key) {
        Some(Value::String(s)) => s,
        other => panic!("field {key}: want a string, got {other:?}"),
    }
}

/// Pull an unsigned field out of a parsed metrics document.
fn uint_field(v: &Value, key: &str) -> u64 {
    match v.get(key) {
        Some(Value::UInt(n)) => *n,
        Some(Value::Int(n)) if *n >= 0 => *n as u64,
        other => panic!("field {key}: want an unsigned number, got {other:?}"),
    }
}

fn run_bounded(args: &[&str], limit: Duration) -> Output {
    let t0 = Instant::now();
    let mut child = Command::new(BIN)
        .args(args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn ggpdes");
    loop {
        if let Some(_status) = child.try_wait().expect("wait") {
            return child.wait_with_output().expect("collect output");
        }
        assert!(
            t0.elapsed() < limit,
            "ggpdes {args:?} still running after {limit:?} — it must exit cleanly"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Grab a free localhost port by binding port 0 and dropping the listener.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind")
        .local_addr()
        .expect("addr")
        .port()
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ggpdes-cli-{name}-{}", std::process::id()));
    p
}

#[test]
fn loopback_dist_run_verifies_and_writes_stats_json() {
    let stats = tmp_path("loopback.json");
    let out = run_bounded(
        &[
            "--runtime",
            "dist",
            "--shards",
            "2",
            "--transport",
            "mem",
            "--threads",
            "4",
            "--lps-per-thread",
            "4",
            "--imbalance",
            "1",
            "--end",
            "6",
            "--verify",
            "--stats-json",
            stats.to_str().unwrap(),
        ],
        Duration::from_secs(60),
    );
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&stats).expect("stats file written");
    std::fs::remove_file(&stats).ok();
    let v = serde_json::parse(&text).expect("valid JSON");
    assert_eq!(str_field(&v, "system"), "GG-PDES-Dist");
    assert_eq!(
        uint_field(&v, "threads"),
        2,
        "one metrics 'thread' per shard"
    );
    assert!(uint_field(&v, "committed") > 0);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("matches the sequential oracle"),
        "--verify must have checked the oracle, stderr: {err}"
    );
}

#[test]
fn two_process_tcp_cluster_matches_between_launches() {
    let (p0, p1) = (free_port(), free_port());
    let l0 = format!("127.0.0.1:{p0}");
    let l1 = format!("127.0.0.1:{p1}");
    let common = [
        "--runtime",
        "dist",
        "--shards",
        "2",
        "--threads",
        "4",
        "--lps-per-thread",
        "4",
        "--imbalance",
        "1",
        "--end",
        "5",
    ];
    let mut w_args: Vec<&str> = common.to_vec();
    w_args.extend(["--shard-id", "1", "--listen", &l1, "--connect", &l0]);
    let worker = Command::new(BIN)
        .args(&w_args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn worker shard");
    let mut c_args: Vec<&str> = common.to_vec();
    c_args.extend(["--shard-id", "0", "--listen", &l0, "--verify", "--json"]);
    let coord = run_bounded(&c_args, Duration::from_secs(60));
    let worker_out = worker.wait_with_output().expect("worker exits");
    assert!(
        coord.status.success(),
        "coordinator stderr: {}",
        String::from_utf8_lossy(&coord.stderr)
    );
    assert!(
        worker_out.status.success(),
        "worker stderr: {}",
        String::from_utf8_lossy(&worker_out.stderr)
    );
    let v = serde_json::parse(&String::from_utf8_lossy(&coord.stdout)).expect("json");
    assert_eq!(str_field(&v, "system"), "GG-PDES-Dist");
    assert!(uint_field(&v, "committed") > 0);
}

#[test]
fn malformed_endpoints_are_a_friendly_exit_2() {
    for (what, args) in [
        (
            "bad listen",
            vec![
                "--shard-id",
                "1",
                "--listen",
                "not-an-endpoint",
                "--connect",
                "127.0.0.1:1",
            ],
        ),
        (
            "bad connect",
            vec![
                "--shard-id",
                "1",
                "--listen",
                "127.0.0.1:0",
                "--connect",
                "bogus:::",
            ],
        ),
        (
            "missing connect",
            vec!["--shard-id", "1", "--listen", "127.0.0.1:0"],
        ),
        ("listen without shard id", vec!["--listen", "127.0.0.1:0"]),
    ] {
        let mut full = vec!["--runtime", "dist", "--shards", "2", "--end", "2"];
        full.extend(args);
        let out = run_bounded(&full, Duration::from_secs(30));
        assert_eq!(out.status.code(), Some(2), "{what}: want exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.starts_with("ggpdes: "),
            "{what}: friendly message, got {err}"
        );
    }
}

#[test]
fn never_connecting_peer_exits_nonzero_within_the_timeout() {
    // A port nobody listens on: the mesh handshake must give up at the
    // configured deadline with a clean error, never hang.
    let dead = format!("127.0.0.1:{}", free_port());
    let listen = format!("127.0.0.1:{}", free_port());
    let t0 = Instant::now();
    let out = run_bounded(
        &[
            "--runtime",
            "dist",
            "--shards",
            "2",
            "--shard-id",
            "1",
            "--listen",
            &listen,
            "--connect",
            &dead,
            "--connect-timeout-secs",
            "2",
            "--end",
            "2",
        ],
        Duration::from_secs(30),
    );
    assert_eq!(out.status.code(), Some(1), "timeout is a runtime failure");
    assert!(
        t0.elapsed() < Duration::from_secs(15),
        "must exit near the 2s deadline, took {:?}",
        t0.elapsed()
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("timed out"),
        "mention the handshake timeout, got: {err}"
    );
}
