//! Cross-runtime correctness: for each model, a sequential run, a
//! virtual-machine run, and a real-thread run must all commit exactly the
//! same event trace and leave every LP in the same final state.

use ggpdes::prelude::*;
use std::sync::Arc;

fn engine(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(123)
        .with_gvt_interval(20)
        .with_zero_counter_threshold(100)
}

fn check_model<M: Model>(model: Arc<M>, threads: usize, ecfg: EngineConfig, label: &str) {
    let oracle = run_sequential(&model, &ecfg, None);
    assert!(oracle.committed > 0, "{label}: empty oracle run");

    // Virtual machine, flagship system.
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
    let rc = RunConfig::new(threads, ecfg.clone(), sys).with_machine(MachineConfig::small(4, 2));
    let vm = sim_rt::run_sim(&model, &rc);
    assert!(vm.completed, "{label}: vm run did not complete");
    assert_eq!(
        vm.metrics.committed, oracle.committed,
        "{label}: vm committed"
    );
    assert_eq!(
        vm.metrics.commit_digest, oracle.commit_digest,
        "{label}: vm digest"
    );
    assert_eq!(vm.digests, oracle.state_digests, "{label}: vm states");

    // Real threads.
    let rt_rc = thread_rt::RtRunConfig::new(threads, ecfg, sys);
    let rt = thread_rt::run_threads(&model, &rt_rc).expect("run completes");
    assert_eq!(
        rt.metrics.committed, oracle.committed,
        "{label}: rt committed"
    );
    assert_eq!(
        rt.metrics.commit_digest, oracle.commit_digest,
        "{label}: rt digest"
    );
    assert_eq!(rt.digests, oracle.state_digests, "{label}: rt states");
}

#[test]
fn phold_agrees_across_runtimes() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        8.0,
        LocalityPattern::Linear,
    )));
    check_model(model, threads, engine(8.0), "phold");
}

#[test]
fn epidemics_agrees_across_runtimes() {
    let threads = 4;
    let mut cfg = EpidemicsConfig::new(threads, 8, 4, 8.0);
    cfg.incubation_mean = 0.1;
    cfg.infectious_mean = 0.5;
    let model = Arc::new(Epidemics::new(cfg));
    check_model(model, threads, engine(8.0), "epidemics");
}

#[test]
fn traffic_agrees_across_runtimes() {
    let threads = 4;
    let mut cfg = TrafficConfig::new(threads, 8, 0.5);
    cfg.travel_scale = 0.3;
    let model = Arc::new(Traffic::new(cfg));
    let ecfg = engine(5.0).with_mapping(MapKind::Block);
    check_model(model, threads, ecfg, "traffic");
}

#[test]
fn every_system_agrees_on_every_model_via_vm() {
    let threads = 4;
    let ecfg = engine(5.0);
    let phold: Arc<Phold> = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        4,
        5.0,
        LocalityPattern::Strided,
    )));
    let oracle = run_sequential(&phold, &ecfg, None);
    for sys in SystemConfig::ALL_SIX {
        let rc =
            RunConfig::new(threads, ecfg.clone(), sys).with_machine(MachineConfig::small(2, 2));
        let r = sim_rt::run_sim(&phold, &rc);
        assert_eq!(
            r.metrics.commit_digest,
            oracle.commit_digest,
            "{}",
            sys.name()
        );
        assert_eq!(r.gvt_regressions, 0, "{}", sys.name());
    }
}

#[test]
fn dynamic_affinity_preserves_correctness() {
    let threads = 8;
    let ecfg = engine(6.0);
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        4,
        6.0,
        LocalityPattern::Strided,
    )));
    let oracle = run_sequential(&model, &ecfg, None);
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Dynamic);
    let rc = RunConfig::new(threads, ecfg, sys).with_machine(MachineConfig::small(4, 2));
    let r = sim_rt::run_sim(&model, &rc);
    assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
}

#[test]
fn adaptive_gvt_preserves_trace_and_increases_round_frequency() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::balanced(threads, 8)));
    // A long run with a deliberately sparse static interval: each thread
    // executes ~800 main-loop cycles, so the static policy barely rounds
    // while the adaptive one (4× under high pressure) rounds repeatedly.
    let base = EngineConfig::default()
        .with_end_time(800.0)
        .with_seed(31)
        .with_gvt_interval(1000)
        .with_zero_counter_threshold(10000);
    let adaptive = base
        .clone()
        .with_adaptive_gvt(Some(AdaptiveGvt::new(50, 100)));
    let oracle = run_sequential(&model, &base, None);

    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
    let run = |ecfg: EngineConfig| {
        let rc = RunConfig::new(threads, ecfg, sys).with_machine(MachineConfig::small(2, 2));
        sim_rt::run_sim(&model, &rc)
    };
    let r_static = run(base);
    let r_adaptive = run(adaptive);
    // Same committed trace either way — adaptivity is a pure policy change.
    assert_eq!(r_static.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(r_adaptive.metrics.commit_digest, oracle.commit_digest);
    // Under memory pressure the adaptive policy runs more rounds.
    assert!(
        r_adaptive.metrics.gvt_rounds > r_static.metrics.gvt_rounds,
        "adaptive {} rounds vs static {}",
        r_adaptive.metrics.gvt_rounds,
        r_static.metrics.gvt_rounds
    );
}
