//! Cross-runtime correctness: for each model, a sequential run, a
//! virtual-machine run, a real-thread run, and a conservative (null-message)
//! run must all commit exactly the same event trace and leave every LP in
//! the same final state.

use ggpdes::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn engine(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(123)
        .with_gvt_interval(20)
        .with_zero_counter_threshold(100)
}

fn check_model<M: Model>(model: Arc<M>, threads: usize, ecfg: EngineConfig, label: &str) {
    let oracle = run_sequential(&model, &ecfg, None);
    assert!(oracle.committed > 0, "{label}: empty oracle run");

    // Virtual machine, flagship system.
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
    let rc = RunConfig::new(threads, ecfg.clone(), sys).with_machine(MachineConfig::small(4, 2));
    let vm = sim_rt::run_sim(&model, &rc);
    assert!(vm.completed, "{label}: vm run did not complete");
    assert_eq!(
        vm.metrics.committed, oracle.committed,
        "{label}: vm committed"
    );
    assert_eq!(
        vm.metrics.commit_digest, oracle.commit_digest,
        "{label}: vm digest"
    );
    assert_eq!(vm.digests, oracle.state_digests, "{label}: vm states");

    // Real threads.
    let rt_rc = thread_rt::RtRunConfig::new(threads, ecfg, sys);
    let rt = thread_rt::run_threads(&model, &rt_rc).expect("run completes");
    assert_eq!(
        rt.metrics.committed, oracle.committed,
        "{label}: rt committed"
    );
    assert_eq!(
        rt.metrics.commit_digest, oracle.commit_digest,
        "{label}: rt digest"
    );
    assert_eq!(rt.digests, oracle.state_digests, "{label}: rt states");
}

/// The conservative runtime must commit the oracle's exact trace too — and,
/// unlike the optimistic runtimes, must do it without a single rollback:
/// every event it processes is already safe.
fn check_cons<M: Model>(model: Arc<M>, threads: usize, ecfg: EngineConfig, label: &str) {
    let oracle = run_sequential(&model, &ecfg, None);
    assert!(oracle.committed > 0, "{label}: empty oracle run");
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
    let rc = ConsRunConfig::new(threads, ecfg, sys);
    let r = run_cons(&model, &rc).unwrap_or_else(|e| panic!("{label}: cons run failed: {e}"));
    assert_eq!(
        r.metrics.committed, oracle.committed,
        "{label}: cons committed"
    );
    assert_eq!(
        r.metrics.commit_digest, oracle.commit_digest,
        "{label}: cons digest"
    );
    assert_eq!(r.digests, oracle.state_digests, "{label}: cons states");
    assert_eq!(r.metrics.rolled_back, 0, "{label}: cons rolled back");
    assert_eq!(r.metrics.protocol, "conservative", "{label}: protocol tag");
    assert!(
        r.metrics.null_messages_sent > 0,
        "{label}: no null messages"
    );
}

#[test]
fn phold_agrees_across_runtimes() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        8.0,
        LocalityPattern::Linear,
    )));
    check_model(model, threads, engine(8.0), "phold");
}

#[test]
fn epidemics_agrees_across_runtimes() {
    let threads = 4;
    let mut cfg = EpidemicsConfig::new(threads, 8, 4, 8.0);
    cfg.incubation_mean = 0.1;
    cfg.infectious_mean = 0.5;
    let model = Arc::new(Epidemics::new(cfg));
    check_model(model, threads, engine(8.0), "epidemics");
}

#[test]
fn traffic_agrees_across_runtimes() {
    let threads = 4;
    let mut cfg = TrafficConfig::new(threads, 8, 0.5);
    cfg.travel_scale = 0.3;
    let model = Arc::new(Traffic::new(cfg));
    let ecfg = engine(5.0).with_mapping(MapKind::Block);
    check_model(model, threads, ecfg, "traffic");
}

#[test]
fn every_system_agrees_on_every_model_via_vm() {
    let threads = 4;
    let ecfg = engine(5.0);
    let phold: Arc<Phold> = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        4,
        5.0,
        LocalityPattern::Strided,
    )));
    let oracle = run_sequential(&phold, &ecfg, None);
    for sys in SystemConfig::ALL_SIX {
        let rc =
            RunConfig::new(threads, ecfg.clone(), sys).with_machine(MachineConfig::small(2, 2));
        let r = sim_rt::run_sim(&phold, &rc);
        assert_eq!(
            r.metrics.commit_digest,
            oracle.commit_digest,
            "{}",
            sys.name()
        );
        assert_eq!(r.gvt_regressions, 0, "{}", sys.name());
    }
}

#[test]
fn dynamic_affinity_preserves_correctness() {
    let threads = 8;
    let ecfg = engine(6.0);
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        4,
        6.0,
        LocalityPattern::Strided,
    )));
    let oracle = run_sequential(&model, &ecfg, None);
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Dynamic);
    let rc = RunConfig::new(threads, ecfg, sys).with_machine(MachineConfig::small(4, 2));
    let r = sim_rt::run_sim(&model, &rc);
    assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
}

#[test]
fn cons_phold_agrees_with_oracle_at_2_and_4_threads() {
    for threads in [2, 4] {
        let model = Arc::new(Phold::new(PholdConfig::imbalanced(
            threads,
            4,
            2,
            8.0,
            LocalityPattern::Linear,
        )));
        check_cons(model, threads, engine(8.0), &format!("phold-t{threads}"));
    }
}

#[test]
fn cons_epidemics_agrees_with_oracle_at_2_and_4_threads() {
    for threads in [2, 4] {
        // Lock-down groups must divide the thread count, so the rotation
        // schedule scales with the run instead of pinning it to 4 threads.
        let mut cfg = EpidemicsConfig::new(threads, 8, threads, 8.0);
        cfg.incubation_mean = 0.1;
        cfg.infectious_mean = 0.5;
        let model = Arc::new(Epidemics::new(cfg));
        check_cons(
            model,
            threads,
            engine(8.0),
            &format!("epidemics-t{threads}"),
        );
    }
}

#[test]
fn cons_traffic_agrees_with_oracle_at_2_and_4_threads() {
    for threads in [2, 4] {
        let mut cfg = TrafficConfig::new(threads, 8, 0.5);
        cfg.travel_scale = 0.3;
        let model = Arc::new(Traffic::new(cfg));
        let ecfg = engine(5.0).with_mapping(MapKind::Block);
        check_cons(model, threads, ecfg, &format!("traffic-t{threads}"));
    }
}

/// A workload built to hold GVT still: LP 0 receives `burst` events that all
/// carry the *same* timestamp, so processing them one by one (batch size 1)
/// leaves the pending-set minimum — and therefore GVT — frozen for `burst`
/// consecutive cycles. One event per burst respawns the next burst a whole
/// time unit later. Other threads own no LPs with work and park.
struct Burst {
    threads: usize,
    burst: u32,
    /// Bursts stop respawning at this virtual time so the run terminates.
    last_spawn: f64,
}

impl Model for Burst {
    type State = u64;
    /// `true` on exactly one event per burst: the one that spawns the next.
    type Payload = bool;

    fn num_lps(&self) -> usize {
        self.threads
    }
    fn init_state(&self, _lp: LpId) -> u64 {
        0
    }
    fn init_events(&self, lp: LpId, _state: &mut u64, ctx: &mut SendCtx<'_, bool>) {
        if lp == LpId(0) {
            for i in 0..self.burst {
                ctx.send(lp, 1.0, i == 0);
            }
        }
    }
    fn handle_event(&self, lp: LpId, state: &mut u64, spawn: &bool, ctx: &mut SendCtx<'_, bool>) {
        *state += 1;
        // Burn ~20µs of wall clock per event so processing is slow relative
        // to a GVT round and the frantic static cadence below actually fits
        // many rounds inside one burst (virtual time is untouched).
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_micros(20) {
            std::hint::spin_loop();
        }
        if *spawn && ctx.now().as_f64() < self.last_spawn {
            for i in 0..self.burst {
                ctx.send(lp, 1.0, i == 0);
            }
        }
    }
    fn state_digest(&self, state: &u64) -> u64 {
        let mut s = *state ^ 0x51D3_7A0B;
        pdes_core::rng::splitmix64(&mut s)
    }
    fn lookahead(&self) -> f64 {
        1.0
    }
}

#[test]
fn gvt_backoff_reduces_rounds_and_preserves_trace() {
    let threads = 4;
    let model = Arc::new(Burst {
        threads,
        burst: 256,
        last_spawn: 3.5,
    });
    // The most frantic static cadence: a round proposed every cycle, one
    // event per cycle — so within a burst every round recomputes the same
    // GVT. The backoff (`gvt_max_no_change`) widens the interval on exactly
    // those no-progress rounds.
    let base = EngineConfig::default()
        .with_end_time(6.0)
        .with_seed(7)
        .with_gvt_interval(1)
        .with_batch_size(1)
        .with_zero_counter_threshold(100);
    let backoff = base.clone().with_gvt_max_no_change(1);
    let oracle = run_sequential(&model, &base, None);
    assert!(oracle.committed >= 1024, "burst model under-generates");

    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
    let run = |ecfg: EngineConfig| {
        let rc = thread_rt::RtRunConfig::new(threads, ecfg, sys);
        thread_rt::run_threads(&model, &rc).expect("run completes")
    };
    let r_static = run(base);
    let r_backoff = run(backoff);
    // The backoff is a pure cadence policy: the committed trace is bit-for-
    // bit the oracle's either way.
    assert_eq!(r_static.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(r_backoff.metrics.commit_digest, oracle.commit_digest);
    // And it exists to *skip* no-progress rounds: within each burst the
    // static cadence burns roughly one round per event while the backoff
    // widens geometrically, so the gap is large, not marginal.
    assert!(
        r_backoff.metrics.gvt_rounds * 2 < r_static.metrics.gvt_rounds,
        "backoff {} rounds vs static {}",
        r_backoff.metrics.gvt_rounds,
        r_static.metrics.gvt_rounds
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]
    /// Chandy–Misra–Bryant's deadlock-avoidance promise, checked end to
    /// end: any strictly positive lookahead — however small — lets the
    /// conservative runtime finish (no cyclic wait survives a positive
    /// clock advance) and commit the oracle's exact trace. The watchdog
    /// bound turns a liveness bug into a test failure instead of a hang.
    #[test]
    fn cons_positive_lookahead_never_deadlocks(
        seed in 0u64..u64::MAX / 2,
        la in 0.01f64..1.0,
        threads in prop::sample::select(vec![2usize, 4]),
    ) {
        let mut cfg = PholdConfig::balanced(threads, 4);
        cfg.lookahead = la;
        let model = Arc::new(Phold::new(cfg));
        let ecfg = engine(4.0).with_seed(seed);
        let oracle = run_sequential(&model, &ecfg, None);
        let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
        let rc = ConsRunConfig::new(threads, ecfg, sys)
            .with_watchdog(Some(Duration::from_secs(60)));
        let r = run_cons(&model, &rc)
            .unwrap_or_else(|e| panic!("lookahead {la}: {e}"));
        prop_assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
        prop_assert_eq!(r.metrics.rolled_back, 0);
    }
}

#[test]
fn adaptive_gvt_preserves_trace_and_increases_round_frequency() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::balanced(threads, 8)));
    // A long run with a deliberately sparse static interval: each thread
    // executes ~800 main-loop cycles, so the static policy barely rounds
    // while the adaptive one (4× under high pressure) rounds repeatedly.
    let base = EngineConfig::default()
        .with_end_time(800.0)
        .with_seed(31)
        .with_gvt_interval(1000)
        .with_zero_counter_threshold(10000);
    let adaptive = base
        .clone()
        .with_adaptive_gvt(Some(AdaptiveGvt::new(50, 100)));
    let oracle = run_sequential(&model, &base, None);

    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
    let run = |ecfg: EngineConfig| {
        let rc = RunConfig::new(threads, ecfg, sys).with_machine(MachineConfig::small(2, 2));
        sim_rt::run_sim(&model, &rc)
    };
    let r_static = run(base);
    let r_adaptive = run(adaptive);
    // Same committed trace either way — adaptivity is a pure policy change.
    assert_eq!(r_static.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(r_adaptive.metrics.commit_digest, oracle.commit_digest);
    // Under memory pressure the adaptive policy runs more rounds.
    assert!(
        r_adaptive.metrics.gvt_rounds > r_static.metrics.gvt_rounds,
        "adaptive {} rounds vs static {}",
        r_adaptive.metrics.gvt_rounds,
        r_static.metrics.gvt_rounds
    );
}

/// The zero-allocation hot path is a pure mechanism change: pooled event
/// storage, sparse state saving (`snapshot_period > 1` + coast-forward),
/// and batched inter-thread sends must be digest-invisible on every model
/// and every runtime. The full matrix — phold/epidemics/traffic ×
/// {thread-rt 2/4, cons-rt 2, dist-rt 2-shard} — runs under the hot-path
/// configuration (`snapshot_period = 8`) and must commit the oracle's
/// exact trace.
#[test]
fn sparse_hot_path_matrix_agrees_with_oracle() {
    fn check_matrix<M: Model>(model: Arc<M>, ecfg: EngineConfig, label: &str) {
        let oracle = run_sequential(&model, &ecfg, None);
        assert!(oracle.committed > 0, "{label}: empty oracle run");
        let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);

        for threads in [2usize, 4] {
            let rc = thread_rt::RtRunConfig::new(threads, ecfg.clone(), sys);
            let r = thread_rt::run_threads(&model, &rc).expect("rt run completes");
            assert_eq!(
                r.metrics.commit_digest, oracle.commit_digest,
                "{label}: thread-rt {threads} digest"
            );
            assert_eq!(
                r.digests, oracle.state_digests,
                "{label}: thread-rt {threads} states"
            );
        }

        let rc = ConsRunConfig::new(2, ecfg.clone(), sys);
        let r = run_cons(&model, &rc).unwrap_or_else(|e| panic!("{label}: cons: {e}"));
        assert_eq!(
            r.metrics.commit_digest, oracle.commit_digest,
            "{label}: cons-rt 2 digest"
        );
        assert_eq!(r.metrics.rolled_back, 0, "{label}: cons-rt rolled back");

        let dcfg = dist_rt::DistConfig {
            shards: 2,
            transport: dist_rt::Transport::Mem,
            gvt_interval_cycles: 16,
            wave_interval_cycles: 2,
            ..dist_rt::DistConfig::default()
        };
        let r = dist_rt::run_loopback(Arc::clone(&model), &ecfg, &dcfg)
            .unwrap_or_else(|e| panic!("{label}: dist: {e}"));
        assert_eq!(
            r.metrics.commit_digest, oracle.commit_digest,
            "{label}: dist-rt 2-shard digest"
        );
        let states: Vec<u64> = r.state_digests.iter().map(|(_, d)| *d).collect();
        assert_eq!(
            states, oracle.state_digests,
            "{label}: dist-rt 2-shard states"
        );
    }

    let sparse = engine(6.0).with_snapshot_period(8);

    let phold = Arc::new(Phold::new(PholdConfig::imbalanced(
        4,
        4,
        2,
        6.0,
        LocalityPattern::Linear,
    )));
    check_matrix(phold, sparse.clone(), "phold");

    let mut ecfg = EpidemicsConfig::new(4, 8, 4, 6.0);
    ecfg.incubation_mean = 0.1;
    ecfg.infectious_mean = 0.5;
    check_matrix(Arc::new(Epidemics::new(ecfg)), sparse.clone(), "epidemics");

    let mut tcfg = TrafficConfig::new(4, 8, 0.5);
    tcfg.travel_scale = 0.3;
    check_matrix(
        Arc::new(Traffic::new(tcfg)),
        sparse.with_mapping(MapKind::Block).with_end_time(5.0),
        "traffic",
    );
}
