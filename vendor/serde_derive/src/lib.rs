//! Minimal `serde_derive` stand-in: `#[derive(Serialize, Deserialize)]` for
//! structs and enums, targeting the `Value`-tree traits of the vendored
//! `serde` crate with serde's external tagging conventions.
//!
//! Implemented without `syn`/`quote` (offline build): the item is parsed
//! directly from the `proc_macro::TokenStream`, and the generated impl is
//! assembled as source text and re-parsed. Supported shapes — everything
//! this workspace derives on:
//!
//! * named-field structs, tuple structs (newtype transparency for one
//!   field), unit structs;
//! * enums with unit, tuple, and named-field variants;
//! * simple type generics (`Event<P>`), which gain `serde` bounds.
//!
//! `#[serde(...)]` attributes are not supported and are rejected loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

struct Item {
    name: String,
    generics: Vec<String>,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skip `#[...]` attributes, rejecting `#[serde(...)]`.
    fn skip_attrs(&mut self) {
        while self.is_punct('#') {
            self.next();
            if let Some(TokenTree::Group(g)) = self.next() {
                debug_assert_eq!(g.delimiter(), Delimiter::Bracket);
                let body = g.stream().to_string();
                assert!(
                    !body.starts_with("serde"),
                    "vendored serde_derive does not support #[serde(...)] attributes"
                );
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, got {other:?}"),
        }
    }

    /// Skip tokens until a top-level `,` (consumed) or the end, tracking
    /// `<...>` nesting so commas inside generic arguments don't split.
    fn skip_until_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();

    let keyword = c.expect_ident();
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => panic!("serde_derive: expected struct or enum, got `{other}`"),
    };
    let name = c.expect_ident();
    let generics = parse_generics(&mut c);

    // Skip a possible `where` clause: everything up to the body/semicolon.
    while !c.at_end() {
        match c.peek() {
            Some(TokenTree::Group(g))
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
            {
                break
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break,
            _ => {
                c.next();
            }
        }
    }

    let kind = if is_enum {
        let body = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        };
        ItemKind::Enum(parse_variants(body))
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::Struct(Fields::Unit),
            other => panic!("serde_derive: expected struct body, got {other:?}"),
        }
    };

    Item {
        name,
        generics,
        kind,
    }
}

/// Parse `<...>` after the type name, returning the type-parameter names.
/// Lifetimes and const parameters are not supported (nothing in this
/// workspace derives with them).
fn parse_generics(c: &mut Cursor) -> Vec<String> {
    let mut params = Vec::new();
    if !c.is_punct('<') {
        return params;
    }
    c.next();
    let mut depth = 1i32;
    let mut segment_start = true;
    while let Some(t) = c.next() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => segment_start = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                panic!("serde_derive: lifetime parameters are not supported")
            }
            TokenTree::Ident(i) if segment_start && depth == 1 => {
                let word = i.to_string();
                assert!(
                    word != "const",
                    "serde_derive: const parameters are not supported"
                );
                params.push(word);
                segment_start = false;
            }
            _ => {}
        }
    }
    params
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.at_end() {
            break;
        }
        fields.push(c.expect_ident());
        assert!(
            c.is_punct(':'),
            "serde_derive: expected `:` after field name"
        );
        c.next();
        c.skip_until_comma();
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0;
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.at_end() {
            break;
        }
        count += 1;
        c.skip_until_comma();
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                c.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        c.skip_until_comma();
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl serde::{} for {} {{\n", trait_name, item.name)
    } else {
        let bounds: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> serde::{} for {}<{}> {{\n",
            bounds.join(", "),
            trait_name,
            item.name,
            item.generics.join(", ")
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    out.push_str("#[automatically_derived]\n");
    out.push_str(&impl_header(item, "Serialize"));
    out.push_str("    fn to_value(&self) -> serde::Value {\n");
    match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            out.push_str(&format!(
                "        let mut fields: Vec<(String, serde::Value)> = Vec::with_capacity({});\n",
                fields.len()
            ));
            for f in fields {
                out.push_str(&format!(
                    "        fields.push((String::from(\"{f}\"), serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            out.push_str("        serde::Value::Object(fields)\n");
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            out.push_str("        serde::Serialize::to_value(&self.0)\n");
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            out.push_str(&format!(
                "        serde::Value::Array(vec![{}])\n",
                elems.join(", ")
            ));
        }
        ItemKind::Struct(Fields::Unit) => {
            out.push_str("        serde::Value::Null\n");
        }
        ItemKind::Enum(variants) => {
            out.push_str("        match self {\n");
            for v in variants {
                let name = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "            Self::{name} => serde::Value::String(String::from(\"{name}\")),\n"
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "            Self::{name}(f0) => serde::Value::Object(vec![(String::from(\"{name}\"), serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(f{i})"))
                            .collect();
                        out.push_str(&format!(
                            "            Self::{name}({}) => serde::Value::Object(vec![(String::from(\"{name}\"), serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let elems: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        out.push_str(&format!(
                            "            Self::{name} {{ {binds} }} => serde::Value::Object(vec![(String::from(\"{name}\"), serde::Value::Object(vec![{}]))]),\n",
                            elems.join(", ")
                        ));
                    }
                }
            }
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    out.push_str("#[automatically_derived]\n");
    out.push_str(&impl_header(item, "Deserialize"));
    out.push_str(
        "    fn from_value(value: &serde::Value) -> ::std::result::Result<Self, serde::Error> {\n",
    );
    match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            out.push_str("        Ok(Self {\n");
            for f in fields {
                out.push_str(&format!(
                    "            {f}: serde::de::field(value, \"{f}\")?,\n"
                ));
            }
            out.push_str("        })\n");
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            out.push_str("        Ok(Self(serde::Deserialize::from_value(value)?))\n");
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            out.push_str(&format!(
                "        let items = serde::de::seq(value, {n})?;\n"
            ));
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            out.push_str(&format!("        Ok(Self({}))\n", elems.join(", ")));
        }
        ItemKind::Struct(Fields::Unit) => {
            out.push_str("        match value {\n");
            out.push_str("            serde::Value::Null => Ok(Self),\n");
            out.push_str(
                "            other => Err(serde::Error::msg(format!(\"expected null, got {other:?}\"))),\n",
            );
            out.push_str("        }\n");
        }
        ItemKind::Enum(variants) => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .collect();
            let payload: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .collect();
            out.push_str("        match value {\n");
            if !unit.is_empty() {
                out.push_str("            serde::Value::String(tag) => match tag.as_str() {\n");
                for v in &unit {
                    let name = &v.name;
                    out.push_str(&format!(
                        "                \"{name}\" => Ok(Self::{name}),\n"
                    ));
                }
                out.push_str(
                    "                other => Err(serde::Error::msg(format!(\"unknown variant `{other}`\"))),\n",
                );
                out.push_str("            },\n");
            }
            if !payload.is_empty() {
                out.push_str(
                    "            serde::Value::Object(fields) if fields.len() == 1 => {\n",
                );
                out.push_str("                let (tag, inner) = &fields[0];\n");
                out.push_str("                match tag.as_str() {\n");
                for v in &payload {
                    let name = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => out.push_str(&format!(
                            "                    \"{name}\" => Ok(Self::{name}(serde::Deserialize::from_value(inner)?)),\n"
                        )),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            out.push_str(&format!(
                                "                    \"{name}\" => {{\n                        let items = serde::de::seq(inner, {n})?;\n                        Ok(Self::{name}({}))\n                    }}\n",
                                elems.join(", ")
                            ));
                        }
                        Fields::Named(fields) => {
                            let elems: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: serde::de::field(inner, \"{f}\")?"))
                                .collect();
                            out.push_str(&format!(
                                "                    \"{name}\" => Ok(Self::{name} {{ {} }}),\n",
                                elems.join(", ")
                            ));
                        }
                        Fields::Unit => unreachable!(),
                    }
                }
                out.push_str(
                    "                    other => Err(serde::Error::msg(format!(\"unknown variant `{other}`\"))),\n",
                );
                out.push_str("                }\n");
                out.push_str("            }\n");
            }
            out.push_str(
                "            other => Err(serde::Error::msg(format!(\"invalid enum value: {other:?}\"))),\n",
            );
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out
}
