//! Minimal `rand` stand-in. The workspace implements its own generator
//! (`pdes_core::DetRng`) and only needs the trait plumbing: a fallible core
//! trait to implement, and an infallible facade blanket-implemented for any
//! generator whose error type is uninhabited.

pub mod rand_core {
    pub use core::convert::Infallible;

    /// Fallible random-source core: the one trait generators implement.
    pub trait TryRng {
        type Error;

        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
    }
}

use rand_core::{Infallible, TryRng};

/// Infallible convenience facade, blanket-implemented for every
/// [`TryRng`] whose error is [`Infallible`].
pub trait Rng: TryRng<Error = Infallible> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => (),
            Err(e) => match e {},
        }
    }
}

impl<T: TryRng<Error = Infallible> + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl TryRng for Counter {
        type Error = Infallible;
        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok(self.try_next_u64()? as u32)
        }
        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            self.0 += 1;
            Ok(self.0)
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
            for b in dest {
                *b = self.try_next_u64()? as u8;
            }
            Ok(())
        }
    }

    #[test]
    fn facade_delegates_to_core() {
        let mut c = Counter(0);
        assert_eq!(c.next_u64(), 1);
        assert_eq!(c.next_u32(), 2);
        let mut buf = [0u8; 3];
        c.fill_bytes(&mut buf);
        assert_eq!(buf, [3, 4, 5]);
    }
}
