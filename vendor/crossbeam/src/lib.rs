//! Minimal `crossbeam` stand-in: an unbounded MPMC FIFO queue and a
//! cache-line-padded cell. The queue trades crossbeam's lock-free segments
//! for a mutexed `VecDeque` — identical semantics, adequate throughput for
//! this workspace's message rates.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Bulk push: moves every element of `items` into the queue under a
        /// single lock acquisition, preserving their order. The sending side
        /// of the batched inter-thread hot path — N messages cost one lock
        /// instead of N.
        pub fn push_batch(&self, items: &mut Vec<T>) {
            if items.is_empty() {
                return;
            }
            self.lock().extend(items.drain(..));
        }

        /// Bulk pop: drains the whole queue into `out` under a single lock
        /// acquisition, preserving FIFO order. Returns the number drained.
        pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
            let mut g = self.lock();
            let n = g.len();
            out.extend(g.drain(..));
            n
        }

        pub fn len(&self) -> usize {
            self.lock().len()
        }

        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }

    impl<T> std::fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SegQueue(len={})", self.len())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            for i in 0..10 {
                q.push(i);
            }
            for i in 0..10 {
                assert_eq!(q.pop(), Some(i));
            }
            assert!(q.pop().is_none());
        }

        #[test]
        fn batch_ops_preserve_fifo_and_interleave_with_singles() {
            let q = SegQueue::new();
            q.push(0);
            let mut batch = vec![1, 2, 3];
            q.push_batch(&mut batch);
            assert!(batch.is_empty(), "push_batch drains its input");
            q.push(4);
            q.push_batch(&mut vec![5, 6]);
            let mut out = Vec::new();
            assert_eq!(q.drain_into(&mut out), 7);
            assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6]);
            assert!(q.is_empty());
            assert_eq!(q.drain_into(&mut out), 0);
        }

        #[test]
        fn concurrent_push_pop_conserves_items() {
            let q = Arc::new(SegQueue::new());
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..1000 {
                            q.push(p * 1000 + i);
                        }
                    })
                })
                .collect();
            for h in producers {
                h.join().unwrap();
            }
            let mut seen = vec![false; 4000];
            while let Some(v) = q.pop() {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }
}

pub mod utils {
    /// Pads and aligns a value to 128 bytes to avoid false sharing.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn alignment_is_128() {
            assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        }

        #[test]
        fn deref_roundtrip() {
            let mut c = CachePadded::new(7u32);
            *c += 1;
            assert_eq!(*c, 8);
            assert_eq!(c.into_inner(), 8);
        }
    }
}
