//! Minimal `criterion` stand-in: the same macro/builder surface, but each
//! benchmark runs a fixed small number of timed iterations and prints a
//! mean, with no statistics, plotting, or baselines. Enough for
//! `cargo bench` to produce indicative numbers offline and for bench
//! targets to compile under `cargo test`.

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id, 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (upstream default 100; here it caps timed iters).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters: sample_size.max(1) as u64,
        elapsed: Duration::ZERO,
        timed_iters: 0,
    };
    f(&mut b);
    if b.timed_iters > 0 {
        let mean = b.elapsed / b.timed_iters as u32;
        println!(
            "bench {id:<50} {mean:>12.2?}/iter ({} iters)",
            b.timed_iters
        );
    } else {
        println!("bench {id:<50} (no measurement)");
    }
}

/// Passed to benchmark closures; times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    timed_iters: u64,
}

impl Bencher {
    /// Time `routine` for a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.timed_iters += self.iters;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.timed_iters += 1;
        }
    }
}

/// Batch sizing hint (ignored by this stand-in).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Re-export matching upstream's hint.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_times_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        let mut calls = 0u64;
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert_eq!(calls, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_iter() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 10);
    }
}
