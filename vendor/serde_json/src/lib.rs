//! Minimal `serde_json` stand-in: a JSON printer and parser for the
//! vendored `serde::Value` tree.
//!
//! Numbers are kept exact where JSON allows: `u64`/`i64` print all digits
//! and parse back losslessly, and floats rely on Rust's shortest
//! round-trip `Display`, so `to_string` → `from_str` is value-preserving.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a human-readable, two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Parse a JSON document into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's Display for f64 is the shortest representation that
        // round-trips, which is exactly what a JSON writer needs.
        out.push_str(&f.to_string());
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a whole UTF-8 sequence at once.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    /// Parse the `XXXX` of a `\uXXXX` escape (cursor on the `u`), handling
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // consume `u`
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| Error::msg("invalid surrogate"));
                    }
                }
            }
            return Err(Error::msg("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| Error::msg("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_document_roundtrip() {
        let v = Value::Object(vec![
            (String::from("name"), Value::String(String::from("a\"b"))),
            (String::from("big"), Value::UInt(u64::MAX)),
            (String::from("neg"), Value::Int(-17)),
            (String::from("pi"), Value::Float(std::f64::consts::PI)),
            (
                String::from("arr"),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            (String::from("empty"), Value::Object(vec![])),
        ]);
        let s = to_string(&DirectValue(v.clone())).unwrap();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v = Value::Object(vec![(
            String::from("xs"),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
        )]);
        let s = to_string_pretty(&DirectValue(v.clone())).unwrap();
        assert!(s.contains("\n  \"xs\": [\n"));
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn float_display_roundtrips() {
        for f in [0.0, 1.0, 0.1, 1e-9, 123456.789, f64::MAX] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "via {s}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""aé😀b""#).unwrap();
        assert_eq!(v, Value::String(String::from("aé😀b")));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    /// Serialize wrapper handing a pre-built tree straight through.
    struct DirectValue(Value);

    impl serde::Serialize for DirectValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
