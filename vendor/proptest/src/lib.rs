//! Minimal `proptest` stand-in: deterministic, seeded property testing.
//!
//! Differences from upstream worth knowing:
//!
//! * case generation is seeded from a hash of the test name, so every run
//!   (and every CI machine) executes the identical case sequence;
//! * there is no shrinking — a failing case reports its inputs' debug
//!   output via the assertion message instead;
//! * strategies are simple generators: `Strategy::generate` produces a
//!   value directly from the RNG.
//!
//! The macro and combinator surface matches what this workspace uses:
//! `proptest!` (with optional `#![proptest_config]`), `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, `prop_oneof!`, ranges, tuples,
//! `Just`, `any::<T>()`, `prop::collection::vec`, `prop::sample::select`,
//! and `prop::option::of`.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// RNG (splitmix64 — deterministic and seedable, no external deps)
// ---------------------------------------------------------------------------

/// Deterministic generator driving case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`, `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 candidates: {}", self.reason);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    rng.next_u64() as $t
                } else {
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Full-domain strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

// ---------------------------------------------------------------------------
// prop::collection / prop::sample / prop::option
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for collection strategies.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec`s whose length lies in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`: `Some` three times out of four.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner + config
// ---------------------------------------------------------------------------

/// Runner configuration, settable per-block via `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections before the run fails.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition unmet — generate a replacement case.
    Reject(String),
    /// `prop_assert*!` failed — the property is violated.
    Fail(String),
}

/// Drives one property: repeatedly generates cases until `cfg.cases`
/// succeed. Deterministic: the RNG is seeded from the test name, so a
/// failure reproduces by rerunning the test.
pub fn run_cases(
    name: &str,
    cfg: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut seed = 0xcbf29ce484222325u64; // FNV-1a over the test name
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    let mut rng = TestRng::new(seed);
    let mut passed = 0u32;
    let mut rejects = 0u32;
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > cfg.max_global_rejects {
                    panic!(
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejects}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {passed}: {msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &__cfg, |__rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(String::from(
                stringify!($cond),
            )));
        }
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(2usize..=8), &mut rng);
            assert!((2..=8).contains(&w));
            let f = Strategy::generate(&(0.5f64..4.0), &mut rng);
            assert!((0.5..4.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = crate::TestRng::new(9);
        let mut b = crate::TestRng::new(9);
        for _ in 0..100 {
            assert_eq!(
                Strategy::generate(&(0u64..1000), &mut a),
                Strategy::generate(&(0u64..1000), &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        /// Tuple + filter + map + oneof all compose.
        #[test]
        fn machinery_composes((a, b) in (0u32..10, 0u32..10).prop_filter("distinct", |(a, b)| a != b)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn vec_lengths_in_range(xs in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_skips_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_select(v in prop_oneof![Just(1u32), Just(2u32), 5u32..7],
                            s in prop::sample::select(vec![10u8, 20]),
                            o in prop::option::of(0u8..3)) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
            prop_assert!(s == 10 || s == 20);
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
        }
    }
}
