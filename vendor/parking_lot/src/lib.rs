//! Minimal `parking_lot` stand-in over `std::sync`, with the two properties
//! the workspace relies on: `lock()` returns the guard directly (no poison
//! `Result`), and a panicking holder never poisons the lock for siblings.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Mutual exclusion without lock poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison from a panicked holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard {
                inner: p.into_inner(),
            },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait: whether the wait timed out.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified. The guard is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Move the inner std guard out for the duration of the wait, then
        // write the re-acquired guard back. `unsafe` is avoided by a small
        // replace dance: std's wait consumes and returns the guard.
        replace_with(&mut guard.inner, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Block until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let timed_out = AtomicBool::new(false);
        replace_with(&mut guard.inner, |g| {
            match self.inner.wait_timeout(g, timeout) {
                Ok((g, r)) => {
                    timed_out.store(r.timed_out(), Ordering::Relaxed);
                    g
                }
                Err(p) => {
                    let (g, r) = p.into_inner();
                    timed_out.store(r.timed_out(), Ordering::Relaxed);
                    g
                }
            }
        });
        WaitTimeoutResult(timed_out.load(Ordering::Relaxed))
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Replace `*slot` with `f(old)`, aborting on panic in `f` (which cannot
/// happen for condvar waits outside of unrecoverable runtime corruption).
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct Bomb;
    impl Drop for Bomb {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = Bomb;
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_blocks_while_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
