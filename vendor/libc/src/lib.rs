//! Minimal `libc` stand-in: just enough for `sched_setaffinity`-based CPU
//! pinning and `gettid`. Only the Linux pieces this workspace touches are
//! declared; everything is a direct FFI binding to the platform libc.

#![allow(non_camel_case_types, non_snake_case, non_upper_case_globals)]

pub type c_int = i32;
pub type c_long = i64;
pub type pid_t = i32;
pub type size_t = usize;

/// Size in bits of the kernel CPU mask (glibc default).
pub const CPU_SETSIZE: c_int = 1024;

/// `gettid` syscall number.
#[cfg(target_arch = "x86_64")]
pub const SYS_gettid: c_long = 186;
#[cfg(target_arch = "aarch64")]
pub const SYS_gettid: c_long = 178;
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const SYS_gettid: c_long = -1;

/// CPU affinity mask, bit-per-cpu, matching glibc's `cpu_set_t` layout.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; (CPU_SETSIZE as usize) / 64],
}

/// Clear every CPU in the mask.
#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
    for w in set.bits.iter_mut() {
        *w = 0;
    }
}

/// Add `cpu` to the mask (out-of-range indices are ignored, as in glibc).
#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

/// `true` if `cpu` is in the mask.
#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize && set.bits[cpu / 64] & (1u64 << (cpu % 64)) != 0
}

#[cfg(target_os = "linux")]
extern "C" {
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *mut cpu_set_t) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_set_and_test() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        unsafe {
            CPU_ZERO(&mut set);
            assert!(!CPU_ISSET(3, &set));
            CPU_SET(3, &mut set);
            assert!(CPU_ISSET(3, &set));
            // Out-of-range operations are silent no-ops.
            CPU_SET(1 << 20, &mut set);
            assert!(!CPU_ISSET(1 << 20, &set));
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn gettid_via_syscall_is_positive() {
        let tid = unsafe { syscall(SYS_gettid) };
        assert!(tid > 0);
    }
}
