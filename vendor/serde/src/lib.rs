//! Minimal `serde` stand-in built on an owned [`Value`] tree.
//!
//! Upstream serde abstracts over serializer/deserializer implementations via
//! visitors; this workspace only ever serializes to JSON, so the stand-in
//! collapses the data model to one concrete tree: [`Serialize`] renders a
//! type into a [`Value`], [`Deserialize`] rebuilds it from one, and
//! `serde_json` is a printer/parser for that tree. The `derive` feature
//! re-exports `#[derive(Serialize, Deserialize)]` macros that target the
//! same traits with serde's external tagging conventions.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;
use std::sync::Arc;

/// The self-describing data-model tree (mirrors the JSON data model, with
/// integers kept exact: `u64` and `i64` are not forced through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an `Object` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the data-model tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the data-model tree.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Helpers used by the generated derive code.
pub mod de {
    use super::{Deserialize, Error, Value};

    /// Extract and deserialize a named struct field. Missing keys
    /// deserialize from `Null`, which lets `Option` fields default to
    /// `None` (serde's behavior) while everything else reports the field.
    pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
        match value {
            Value::Object(_) => {
                let v = value.get(name).unwrap_or(&Value::Null);
                T::from_value(v).map_err(|e| Error::msg(format!("field `{name}`: {e}")))
            }
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Interpret a value as a fixed-length sequence.
    pub fn seq(value: &Value, len: usize) -> Result<&[Value], Error> {
        match value {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(Error::msg(format!(
                "expected sequence of length {len}, got {}",
                items.len()
            ))),
            other => Err(Error::msg(format!("expected sequence, got {other:?}"))),
        }
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match *value {
                    Value::UInt(v) => v,
                    Value::Int(v) if v >= 0 => v as u64,
                    ref other => {
                        return Err(Error::msg(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::msg(format!(
                        concat!("value {} out of range for ", stringify!($t)),
                        raw
                    ))
                })
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match *value {
                    Value::Int(v) => v,
                    Value::UInt(v) if v <= i64::MAX as u64 => v as i64,
                    ref other => {
                        return Err(Error::msg(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::msg(format!(
                        concat!("value {} out of range for ", stringify!($t)),
                        raw
                    ))
                })
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match *value {
                    Value::Float(v) => Ok(v as $t),
                    Value::UInt(v) => Ok(v as $t),
                    Value::Int(v) => Ok(v as $t),
                    ref other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected single char, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = de::seq(value, N)?;
        let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Arc::new)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                let items = de::seq(value, LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::msg(format!("expected null, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let tree = v.to_value();
        assert_eq!(T::from_value(&tree).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip(String::from("hé\"llo"));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Some(7u8));
        roundtrip(None::<u8>);
        roundtrip([1u64, 2, 3, 4]);
        roundtrip((1.5f64, 2.5f64));
        roundtrip((1u8, String::from("x"), false));
    }

    #[test]
    fn missing_field_is_null_for_options() {
        let v = Value::Object(vec![(String::from("a"), Value::UInt(1))]);
        let a: u64 = de::field(&v, "a").unwrap();
        assert_eq!(a, 1);
        let b: Option<u64> = de::field(&v, "b").unwrap();
        assert_eq!(b, None);
        assert!(de::field::<u64>(&v, "b").is_err());
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = (1u64 << 63) | 0x1234_5678_9abc_def1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
