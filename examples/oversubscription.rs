//! Over-subscription: load a small virtual machine with up to 8× more
//! simulation threads than hardware contexts and watch the demand-driven
//! systems keep scaling while the baselines drown (paper §6.2–§6.3).
//!
//! ```text
//! cargo run --release --example oversubscription
//! ```

use ggpdes::prelude::*;
use std::sync::Arc;

fn main() {
    // 4 cores × 2 SMT = 8 hardware thread contexts.
    let machine = MachineConfig::small(4, 2);
    let hw = 8;
    let end = 8.0;

    println!("virtual machine: 4 cores × 2 SMT = {hw} hardware threads");
    println!(
        "{:>8} {:>7} {:>18} {:>18} {:>18}",
        "threads", "oversub", "Baseline-Async", "DD-PDES-Async", "GG-PDES-Async"
    );

    for mult in [1usize, 2, 4, 8] {
        let threads = hw * mult;
        // 1-8 imbalanced PHOLD: at most 1/8 of threads are busy at a time,
        // so even 8× over-subscription leaves the active set placeable.
        let mut cfg = PholdConfig::imbalanced(threads, 16, 8, end, LocalityPattern::Linear);
        cfg.lookahead = 0.02;
        cfg.mean_delay = 0.08;
        let model = Arc::new(Phold::new(cfg));
        let engine = EngineConfig::default()
            .with_end_time(end)
            .with_seed(11)
            .with_gvt_interval(25)
            .with_zero_counter_threshold(250);

        let mut row = format!("{threads:>8} {:>6}x", mult);
        for sys in [
            SystemConfig::new(
                Scheduler::Baseline,
                GvtMode::Async,
                AffinityPolicy::Constant,
            ),
            SystemConfig::new(Scheduler::DdPdes, GvtMode::Async, AffinityPolicy::Constant),
            SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant),
        ] {
            let rc = RunConfig::new(threads, engine.clone(), sys).with_machine(machine.clone());
            let r = run_sim(&model, &rc);
            row.push_str(&format!(" {:>18.0}", r.metrics.committed_event_rate()));
        }
        println!("{row}");
    }
    println!("\nDemand-driven systems de-schedule the idle 7/8 of the threads, so the");
    println!("active set always fits the hardware; the baselines time-share everything.");
}
