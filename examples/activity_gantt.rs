//! Visualize demand-driven scheduling: run a 1-4 imbalanced PHOLD under
//! GG-PDES-Async and render each thread's scheduled-in/out intervals as an
//! ASCII gantt — the picture the paper's Figure 1 sketches.
//!
//! ```text
//! cargo run --release --example activity_gantt
//! ```

use ggpdes::metrics::render_gantt;
use ggpdes::prelude::*;
use std::sync::Arc;

fn main() {
    let threads = 16;
    let end = 8.0;
    let mut cfg = PholdConfig::imbalanced(threads, 16, 4, end, LocalityPattern::Linear);
    cfg.lookahead = 0.02;
    cfg.mean_delay = 0.08;
    let model = Arc::new(Phold::new(cfg));

    let engine = EngineConfig::default()
        .with_end_time(end)
        .with_seed(3)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(150);
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
    let rc = RunConfig::new(threads, engine, sys).with_machine(MachineConfig::small(4, 2));
    let r = run_sim(&model, &rc);

    println!(
        "1-4 imbalanced PHOLD, {threads} threads — the active quarter rotates; GG-PDES\n\
         de-schedules the idle threads (█ scheduled in, · de-scheduled):\n"
    );
    print!(
        "{}",
        render_gantt(&r.timeline, threads, r.report.virtual_ns, 72)
    );
    println!(
        "\n{} de-scheduling episodes, at most {} threads parked at once.",
        r.timeline.iter().filter(|&&(_, _, s)| !s).count(),
        r.metrics.max_descheduled
    );
}
