//! The Dynamic CPU Affinity story (paper §4.2, Fig. 7): under *linear*
//! locality the active threads are consecutive and constant round-robin
//! pinning spreads them perfectly — but under *non-linear* (strided)
//! locality, constant pinning piles the active threads onto a fraction of
//! the cores while the rest idle. Dynamic affinity re-pins each GVT round.
//!
//! ```text
//! cargo run --release --example affinity_explorer
//! ```

use ggpdes::prelude::*;
use std::sync::Arc;

fn run(pattern: LocalityPattern) {
    let threads = 32;
    let end = 8.0;
    let mut cfg = PholdConfig::imbalanced(threads, 16, 4, end, pattern);
    cfg.lookahead = 0.02;
    cfg.mean_delay = 0.08;
    let model = Arc::new(Phold::new(cfg));
    let engine = EngineConfig::default()
        .with_end_time(end)
        .with_seed(5)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250);

    println!(
        "{pattern:?} locality — active group of a 1-4 PHOLD, {threads} threads, 4 cores × 2 SMT:"
    );
    for policy in [
        AffinityPolicy::NoAffinity,
        AffinityPolicy::Constant,
        AffinityPolicy::Dynamic,
    ] {
        let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, policy);
        let rc =
            RunConfig::new(threads, engine.clone(), sys).with_machine(MachineConfig::small(4, 2));
        let r = run_sim(&model, &rc);
        println!(
            "  {:<22} {:>14.0} events/s   ({} migrations, {} ctx switches)",
            format!("{policy:?}"),
            r.metrics.committed_event_rate(),
            r.report.migrations,
            r.report.ctx_switches,
        );
    }
    println!();
}

fn main() {
    // Linear: active thread ids are consecutive — constant affinity is fine.
    run(LocalityPattern::Linear);
    // Strided: active ids are {g, g+4, g+8, …} — constant affinity maps them
    // all onto the same few cores (paper: up to 15× worse than dynamic).
    run(LocalityPattern::Strided);
    println!("Constant pinning cannot adapt: under strided locality the active set");
    println!("shares a fraction of the cores while others idle. Dynamic affinity");
    println!("(Algorithm 4) re-pins the active set to idle cores every GVT round.");
}
