//! Quickstart: run one imbalanced PHOLD simulation under GG-PDES-Async on
//! the virtual machine, validate it against the sequential oracle, and
//! print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ggpdes::prelude::*;
use std::sync::Arc;

fn main() {
    // A 1-4 imbalanced PHOLD: only a quarter of the threads receive events
    // at any time, and the active window rotates over the run.
    let threads = 32;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        16,   // LPs per thread
        4,    // 1-4 imbalance
        10.0, // end time
        LocalityPattern::Linear,
    )));

    let engine = EngineConfig::default()
        .with_end_time(10.0)
        .with_seed(2021)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250);

    // The paper's flagship system: GVT-guided demand-driven scheduling with
    // the asynchronous Wait-Free GVT.
    let system = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);

    // An 8-core × 2-SMT virtual machine (deterministic — same seed, same
    // answer, on any host).
    let rc =
        RunConfig::new(threads, engine.clone(), system).with_machine(MachineConfig::small(8, 2));

    println!("running {} with {threads} threads…", system.name());
    let result = run_sim(&model, &rc);

    // Time Warp correctness: the committed trace must equal a sequential run.
    let oracle = run_sequential(&model, &engine, None);
    assert_eq!(result.metrics.committed, oracle.committed);
    assert_eq!(result.metrics.commit_digest, oracle.commit_digest);

    let m = &result.metrics;
    println!("  committed events      : {}", m.committed);
    println!("  processed (incl. undone): {}", m.processed);
    println!("  rolled back           : {}", m.rolled_back);
    println!(
        "  committed event rate  : {:.0} events/s",
        m.committed_event_rate()
    );
    println!("  GVT rounds            : {}", m.gvt_rounds);
    println!("  max threads de-scheduled: {}", m.max_descheduled);
    println!("  virtual wall clock    : {:.3} ms", m.wall_secs * 1e3);
    println!("✓ matches the sequential oracle");
}
