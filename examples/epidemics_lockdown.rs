//! Epidemics under rotating lock-downs: compare the three headline systems
//! (Baseline-Sync, DD-PDES-Async, GG-PDES-Async) on the SEIR household
//! model with 3/4 of the region locked down, and show how demand-driven
//! scheduling exploits the quiet regions.
//!
//! ```text
//! cargo run --release --example epidemics_lockdown
//! ```

use ggpdes::prelude::*;
use std::sync::Arc;

fn main() {
    let threads = 32;
    let lockdown_groups = 4; // 3/4 of the region under curfew
    let end_time = 8.0;

    let mut cfg = EpidemicsConfig::new(threads, 32, lockdown_groups, end_time);
    cfg.lookahead = 0.02;
    cfg.incubation_mean = 0.05;
    cfg.infectious_mean = 0.3;
    let model = Arc::new(Epidemics::new(cfg));

    let engine = EngineConfig::default()
        .with_end_time(end_time)
        .with_seed(7)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250);

    let oracle = run_sequential(&model, &engine, None);
    println!(
        "SEIR model: {} households × {} agents, {}-fold lock-down, {} events committed sequentially\n",
        model.num_lps(),
        model.config().agents_per_household,
        lockdown_groups,
        oracle.committed
    );

    println!(
        "{:<16} {:>14} {:>10} {:>12} {:>14}",
        "system", "events/s", "rollbacks", "descheduled", "GVT s/round"
    );
    for sys in SystemConfig::HEADLINE {
        let rc =
            RunConfig::new(threads, engine.clone(), sys).with_machine(MachineConfig::small(8, 2));
        let r = run_sim(&model, &rc);
        assert_eq!(
            r.metrics.commit_digest,
            oracle.commit_digest,
            "{} diverged from the oracle",
            sys.name()
        );
        println!(
            "{:<16} {:>14.0} {:>10} {:>12} {:>14.6}",
            sys.name(),
            r.metrics.committed_event_rate(),
            r.metrics.rolled_back,
            r.metrics.max_descheduled,
            r.metrics.gvt_secs_per_round(),
        );
    }
    println!("\nThe locked-down region's threads receive no contact events, so the");
    println!("demand-driven systems de-schedule them; GG-PDES does it without the");
    println!("controller thread and its lock (paper §6.4).");
}
