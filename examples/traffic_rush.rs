//! City traffic with a dense centre: sweep the density gradient and watch
//! rollback behaviour — the traffic model's small lookahead makes it the
//! paper's rollback-prone workload (§6.5).
//!
//! ```text
//! cargo run --release --example traffic_rush
//! ```

use ggpdes::prelude::*;
use std::sync::Arc;

fn main() {
    let threads = 16;
    let engine = EngineConfig::default()
        .with_end_time(6.0)
        .with_seed(99)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250)
        .with_mapping(MapKind::Block);

    for gradient in [0.35, 0.5] {
        let mut cfg = TrafficConfig::new(threads, 16, gradient);
        cfg.mapping = MapKind::Block;
        let model = Arc::new(Traffic::new(cfg));
        let center = model.start_events(pdes_core::LpId((model.num_lps() / 2) as u32));
        println!(
            "gradient {gradient}: {} intersections on a {}-wide torus, ~{center} starting vehicles at the centre",
            model.num_lps(),
            model.config().grid_width,
        );

        let oracle = run_sequential(&model, &engine, None);
        println!(
            "{:<16} {:>12} {:>12} {:>12} {:>10}",
            "  system", "events/s", "processed", "rolled-back", "rb ratio"
        );
        for sys in SystemConfig::HEADLINE {
            let rc = RunConfig::new(threads, engine.clone(), sys)
                .with_machine(MachineConfig::small(4, 2));
            let r = run_sim(&model, &rc);
            assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
            println!(
                "  {:<14} {:>12.0} {:>12} {:>12} {:>9.1}%",
                sys.name(),
                r.metrics.committed_event_rate(),
                r.metrics.processed,
                r.metrics.rolled_back,
                r.metrics.rollback_ratio() * 100.0,
            );
        }
        println!();
    }
    println!("Higher gradients concentrate vehicles near the centre; outer-block");
    println!("threads idle and get de-scheduled, but the Burr-distributed travel");
    println!("times keep the lookahead small, so optimism costs rollbacks.");
}
