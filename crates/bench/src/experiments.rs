//! One function per figure/table of the paper's evaluation (§6).

use crate::scale::Scale;
use metrics::{RunMetrics, Table};
use models::{
    Epidemics, EpidemicsConfig, LocalityPattern, Phold, PholdConfig, Traffic, TrafficConfig,
};
use pdes_core::{MapKind, Model};
use sim_rt::{run_sim, AffinityPolicy, GvtMode, RunConfig, Scheduler, SystemConfig};
use std::sync::Arc;

/// A regenerated figure: the table plus auxiliary per-run metrics.
#[derive(Debug, Clone)]
pub struct Figure {
    pub id: &'static str,
    pub table: Table,
    /// Every run's metrics, for the in-text tables.
    pub runs: Vec<RunMetrics>,
}

impl Figure {
    fn new(id: &'static str, title: String) -> Self {
        Figure {
            id,
            table: Table::new(title, "threads", "committed events/s"),
            runs: Vec::new(),
        }
    }
}

fn run_point<M: Model>(
    model: &Arc<M>,
    threads: usize,
    sys: SystemConfig,
    scale: &Scale,
    fig: &mut Figure,
) {
    let mut rc = RunConfig::new(threads, scale.engine(), sys).with_machine(scale.machine());
    rc.limit_ns = Some(600_000_000_000);
    let r = run_sim(model, &rc);
    assert_eq!(r.gvt_regressions, 0, "GVT regression in {}", sys.name());
    fig.table.record_rate(&r.metrics);
    fig.runs.push(r.metrics);
}

fn phold(threads: usize, k: usize, pattern: LocalityPattern, scale: &Scale) -> Arc<Phold> {
    let mut cfg = if k <= 1 {
        PholdConfig::balanced(threads, scale.phold_lps)
    } else {
        PholdConfig::imbalanced(threads, scale.phold_lps, k, scale.end_time, pattern)
    };
    cfg.lookahead = scale.lookahead;
    cfg.mean_delay = scale.mean_delay;
    Arc::new(Phold::new(cfg))
}

/// Figure 2: balanced PHOLD, all six systems, up to 1× subscription.
pub fn fig2(scale: &Scale) -> Figure {
    let mut fig = Figure::new("fig2", "Fig. 2 — Balanced PHOLD".into());
    for threads in scale.thread_sweep(1.0) {
        let model = phold(threads, 1, LocalityPattern::Linear, scale);
        for sys in SystemConfig::ALL_SIX {
            run_point(&model, threads, sys, scale, &mut fig);
        }
    }
    fig
}

/// Figure 3: moderately imbalanced PHOLD — (a) 1-2 up to 2×, (b) 1-4 up to 4×.
pub fn fig3(scale: &Scale, k: usize) -> Figure {
    assert!(k == 2 || k == 4, "fig3 covers the 1-2 and 1-4 models");
    let (id, max) = if k == 2 {
        ("fig3a", 2.0f64)
    } else {
        ("fig3b", 4.0f64)
    };
    let mut fig = Figure::new(id, format!("Fig. 3 — 1-{k} Imbalanced PHOLD"));
    for threads in scale.thread_sweep(max.min(k as f64)) {
        let model = phold(threads, k, LocalityPattern::Linear, scale);
        for sys in SystemConfig::ALL_SIX {
            run_point(&model, threads, sys, scale, &mut fig);
        }
    }
    fig
}

/// Figure 4: highly imbalanced PHOLD — (a) 1-8 up to 8×, (b) 1-16 up to 16×.
pub fn fig4(scale: &Scale, k: usize) -> Figure {
    assert!(k == 8 || k == 16, "fig4 covers the 1-8 and 1-16 models");
    let id = if k == 8 { "fig4a" } else { "fig4b" };
    let mut fig = Figure::new(id, format!("Fig. 4 — 1-{k} Imbalanced PHOLD"));
    for threads in scale.thread_sweep(k as f64) {
        if threads < k {
            continue; // thread groups must divide evenly
        }
        let model = phold(threads, k, LocalityPattern::Linear, scale);
        for sys in SystemConfig::ALL_SIX {
            run_point(&model, threads, sys, scale, &mut fig);
        }
    }
    fig
}

/// Figure 5: epidemics with (a) 3/4 or (b) 7/8 lock-down; the three headline
/// systems; over-subscription up to the lock-down's idle fraction.
pub fn fig5(scale: &Scale, lockdown_groups: usize) -> Figure {
    assert!(lockdown_groups == 4 || lockdown_groups == 8);
    let id = if lockdown_groups == 4 {
        "fig5a"
    } else {
        "fig5b"
    };
    let mut fig = Figure::new(
        id,
        format!("Fig. 5 — Epidemics, {}-fold lock-down", lockdown_groups),
    );
    for threads in scale.thread_sweep(lockdown_groups as f64) {
        if threads < lockdown_groups {
            continue;
        }
        let mut cfg = EpidemicsConfig::new(threads, scale.epi_lps, lockdown_groups, scale.end_time);
        cfg.lookahead = 0.02;
        cfg.incubation_mean = 0.05;
        cfg.infectious_mean = 0.3;
        let model = Arc::new(Epidemics::new(cfg));
        for sys in SystemConfig::HEADLINE {
            run_point(&model, threads, sys, scale, &mut fig);
        }
    }
    fig
}

/// Figure 6: traffic with density gradient 0.35 (a) or 0.5 (b); headline
/// systems; up to 8× subscription.
pub fn fig6(scale: &Scale, gradient: f64) -> Figure {
    let id = if gradient < 0.45 { "fig6a" } else { "fig6b" };
    let mut fig = Figure::new(id, format!("Fig. 6 — Traffic, gradient {gradient}"));
    for threads in scale.thread_sweep(8.0) {
        let mut cfg = TrafficConfig::new(threads, scale.traffic_lps, gradient);
        cfg.mapping = MapKind::Block;
        // Tight inter-intersection coupling → the paper's rollback-heavy
        // regime (§6.5).
        cfg.travel_scale = 0.12;
        cfg.lookahead = 0.01;
        let model = Arc::new(Traffic::new(cfg));
        for sys in SystemConfig::HEADLINE {
            run_point(&model, threads, sys, scale, &mut fig);
        }
    }
    fig
}

/// Figure 7: GG-PDES-Async under the three affinity policies, on a 1-4
/// PHOLD with (a) linear or (b) strided (non-linear) locality.
pub fn fig7(scale: &Scale, pattern: LocalityPattern) -> Figure {
    let id = match pattern {
        LocalityPattern::Linear => "fig7a",
        LocalityPattern::Strided => "fig7b",
    };
    let mut fig = Figure::new(
        id,
        format!("Fig. 7 — GG-PDES-Async affinity policies, {pattern:?} locality"),
    );
    // The constant-affinity collapse deepens with over-subscription; sweep
    // as far as the scale allows (the paper's largest affinity experiment
    // used 4096 threads).
    for threads in scale.thread_sweep(16.0) {
        if threads < 4 {
            continue;
        }
        let model = phold(threads, 4, pattern, scale);
        for policy in [
            AffinityPolicy::NoAffinity,
            AffinityPolicy::Constant,
            AffinityPolicy::Dynamic,
        ] {
            let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, policy);
            run_point(&model, threads, sys, scale, &mut fig);
        }
    }
    fig
}

/// In-text GVT table (§6.1–§6.5): average CPU time per GVT round,
/// accumulated among threads, for the quoted configurations.
pub fn gvt_table(figs: &[&Figure]) -> Table {
    let mut t = Table::new(
        "GVT CPU time per round (s, accumulated among threads)",
        "threads",
        "seconds/round",
    );
    for fig in figs {
        for m in &fig.runs {
            t.series_mut(&format!("{}:{}", fig.id, m.system))
                .push(m.threads as f64, m.gvt_secs_per_round());
        }
    }
    t
}

/// In-text instruction-count table (§6.2–§6.3): total work units executed.
pub fn instr_table(figs: &[&Figure]) -> Table {
    let mut t = Table::new(
        "Total work units executed (\"instructions\")",
        "threads",
        "work units",
    );
    for fig in figs {
        for m in &fig.runs {
            t.series_mut(&format!("{}:{}", fig.id, m.system))
                .push(m.threads as f64, m.total_work as f64);
        }
    }
    t
}

/// In-text rollback table (§6.5): processed vs rolled-back events for the
/// traffic model at the largest scale.
pub fn rollback_table(fig6: &Figure) -> Table {
    let mut t = Table::new(
        "Traffic: processed vs rolled-back events (largest scale)",
        "threads",
        "events",
    );
    let max_threads = fig6
        .runs
        .iter()
        .map(|m| m.threads)
        .max()
        .unwrap_or_default();
    for m in fig6.runs.iter().filter(|m| m.threads == max_threads) {
        t.series_mut(&format!("{} processed", m.system))
            .push(m.threads as f64, m.processed as f64);
        t.series_mut(&format!("{} rolled-back", m.system))
            .push(m.threads as f64, m.rolled_back as f64);
    }
    t
}

/// §6.6 memory-footprint check: the dynamic-affinity tables at the paper's
/// largest scale (4096 threads, 64 cores) — the paper quotes ~17 KB.
pub fn mem_table() -> (usize, usize, usize) {
    let aff = sim_rt::AffinityTables::new(64, 4096);
    (4096, 64, aff.footprint_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig2_has_all_systems_and_points() {
        let scale = Scale::quick();
        let fig = fig2(&scale);
        assert_eq!(fig.table.series.len(), 6);
        let xs = fig.table.xs();
        assert_eq!(xs.len(), 2, "quick scale sweeps ≤1×: {xs:?}");
        for s in &fig.table.series {
            assert_eq!(s.points.len(), xs.len(), "{}", s.name);
            assert!(s.points.iter().all(|&(_, y)| y > 0.0));
        }
    }

    #[test]
    fn quick_fig7_strided_runs() {
        let scale = Scale::quick();
        let fig = fig7(&scale, LocalityPattern::Strided);
        assert_eq!(fig.table.series.len(), 3);
        assert!(!fig.runs.is_empty());
    }

    #[test]
    fn mem_footprint_matches_paper_order() {
        let (threads, cores, bytes) = mem_table();
        assert_eq!(threads, 4096);
        assert_eq!(cores, 64);
        // Paper: ~17 KB. Ours must be the same order of magnitude.
        assert!((4 * 1024..=96 * 1024).contains(&bytes), "bytes={bytes}");
    }

    #[test]
    fn gvt_and_instr_tables_index_runs() {
        let scale = Scale::quick();
        let fig = fig2(&scale);
        let g = gvt_table(&[&fig]);
        let i = instr_table(&[&fig]);
        assert_eq!(g.series.len(), 6);
        assert_eq!(i.series.len(), 6);
    }
}
