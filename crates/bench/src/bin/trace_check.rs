//! `trace_check` — validate a Chrome `trace_event` JSON file produced by
//! `ggpdes --trace-out`.
//!
//! ```text
//! trace_check [--require NAME ...] [--forbid NAME ...] FILE [FILE ...]
//! ```
//!
//! For each file it checks that:
//!
//! 1. the file is well-formed JSON with a `traceEvents` array;
//! 2. every non-metadata event carries `ph`/`name`/`pid`/`tid`/`ts` (and
//!    `dur` for `"X"` spans);
//! 3. per `(pid, tid)` lane, timestamps are non-decreasing — the ordering
//!    Perfetto relies on and the exporter guarantees by sorting;
//! 4. the five GVT phases are present: `gvt-a`, `gvt-b`, `gvt-aware`,
//!    `gvt-end`, plus at least one of the `gvt-send-a`/`gvt-send-b`
//!    simulate-while-waiting gaps (sync-mode traces only produce Send-B).
//!
//! `--require NAME` additionally demands at least one event named `NAME` in
//! every file, and `--forbid NAME` demands zero (both repeatable) — e.g.
//! `--require link-retransmit --forbid partial-restore` asserts a partition
//! run healed by retransmission without triggering recovery.
//!
//! Exit 0 when every file passes; exit 1 with a diagnostic otherwise.
//! This is what CI runs against the traced release smoke runs.

use std::collections::HashMap;

use serde::Value;

fn fail(file: &str, msg: &str) -> ! {
    eprintln!("trace_check: {file}: {msg}");
    std::process::exit(1);
}

/// Pull a numeric field as f64 (the parser yields UInt/Int/Float).
fn num(e: &Value, key: &str) -> Option<f64> {
    match e.get(key)? {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn text<'v>(e: &'v Value, key: &str) -> Option<&'v str> {
    match e.get(key)? {
        Value::String(s) => Some(s.as_str()),
        _ => None,
    }
}

fn check_file(file: &str, require: &[String], forbid: &[String]) {
    let raw = std::fs::read_to_string(file).unwrap_or_else(|e| fail(file, &format!("read: {e}")));
    let doc = serde_json::parse(&raw).unwrap_or_else(|e| fail(file, &format!("bad JSON: {e}")));
    let events = match doc.get("traceEvents") {
        Some(Value::Array(a)) => a,
        _ => fail(file, "no traceEvents array"),
    };

    let required = ["gvt-a", "gvt-b", "gvt-aware", "gvt-end"];
    let sends = ["gvt-send-a", "gvt-send-b"];
    let mut seen: HashMap<&str, u64> = HashMap::new();
    let mut by_name: HashMap<String, u64> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut checked = 0u64;

    for (i, e) in events.iter().enumerate() {
        let ph = text(e, "ph").unwrap_or_else(|| fail(file, &format!("event {i}: no ph")));
        if ph == "M" {
            continue;
        }
        if ph != "X" && ph != "i" {
            fail(file, &format!("event {i}: unexpected ph {ph:?}"));
        }
        let name = text(e, "name").unwrap_or_else(|| fail(file, &format!("event {i}: no name")));
        let pid = num(e, "pid").unwrap_or_else(|| fail(file, &format!("event {i}: no pid")));
        let tid = num(e, "tid").unwrap_or_else(|| fail(file, &format!("event {i}: no tid")));
        let ts = num(e, "ts").unwrap_or_else(|| fail(file, &format!("event {i}: no ts")));
        if ph == "X" && num(e, "dur").is_none() {
            fail(file, &format!("event {i}: span without dur"));
        }
        let lane = (pid as u64, tid as u64);
        if let Some(prev) = last_ts.get(&lane) {
            if ts < *prev {
                fail(
                    file,
                    &format!(
                        "event {i} ({name}): lane pid={} tid={} went backwards: \
                         ts {ts} < {prev}",
                        lane.0, lane.1
                    ),
                );
            }
        }
        last_ts.insert(lane, ts);
        *by_name.entry(name.to_string()).or_insert(0) += 1;
        *seen
            .entry(match name {
                "gvt-a" => "gvt-a",
                "gvt-b" => "gvt-b",
                "gvt-aware" => "gvt-aware",
                "gvt-end" => "gvt-end",
                "gvt-send-a" => "gvt-send-a",
                "gvt-send-b" => "gvt-send-b",
                _ => "other",
            })
            .or_insert(0) += 1;
        checked += 1;
    }

    if checked == 0 {
        fail(file, "trace holds no events");
    }
    for name in required {
        if !seen.contains_key(name) {
            fail(file, &format!("required GVT phase {name:?} never appears"));
        }
    }
    if !sends.iter().any(|s| seen.contains_key(s)) {
        fail(file, "neither gvt-send-a nor gvt-send-b appears");
    }
    for name in require {
        if by_name.get(name.as_str()).copied().unwrap_or(0) == 0 {
            fail(file, &format!("required event {name:?} never appears"));
        }
    }
    for name in forbid {
        let n = by_name.get(name.as_str()).copied().unwrap_or(0);
        if n > 0 {
            fail(
                file,
                &format!("forbidden event {name:?} appears {n} time(s)"),
            );
        }
    }
    let gvt_total: u64 = required
        .iter()
        .chain(sends.iter())
        .filter_map(|n| seen.get(n))
        .sum();
    println!(
        "trace_check: {file}: ok — {checked} events across {} lane(s), {gvt_total} GVT phase spans",
        last_ts.len()
    );
}

fn main() {
    let mut files: Vec<String> = Vec::new();
    let mut require: Vec<String> = Vec::new();
    let mut forbid: Vec<String> = Vec::new();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--require" => require.push(it.next().unwrap_or_else(|| {
                eprintln!("trace_check: --require needs an event name");
                std::process::exit(2);
            })),
            "--forbid" => forbid.push(it.next().unwrap_or_else(|| {
                eprintln!("trace_check: --forbid needs an event name");
                std::process::exit(2);
            })),
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: trace_check [--require NAME ...] [--forbid NAME ...] FILE [FILE ...]");
        std::process::exit(2);
    }
    for file in &files {
        check_file(file, &require, &forbid);
    }
}
