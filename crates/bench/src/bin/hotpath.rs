//! Per-event cost harness for the optimistic hot path (PR 10).
//!
//! Runs the BENCH_6 workload (balanced PHOLD, 512 LPs, end 120) through the
//! same four runtimes as `dist_compare`, but with the hot-path engine
//! configuration: pooled event storage, sparse state saving
//! (`--snapshot-period`), and batched inter-thread sends (`--batch`). The
//! output lands in `BENCH_<n>.json` with the `dist_compare` schema — the
//! same four runtime names, so `bench_gate` ratchets it against the previous
//! trajectory point — plus a `hotpath` object recording the per-event cost
//! (`ns_per_event`) and the hot-path configuration the numbers were taken
//! under.
//!
//! ```text
//! hotpath [--out FILE] [--end T] [--seed S] [--parts N] [--lps-per N]
//!         [--repeat R] [--gvt-interval N] [--batch N] [--snapshot-period K]
//!         [--optimism W|none] [--zero N] [--note TEXT]
//! ```
//!
//! Every run must commit the sequential trace (`equivalence: true`); a
//! per-event cost from a diverged run is worthless.

use std::sync::Arc;
use std::time::Instant;

use dist_rt::{run_loopback, DistConfig, Transport};
use models::{Phold, PholdConfig};
use pdes_core::{run_sequential, EngineConfig};
use sim_rt::{AffinityPolicy, GvtMode, Scheduler, SystemConfig};

struct Opts {
    out: String,
    end: f64,
    seed: u64,
    parts: usize,
    lps_per: usize,
    repeat: usize,
    gvt_interval: u32,
    batch: usize,
    snapshot_period: u32,
    optimism: Option<f64>,
    zero: u32,
    note: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            out: "BENCH_7.json".into(),
            end: 120.0,
            seed: 24301,
            parts: 2,
            lps_per: 256,
            repeat: 12,
            gvt_interval: 25,
            batch: 8,
            snapshot_period: 8,
            optimism: Some(4.0),
            zero: 250,
            note: None,
        }
    }
}

fn parse() -> Opts {
    let mut o = Opts::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--out" => o.out = val().clone(),
            "--end" => o.end = val().parse().expect("--end"),
            "--seed" => o.seed = val().parse().expect("--seed"),
            "--parts" => o.parts = val().parse().expect("--parts"),
            "--lps-per" => o.lps_per = val().parse().expect("--lps-per"),
            "--repeat" => o.repeat = val().parse::<usize>().expect("--repeat").max(1),
            "--gvt-interval" => o.gvt_interval = val().parse().expect("--gvt-interval"),
            "--batch" => o.batch = val().parse().expect("--batch"),
            "--snapshot-period" => o.snapshot_period = val().parse().expect("--snapshot-period"),
            "--optimism" => {
                let v = val();
                o.optimism = if v == "none" {
                    None
                } else {
                    Some(v.parse().expect("--optimism"))
                };
            }
            "--zero" => o.zero = val().parse().expect("--zero"),
            "--note" => o.note = Some(val().clone()),
            other => panic!("unknown flag {other}"),
        }
    }
    o
}

struct Run {
    runtime: &'static str,
    wall_secs: f64,
    committed: u64,
    commit_digest: u64,
}

impl Run {
    fn json(&self) -> String {
        format!(
            "    {{\"runtime\": \"{}\", \"wall_secs\": {:.6}, \"committed\": {}, \
             \"committed_per_sec\": {:.0}, \"ns_per_event\": {:.1}, \
             \"commit_digest\": \"{:#018x}\"}}",
            self.runtime,
            self.wall_secs,
            self.committed,
            self.committed as f64 / self.wall_secs,
            self.wall_secs * 1e9 / self.committed as f64,
            self.commit_digest,
        )
    }
}

/// Best-of-N wall time around `f`, which returns `(committed, digest)`.
fn best_of(repeat: usize, mut f: impl FnMut() -> (u64, u64)) -> (f64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut last = (0, 0);
    for _ in 0..repeat {
        let t0 = Instant::now();
        last = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, last.0, last.1)
}

fn main() {
    let o = parse();
    let model = Arc::new(Phold::new(PholdConfig::balanced(o.parts, o.lps_per)));
    let lps = o.parts * o.lps_per;
    let ecfg = EngineConfig::default()
        .with_end_time(o.end)
        .with_seed(o.seed)
        .with_gvt_interval(o.gvt_interval)
        .with_batch_size(o.batch)
        .with_snapshot_period(o.snapshot_period)
        .with_zero_counter_threshold(o.zero)
        .with_optimism_window(o.optimism);
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);

    let (wall, committed, digest) = best_of(o.repeat, || {
        let r = run_sequential(&model, &ecfg, None);
        (r.committed, r.commit_digest)
    });
    let seq = Run {
        runtime: "sequential",
        wall_secs: wall,
        committed,
        commit_digest: digest,
    };
    eprintln!(
        "sequential : {:.4}s, {} committed, {:.0} ns/ev",
        seq.wall_secs,
        seq.committed,
        seq.wall_secs * 1e9 / seq.committed as f64
    );

    let (wall, committed, digest) = best_of(o.repeat, || {
        let rc = thread_rt::RtRunConfig::new(o.parts, ecfg.clone(), sys);
        let r = thread_rt::run_threads(&model, &rc).expect("thread run completes");
        (r.metrics.committed, r.metrics.commit_digest)
    });
    let thr = Run {
        runtime: "thread-rt-2",
        wall_secs: wall,
        committed,
        commit_digest: digest,
    };
    eprintln!(
        "thread-rt  : {:.4}s, {} committed, {:.0} ns/ev",
        thr.wall_secs,
        thr.committed,
        thr.wall_secs * 1e9 / thr.committed as f64
    );

    let (wall, committed, digest) = best_of(o.repeat, || {
        let rc = cons_rt::ConsRunConfig::new(o.parts, ecfg.clone(), sys);
        let r = cons_rt::run_cons(&model, &rc).expect("cons run completes");
        (r.metrics.committed, r.metrics.commit_digest)
    });
    let cons = Run {
        runtime: "cons-rt-2",
        wall_secs: wall,
        committed,
        commit_digest: digest,
    };
    eprintln!(
        "cons-rt    : {:.4}s, {} committed, {:.0} ns/ev",
        cons.wall_secs,
        cons.committed,
        cons.wall_secs * 1e9 / cons.committed as f64
    );

    let (wall, committed, digest) = best_of(o.repeat, || {
        let dcfg = DistConfig {
            shards: o.parts,
            transport: Transport::Tcp,
            ..DistConfig::default()
        };
        let r = run_loopback(Arc::clone(&model), &ecfg, &dcfg).expect("dist run completes");
        (r.metrics.committed, r.metrics.commit_digest)
    });
    let dist = Run {
        runtime: "dist-rt-2shard-tcp",
        wall_secs: wall,
        committed,
        commit_digest: digest,
    };
    eprintln!(
        "dist-rt    : {:.4}s, {} committed, {:.0} ns/ev",
        dist.wall_secs,
        dist.committed,
        dist.wall_secs * 1e9 / dist.committed as f64
    );

    let runs = [seq, thr, cons, dist];
    let equivalence = runs
        .iter()
        .all(|r| r.committed == runs[0].committed && r.commit_digest == runs[0].commit_digest);
    assert!(equivalence, "a runtime diverged from the sequential oracle");

    let note = o
        .note
        .as_deref()
        .map(|n| {
            let quoted = serde_json::to_string(&n.to_string()).expect("escape note");
            format!("  \"note\": {quoted},\n")
        })
        .unwrap_or_default();
    let optimism = o
        .optimism
        .map(|w| format!("{w}"))
        .unwrap_or_else(|| "null".into());
    let body = runs.iter().map(Run::json).collect::<Vec<_>>().join(",\n");
    let doc = format!(
        "{{\n  \"bench\": \"runtime-comparison\",\n  \"model\": \"phold-balanced\",\n  \
         \"lps\": {lps},\n  \"end_time\": {end},\n  \"seed\": {seed},\n  \
         \"repeat\": {repeat},\n{note}  \"hotpath\": {{\n    \
         \"gvt_interval\": {gvt_interval},\n    \"batch_size\": {batch},\n    \
         \"snapshot_period\": {snap},\n    \"optimism_window\": {optimism},\n    \
         \"zero_counter_threshold\": {zero}\n  }},\n  \"runs\": [\n{body}\n  ],\n  \
         \"equivalence\": {equivalence}\n}}\n",
        end = o.end,
        seed = o.seed,
        repeat = o.repeat,
        gvt_interval = o.gvt_interval,
        batch = o.batch,
        snap = o.snapshot_period,
        zero = o.zero,
    );
    std::fs::write(&o.out, &doc).unwrap_or_else(|e| panic!("write {}: {e}", o.out));
    println!("wrote {}", o.out);
}
