//! Regenerate every figure and in-text table of the paper.
//!
//! ```text
//! repro [TARGETS] [--scale quick|default|knl] [--out DIR]
//!
//! TARGETS   any of: fig2 fig3a fig3b fig4a fig4b fig5a fig5b fig6a fig6b
//!           fig7a fig7b tables all        (default: all)
//! --scale   experiment scale preset       (default: default)
//! --out     write CSV/JSON to DIR         (default: results/)
//! ```

use bench_support::{
    fig2, fig3, fig4, fig5, fig6, fig7, gvt_table, instr_table, mem_table, rollback_table, Figure,
    Scale,
};
use metrics::Table;
use models::LocalityPattern;
use std::collections::BTreeSet;
use std::io::Write;
use std::time::Instant;

const TARGETS: [&str; 12] = [
    "fig2", "fig3a", "fig3b", "fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "fig7a",
    "fig7b", "tables",
];

/// Print a usage error and exit non-zero — a bad flag or an unwritable
/// output directory is an operator mistake, not a bug worth a backtrace.
fn fail(msg: &str) -> ! {
    eprintln!("repro: error: {msg}");
    eprintln!("usage: repro [TARGETS] [--scale quick|default|knl] [--out DIR]");
    std::process::exit(2);
}

fn write_outputs(dir: &str, name: &str, table: &Table) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        fail(&format!("cannot create output dir '{dir}': {e}"));
    }
    let csv = format!("{dir}/{name}.csv");
    if let Err(e) = std::fs::write(&csv, table.to_csv()) {
        fail(&format!("cannot write '{csv}': {e}"));
    }
    let json = format!("{dir}/{name}.json");
    if let Err(e) = std::fs::write(&json, table.to_json()) {
        fail(&format!("cannot write '{json}': {e}"));
    }
}

fn emit(dir: &str, fig: &Figure) {
    println!("{}", fig.table.to_text());
    write_outputs(dir, fig.id, &fig.table);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: BTreeSet<String> = BTreeSet::new();
    let mut scale = Scale::default_scale();
    let mut out_dir = "results".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--scale needs a value (quick|default|knl)"));
                scale = Scale::by_name(v)
                    .unwrap_or_else(|| fail(&format!("unknown scale '{v}' (quick|default|knl)")));
            }
            "--out" => {
                out_dir = it
                    .next()
                    .unwrap_or_else(|| fail("--out needs a value (an output directory)"))
                    .clone();
            }
            other if other.starts_with('-') => {
                fail(&format!("unknown flag '{other}'"));
            }
            other if other == "all" || TARGETS.contains(&other) => {
                targets.insert(other.to_string());
            }
            other => {
                fail(&format!(
                    "unknown target '{other}' (expected one of: {} all)",
                    TARGETS.join(" ")
                ));
            }
        }
    }
    if targets.is_empty() || targets.contains("all") {
        for t in TARGETS {
            targets.insert(t.to_string());
        }
        targets.remove("all");
    }

    println!(
        "# GG-PDES reproduction — scale '{}': {} cores × {} SMT = {} hw threads",
        scale.name,
        scale.cores,
        scale.smt,
        scale.hw_threads()
    );
    let t0 = Instant::now();
    let mut figs: Vec<Figure> = Vec::new();
    let run = |want: bool, f: &mut dyn FnMut() -> Figure, figs: &mut Vec<Figure>, dir: &str| {
        if want {
            let t = Instant::now();
            let fig = f();
            emit(dir, &fig);
            println!("  [{} in {:.1}s]\n", fig.id, t.elapsed().as_secs_f64());
            figs.push(fig);
        }
    };

    let has = |t: &str| targets.contains(t);
    run(has("fig2"), &mut || fig2(&scale), &mut figs, &out_dir);
    run(has("fig3a"), &mut || fig3(&scale, 2), &mut figs, &out_dir);
    run(has("fig3b"), &mut || fig3(&scale, 4), &mut figs, &out_dir);
    run(has("fig4a"), &mut || fig4(&scale, 8), &mut figs, &out_dir);
    run(has("fig4b"), &mut || fig4(&scale, 16), &mut figs, &out_dir);
    run(has("fig5a"), &mut || fig5(&scale, 4), &mut figs, &out_dir);
    run(has("fig5b"), &mut || fig5(&scale, 8), &mut figs, &out_dir);
    run(
        has("fig6a"),
        &mut || fig6(&scale, 0.35),
        &mut figs,
        &out_dir,
    );
    run(has("fig6b"), &mut || fig6(&scale, 0.5), &mut figs, &out_dir);
    run(
        has("fig7a"),
        &mut || fig7(&scale, LocalityPattern::Linear),
        &mut figs,
        &out_dir,
    );
    run(
        has("fig7b"),
        &mut || fig7(&scale, LocalityPattern::Strided),
        &mut figs,
        &out_dir,
    );

    if has("tables") && !figs.is_empty() {
        let refs: Vec<&Figure> = figs.iter().collect();
        let g = gvt_table(&refs);
        println!("{}", g.to_text());
        write_outputs(&out_dir, "gvt_table", &g);
        let i = instr_table(&refs);
        println!("{}", i.to_text());
        write_outputs(&out_dir, "instr_table", &i);
        if let Some(f6) = figs.iter().find(|f| f.id.starts_with("fig6")) {
            let rb = rollback_table(f6);
            println!("{}", rb.to_text());
            write_outputs(&out_dir, "rollback_table", &rb);
        }
        let (threads, cores, bytes) = mem_table();
        println!(
            "# Dynamic CPU affinity footprint: {bytes} bytes for {threads} threads / {cores} cores (paper: ~17 KB)\n"
        );
    }

    println!("# total {:.1}s", t0.elapsed().as_secs_f64());
    if let Err(e) = std::io::stdout().flush() {
        fail(&format!("cannot flush stdout: {e}"));
    }
}
