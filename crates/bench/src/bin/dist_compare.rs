//! Scripted runtime comparison: the sequential oracle, the 2-thread
//! shared-memory runtime, the 2-thread conservative (null-message) runtime,
//! and the 2-shard distributed runtime on the same balanced PHOLD workload,
//! emitted as one JSON document (`BENCH_<n>.json` at the repo root — the
//! repo's perf trajectory across PRs). The cons-rt column is the repo's
//! first optimistic-vs-conservative comparison on identical hardware and
//! workload.
//!
//! ```text
//! dist_compare [--out FILE] [--end T] [--seed S] [--parts N] [--lps-per N] [--repeat R]
//!              [--baseline FILE] [--tolerance F] [--note TEXT]
//! ```
//!
//! Every run must commit the sequential trace (`equivalence: true` in the
//! output) — a perf number from a diverged run is worthless. Wall time is
//! the best of `--repeat` runs (default 3), which filters scheduler noise
//! without hiding cold-start costs in an average.
//!
//! `--baseline FILE` compares this run's per-runtime wall clocks against a
//! previous `BENCH_<n>.json` and records the relative deltas plus a
//! pass/fail verdict against `--tolerance` (default 0.02, i.e. ±2%) in a
//! `telemetry_off_check` object — used by PR 4 to show that compiling the
//! telemetry subsystem in (disabled) does not move the trajectory.

use std::sync::Arc;
use std::time::Instant;

use dist_rt::{run_loopback, DistConfig, Transport};
use models::{Phold, PholdConfig};
use pdes_core::{run_sequential, EngineConfig};
use sim_rt::{AffinityPolicy, GvtMode, Scheduler, SystemConfig};

struct Opts {
    out: String,
    end: f64,
    seed: u64,
    parts: usize,
    lps_per: usize,
    repeat: usize,
    baseline: Option<String>,
    tolerance: f64,
    note: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            out: "BENCH_3.json".into(),
            end: 120.0,
            seed: 0x5EED,
            parts: 2,
            lps_per: 256,
            repeat: 3,
            baseline: None,
            tolerance: 0.02,
            note: None,
        }
    }
}

fn parse() -> Opts {
    let mut o = Opts::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--out" => o.out = val().clone(),
            "--end" => o.end = val().parse().expect("--end"),
            "--seed" => o.seed = val().parse().expect("--seed"),
            "--parts" => o.parts = val().parse().expect("--parts"),
            "--lps-per" => o.lps_per = val().parse().expect("--lps-per"),
            "--repeat" => o.repeat = val().parse::<usize>().expect("--repeat").max(1),
            "--baseline" => o.baseline = Some(val().clone()),
            "--tolerance" => o.tolerance = val().parse().expect("--tolerance"),
            "--note" => o.note = Some(val().clone()),
            other => panic!("unknown flag {other}"),
        }
    }
    o
}

struct Run {
    runtime: &'static str,
    wall_secs: f64,
    committed: u64,
    commit_digest: u64,
}

impl Run {
    fn json(&self) -> String {
        format!(
            "    {{\"runtime\": \"{}\", \"wall_secs\": {:.6}, \"committed\": {}, \
             \"committed_per_sec\": {:.0}, \"commit_digest\": \"{:#018x}\"}}",
            self.runtime,
            self.wall_secs,
            self.committed,
            self.committed as f64 / self.wall_secs,
            self.commit_digest,
        )
    }
}

/// Compare this run's wall clocks against a previous `BENCH_<n>.json` and
/// render the `telemetry_off_check` JSON object: per-runtime relative
/// deltas and a verdict against `tolerance`. Runtimes absent from the
/// baseline are skipped (the trajectory may gain runtimes over time).
fn baseline_check(path: &str, runs: &[Run], tolerance: f64) -> String {
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let doc = serde_json::parse(&raw).unwrap_or_else(|e| panic!("{path}: bad JSON: {e}"));
    let base = match doc.get("runs") {
        Some(serde::Value::Array(a)) => a,
        _ => panic!("{path}: no runs array"),
    };
    let base_wall = |name: &str| -> Option<f64> {
        base.iter()
            .find(|r| matches!(r.get("runtime"), Some(serde::Value::String(s)) if s == name))
            .and_then(|r| match r.get("wall_secs") {
                Some(serde::Value::Float(f)) => Some(*f),
                Some(serde::Value::UInt(u)) => Some(*u as f64),
                Some(serde::Value::Int(i)) => Some(*i as f64),
                _ => None,
            })
    };
    let mut deltas = Vec::new();
    let mut max_delta = f64::NEG_INFINITY;
    for r in runs {
        let Some(old) = base_wall(r.runtime) else {
            eprintln!("baseline   : {} not in {path}, skipped", r.runtime);
            continue;
        };
        let delta = (r.wall_secs - old) / old;
        max_delta = max_delta.max(delta);
        eprintln!(
            "baseline   : {} {:.3}s -> {:.3}s ({:+.1}%)",
            r.runtime,
            old,
            r.wall_secs,
            delta * 100.0
        );
        deltas.push(format!(
            "      {{\"runtime\": \"{}\", \"baseline_wall_secs\": {:.6}, \"delta\": {:.4}}}",
            r.runtime, old, delta
        ));
    }
    assert!(!deltas.is_empty(), "{path}: no comparable runtimes");
    // One-sided: the check is "no runtime got slower than the baseline by
    // more than `tolerance`" — a faster run trivially has no overhead.
    let pass = max_delta <= tolerance;
    eprintln!(
        "baseline   : worst regression {:+.1}% vs tolerance +{:.1}% -> {}",
        max_delta * 100.0,
        tolerance * 100.0,
        if pass { "pass" } else { "FAIL" }
    );
    format!(
        "  \"telemetry_off_check\": {{\n    \"baseline\": \"{path}\",\n    \
         \"tolerance\": {tolerance},\n    \"max_delta\": {max_delta:.4},\n    \
         \"pass\": {pass},\n    \"deltas\": [\n{}\n    ]\n  }},\n",
        deltas.join(",\n")
    )
}

/// Best-of-N wall time around `f`, which returns `(committed, digest)`.
fn best_of(repeat: usize, mut f: impl FnMut() -> (u64, u64)) -> (f64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut last = (0, 0);
    for _ in 0..repeat {
        let t0 = Instant::now();
        last = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, last.0, last.1)
}

fn main() {
    let o = parse();
    let model = Arc::new(Phold::new(PholdConfig::balanced(o.parts, o.lps_per)));
    let lps = o.parts * o.lps_per;
    let ecfg = EngineConfig::default()
        .with_end_time(o.end)
        .with_seed(o.seed)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250)
        .with_optimism_window(Some(4.0));
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);

    let (wall, committed, digest) = best_of(o.repeat, || {
        let r = run_sequential(&model, &ecfg, None);
        (r.committed, r.commit_digest)
    });
    let seq = Run {
        runtime: "sequential",
        wall_secs: wall,
        committed,
        commit_digest: digest,
    };
    eprintln!(
        "sequential : {:.3}s, {} committed",
        seq.wall_secs, seq.committed
    );

    let (wall, committed, digest) = best_of(o.repeat, || {
        let rc = thread_rt::RtRunConfig::new(o.parts, ecfg.clone(), sys);
        let r = thread_rt::run_threads(&model, &rc).expect("thread run completes");
        (r.metrics.committed, r.metrics.commit_digest)
    });
    let thr = Run {
        runtime: "thread-rt-2",
        wall_secs: wall,
        committed,
        commit_digest: digest,
    };
    eprintln!(
        "thread-rt  : {:.3}s, {} committed",
        thr.wall_secs, thr.committed
    );

    let (wall, committed, digest) = best_of(o.repeat, || {
        let rc = cons_rt::ConsRunConfig::new(o.parts, ecfg.clone(), sys);
        let r = cons_rt::run_cons(&model, &rc).expect("cons run completes");
        (r.metrics.committed, r.metrics.commit_digest)
    });
    let cons = Run {
        runtime: "cons-rt-2",
        wall_secs: wall,
        committed,
        commit_digest: digest,
    };
    eprintln!(
        "cons-rt    : {:.3}s, {} committed",
        cons.wall_secs, cons.committed
    );

    let (wall, committed, digest) = best_of(o.repeat, || {
        let dcfg = DistConfig {
            shards: o.parts,
            transport: Transport::Tcp,
            ..DistConfig::default()
        };
        let r = run_loopback(Arc::clone(&model), &ecfg, &dcfg).expect("dist run completes");
        (r.metrics.committed, r.metrics.commit_digest)
    });
    let dist = Run {
        runtime: "dist-rt-2shard-tcp",
        wall_secs: wall,
        committed,
        commit_digest: digest,
    };
    eprintln!(
        "dist-rt    : {:.3}s, {} committed",
        dist.wall_secs, dist.committed
    );

    let runs = [seq, thr, cons, dist];
    let equivalence = runs
        .iter()
        .all(|r| r.committed == runs[0].committed && r.commit_digest == runs[0].commit_digest);
    assert!(equivalence, "a runtime diverged from the sequential oracle");

    let check = o
        .baseline
        .as_deref()
        .map(|p| baseline_check(p, &runs, o.tolerance))
        .unwrap_or_default();
    let note = o
        .note
        .as_deref()
        .map(|n| {
            let quoted = serde_json::to_string(&n.to_string()).expect("escape note");
            format!("  \"note\": {quoted},\n")
        })
        .unwrap_or_default();
    let body = runs.iter().map(Run::json).collect::<Vec<_>>().join(",\n");
    let doc = format!(
        "{{\n  \"bench\": \"runtime-comparison\",\n  \"model\": \"phold-balanced\",\n  \
         \"lps\": {lps},\n  \"end_time\": {end},\n  \"seed\": {seed},\n  \
         \"repeat\": {repeat},\n{check}{note}  \"runs\": [\n{body}\n  ],\n  \
         \"equivalence\": {equivalence}\n}}\n",
        end = o.end,
        seed = o.seed,
        repeat = o.repeat,
    );
    std::fs::write(&o.out, &doc).unwrap_or_else(|e| panic!("write {}: {e}", o.out));
    println!("wrote {}", o.out);
}
