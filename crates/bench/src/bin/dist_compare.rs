//! Scripted runtime comparison: the sequential oracle, the 2-thread
//! shared-memory runtime, and the 2-shard distributed runtime on the same
//! balanced PHOLD workload, emitted as one JSON document (`BENCH_<n>.json`
//! at the repo root — the repo's perf trajectory across PRs).
//!
//! ```text
//! dist_compare [--out FILE] [--end T] [--seed S] [--parts N] [--lps-per N] [--repeat R]
//! ```
//!
//! Every run must commit the sequential trace (`equivalence: true` in the
//! output) — a perf number from a diverged run is worthless. Wall time is
//! the best of `--repeat` runs (default 3), which filters scheduler noise
//! without hiding cold-start costs in an average.

use std::sync::Arc;
use std::time::Instant;

use dist_rt::{run_loopback, DistConfig, Transport};
use models::{Phold, PholdConfig};
use pdes_core::{run_sequential, EngineConfig};
use sim_rt::{AffinityPolicy, GvtMode, Scheduler, SystemConfig};

struct Opts {
    out: String,
    end: f64,
    seed: u64,
    parts: usize,
    lps_per: usize,
    repeat: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            out: "BENCH_3.json".into(),
            end: 120.0,
            seed: 0x5EED,
            parts: 2,
            lps_per: 256,
            repeat: 3,
        }
    }
}

fn parse() -> Opts {
    let mut o = Opts::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--out" => o.out = val().clone(),
            "--end" => o.end = val().parse().expect("--end"),
            "--seed" => o.seed = val().parse().expect("--seed"),
            "--parts" => o.parts = val().parse().expect("--parts"),
            "--lps-per" => o.lps_per = val().parse().expect("--lps-per"),
            "--repeat" => o.repeat = val().parse::<usize>().expect("--repeat").max(1),
            other => panic!("unknown flag {other}"),
        }
    }
    o
}

struct Run {
    runtime: &'static str,
    wall_secs: f64,
    committed: u64,
    commit_digest: u64,
}

impl Run {
    fn json(&self) -> String {
        format!(
            "    {{\"runtime\": \"{}\", \"wall_secs\": {:.6}, \"committed\": {}, \
             \"committed_per_sec\": {:.0}, \"commit_digest\": \"{:#018x}\"}}",
            self.runtime,
            self.wall_secs,
            self.committed,
            self.committed as f64 / self.wall_secs,
            self.commit_digest,
        )
    }
}

/// Best-of-N wall time around `f`, which returns `(committed, digest)`.
fn best_of(repeat: usize, mut f: impl FnMut() -> (u64, u64)) -> (f64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut last = (0, 0);
    for _ in 0..repeat {
        let t0 = Instant::now();
        last = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, last.0, last.1)
}

fn main() {
    let o = parse();
    let model = Arc::new(Phold::new(PholdConfig::balanced(o.parts, o.lps_per)));
    let lps = o.parts * o.lps_per;
    let ecfg = EngineConfig::default()
        .with_end_time(o.end)
        .with_seed(o.seed)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250)
        .with_optimism_window(Some(4.0));
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);

    let (wall, committed, digest) = best_of(o.repeat, || {
        let r = run_sequential(&model, &ecfg, None);
        (r.committed, r.commit_digest)
    });
    let seq = Run {
        runtime: "sequential",
        wall_secs: wall,
        committed,
        commit_digest: digest,
    };
    eprintln!(
        "sequential : {:.3}s, {} committed",
        seq.wall_secs, seq.committed
    );

    let (wall, committed, digest) = best_of(o.repeat, || {
        let rc = thread_rt::RtRunConfig::new(o.parts, ecfg.clone(), sys);
        let r = thread_rt::run_threads(&model, &rc).expect("thread run completes");
        (r.metrics.committed, r.metrics.commit_digest)
    });
    let thr = Run {
        runtime: "thread-rt-2",
        wall_secs: wall,
        committed,
        commit_digest: digest,
    };
    eprintln!(
        "thread-rt  : {:.3}s, {} committed",
        thr.wall_secs, thr.committed
    );

    let (wall, committed, digest) = best_of(o.repeat, || {
        let dcfg = DistConfig {
            shards: o.parts,
            transport: Transport::Tcp,
            ..DistConfig::default()
        };
        let r = run_loopback(Arc::clone(&model), &ecfg, &dcfg).expect("dist run completes");
        (r.metrics.committed, r.metrics.commit_digest)
    });
    let dist = Run {
        runtime: "dist-rt-2shard-tcp",
        wall_secs: wall,
        committed,
        commit_digest: digest,
    };
    eprintln!(
        "dist-rt    : {:.3}s, {} committed",
        dist.wall_secs, dist.committed
    );

    let runs = [seq, thr, dist];
    let equivalence = runs
        .iter()
        .all(|r| r.committed == runs[0].committed && r.commit_digest == runs[0].commit_digest);
    assert!(equivalence, "a runtime diverged from the sequential oracle");

    let body = runs.iter().map(Run::json).collect::<Vec<_>>().join(",\n");
    let doc = format!(
        "{{\n  \"bench\": \"runtime-comparison\",\n  \"model\": \"phold-balanced\",\n  \
         \"lps\": {lps},\n  \"end_time\": {end},\n  \"seed\": {seed},\n  \
         \"repeat\": {repeat},\n  \"runs\": [\n{body}\n  ],\n  \
         \"equivalence\": {equivalence}\n}}\n",
        end = o.end,
        seed = o.seed,
        repeat = o.repeat,
    );
    std::fs::write(&o.out, &doc).unwrap_or_else(|e| panic!("write {}: {e}", o.out));
    println!("wrote {}", o.out);
}
