//! `bench_gate` — the perf ratchet: compare the two newest `BENCH_<n>.json`
//! documents at the repo root and fail on a wall-clock regression.
//!
//! ```text
//! bench_gate [--dir PATH] [--tolerance F]
//! ```
//!
//! The repo's perf trajectory is one `BENCH_<n>.json` per PR (written by
//! `dist_compare`). The gate finds the two highest `n` under `--dir`
//! (default `.`), matches their `runs` arrays by `runtime` name, and fails
//! (exit 1) if any runtime got slower by more than `--tolerance` (default
//! 0.02, i.e. +2%). Runtimes present in only one document are reported and
//! skipped — the trajectory gains runtimes over time. With fewer than two
//! documents (or a missing `--dir`) there is nothing to compare: the gate
//! prints a `skipped: <2 BENCH documents` note and exits 0. On success it
//! prints the per-runtime wall-clock delta of every compared pair.
//!
//! Wall clocks are best-of-N from the bench harness, so the numbers are
//! already noise-filtered; the tolerance absorbs what remains.

use serde::Value;

fn die(code: i32, msg: &str) -> ! {
    eprintln!("bench_gate: {msg}");
    std::process::exit(code);
}

/// `BENCH_<n>.json` -> `n`, `None` for anything else.
fn bench_index(name: &str) -> Option<u64> {
    name.strip_prefix("BENCH_")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

/// Per-runtime wall clocks of one bench document.
fn walls(path: &std::path::Path) -> Vec<(String, f64)> {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(1, &format!("read {}: {e}", path.display())));
    let doc = serde_json::parse(&raw)
        .unwrap_or_else(|e| die(1, &format!("{}: bad JSON: {e}", path.display())));
    let runs = match doc.get("runs") {
        Some(Value::Array(a)) => a,
        _ => die(1, &format!("{}: no runs array", path.display())),
    };
    runs.iter()
        .filter_map(|r| {
            let name = match r.get("runtime") {
                Some(Value::String(s)) => s.clone(),
                _ => return None,
            };
            let wall = match r.get("wall_secs") {
                Some(Value::Float(f)) => *f,
                Some(Value::UInt(u)) => *u as f64,
                Some(Value::Int(i)) => *i as f64,
                _ => return None,
            };
            Some((name, wall))
        })
        .collect()
}

fn main() {
    let mut dir = ".".to_string();
    let mut tolerance = 0.02f64;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| die(2, &format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--dir" => dir = val().clone(),
            "--tolerance" => {
                tolerance = val()
                    .parse()
                    .unwrap_or_else(|e| die(2, &format!("--tolerance: {e}")))
            }
            other => die(2, &format!("unknown flag {other}")),
        }
    }

    // A trajectory too short to compare is a skip, not an error: a fresh
    // checkout (or a missing --dir) must leave CI green.
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("bench_gate: skipped: <2 BENCH documents ({dir} does not exist)");
            return;
        }
        Err(e) => die(1, &format!("read dir {dir}: {e}")),
    };
    let mut indexed: Vec<(u64, std::path::PathBuf)> = entries
        .filter_map(|entry| {
            let entry = entry.ok()?;
            let n = bench_index(entry.file_name().to_str()?)?;
            Some((n, entry.path()))
        })
        .collect();
    indexed.sort_unstable_by_key(|(n, _)| *n);
    if indexed.len() < 2 {
        println!(
            "bench_gate: skipped: <2 BENCH documents ({} under {dir} — nothing to compare)",
            indexed.len()
        );
        return;
    }
    let (old_n, old_path) = &indexed[indexed.len() - 2];
    let (new_n, new_path) = &indexed[indexed.len() - 1];
    let old = walls(old_path);
    let new = walls(new_path);

    let mut compared = 0u32;
    let mut worst: Option<(f64, String)> = None;
    for (name, new_wall) in &new {
        let Some((_, old_wall)) = old.iter().find(|(n, _)| n == name) else {
            println!("bench_gate: {name}: new in BENCH_{new_n}, skipped");
            continue;
        };
        let delta = (new_wall - old_wall) / old_wall;
        println!(
            "bench_gate: {name}: {old_wall:.3}s -> {new_wall:.3}s ({:+.1}%)",
            delta * 100.0
        );
        if worst.as_ref().is_none_or(|(w, _)| delta > *w) {
            worst = Some((delta, name.clone()));
        }
        compared += 1;
    }
    for (name, _) in &old {
        if !new.iter().any(|(n, _)| n == name) {
            println!("bench_gate: {name}: dropped from BENCH_{new_n}, skipped");
        }
    }
    if compared == 0 {
        die(
            1,
            &format!("BENCH_{old_n} and BENCH_{new_n} share no runtimes"),
        );
    }
    let (worst_delta, worst_name) = worst.expect("compared > 0");
    if worst_delta > tolerance {
        die(
            1,
            &format!(
                "wall-clock regression: {worst_name} {:+.1}% vs tolerance +{:.1}% \
                 (BENCH_{old_n} -> BENCH_{new_n})",
                worst_delta * 100.0,
                tolerance * 100.0
            ),
        );
    }
    println!(
        "bench_gate: pass — worst delta {:+.1}% (tolerance +{:.1}%), BENCH_{old_n} -> BENCH_{new_n}",
        worst_delta * 100.0,
        tolerance * 100.0
    );
}
