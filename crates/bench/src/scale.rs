//! Experiment scale presets.

use machine::MachineConfig;
use pdes_core::EngineConfig;

/// A coherent set of machine + engine + workload sizes.
#[derive(Debug, Clone)]
pub struct Scale {
    pub name: &'static str,
    /// Virtual machine shape.
    pub cores: usize,
    pub smt: usize,
    pub quantum: u64,
    /// PHOLD LPs per thread (paper: 128).
    pub phold_lps: usize,
    /// Epidemics households per thread (paper: 4096).
    pub epi_lps: usize,
    /// Traffic intersections per thread (paper: 96).
    pub traffic_lps: usize,
    /// Simulation end time.
    pub end_time: f64,
    /// GVT every this many cycles (paper: 200).
    pub gvt_interval: u32,
    /// Idle-cycle threshold for deactivation (paper: 2000).
    pub zero_counter_threshold: u32,
    /// PHOLD delay = lookahead + Exp(mean). Small absolute delays give many
    /// event generations per activity epoch, which is what makes the
    /// imbalanced models' temporal locality real at reduced scale.
    pub lookahead: f64,
    pub mean_delay: f64,
    /// Thread counts swept by the weak-scaling figures, as multiples of the
    /// machine's hardware thread count: `hw/4, hw/2, hw, 2·hw, …`.
    pub oversub_steps: &'static [f64],
    /// Experiment seed.
    pub seed: u64,
}

impl Scale {
    /// Tiny scale for CI and criterion benches (4 cores × 2 SMT).
    pub fn quick() -> Self {
        Scale {
            name: "quick",
            cores: 4,
            smt: 2,
            quantum: 50_000,
            phold_lps: 8,
            epi_lps: 16,
            traffic_lps: 8,
            end_time: 4.0,
            gvt_interval: 25,
            zero_counter_threshold: 250,
            lookahead: 0.02,
            mean_delay: 0.08,
            oversub_steps: &[0.5, 1.0, 2.0],
            seed: 0x5EED,
        }
    }

    /// Default: a quarter-KNL (16 cores × 4 SMT = 64 hardware threads),
    /// sweeping ¼× to 4× subscription. Minutes per figure.
    pub fn default_scale() -> Self {
        Scale {
            name: "default",
            cores: 16,
            smt: 4,
            quantum: 50_000,
            phold_lps: 32,
            epi_lps: 64,
            traffic_lps: 24,
            end_time: 8.0,
            gvt_interval: 25,
            zero_counter_threshold: 250,
            lookahead: 0.02,
            mean_delay: 0.08,
            oversub_steps: &[0.25, 0.5, 1.0, 2.0, 4.0],
            seed: 0x5EED,
        }
    }

    /// The paper's machine (64 cores × 4 SMT = 256 hardware threads),
    /// sweeping up to 16× subscription (4096 threads). Hours per figure.
    pub fn knl() -> Self {
        Scale {
            name: "knl",
            cores: 64,
            smt: 4,
            quantum: 50_000,
            phold_lps: 32,
            epi_lps: 64,
            traffic_lps: 24,
            end_time: 8.0,
            gvt_interval: 50,
            zero_counter_threshold: 500,
            lookahead: 0.02,
            mean_delay: 0.08,
            oversub_steps: &[0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
            seed: 0x5EED,
        }
    }

    /// Parse a preset by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Scale::quick()),
            "default" => Some(Scale::default_scale()),
            "knl" => Some(Scale::knl()),
            _ => None,
        }
    }

    /// Hardware thread contexts of the machine.
    pub fn hw_threads(&self) -> usize {
        self.cores * self.smt
    }

    /// The thread counts a weak-scaling sweep visits, capped at `max_mult`
    /// times the hardware thread count.
    pub fn thread_sweep(&self, max_mult: f64) -> Vec<usize> {
        self.oversub_steps
            .iter()
            .filter(|&&m| m <= max_mult + 1e-9)
            .map(|&m| ((self.hw_threads() as f64 * m) as usize).max(2))
            .collect()
    }

    /// The machine configuration.
    pub fn machine(&self) -> MachineConfig {
        let mut m = if self.smt == 4 {
            // KNL-style SMT throughput curve.
            MachineConfig {
                num_cores: self.cores,
                ..Default::default()
            }
        } else {
            MachineConfig::small(self.cores, self.smt)
        };
        m.quantum = self.quantum;
        m
    }

    /// The engine configuration.
    pub fn engine(&self) -> EngineConfig {
        EngineConfig::default()
            .with_end_time(self.end_time)
            .with_seed(self.seed)
            .with_gvt_interval(self.gvt_interval)
            .with_zero_counter_threshold(self.zero_counter_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve() {
        for n in ["quick", "default", "knl"] {
            let s = Scale::by_name(n).expect("preset");
            assert_eq!(s.name, n);
        }
        assert!(Scale::by_name("nope").is_none());
    }

    #[test]
    fn sweeps_respect_caps() {
        let s = Scale::default_scale();
        assert_eq!(s.hw_threads(), 64);
        let sweep = s.thread_sweep(1.0);
        assert_eq!(sweep, vec![16, 32, 64]);
        let sweep = s.thread_sweep(4.0);
        assert_eq!(sweep, vec![16, 32, 64, 128, 256]);
    }

    #[test]
    fn paper_ratios_hold() {
        for s in [Scale::quick(), Scale::default_scale(), Scale::knl()] {
            // Threshold : interval = 10 : 1, as in the paper (2000 : 200).
            assert_eq!(s.zero_counter_threshold, s.gvt_interval * 10);
            // ≥ 20 event generations per 1-4 activity epoch.
            let gens_per_epoch = (s.end_time / 4.0) / (s.lookahead + s.mean_delay);
            assert!(gens_per_epoch >= 10.0, "{}: {gens_per_epoch}", s.name);
        }
    }
}
