//! # ggpdes-bench — experiment definitions for every figure and table
//!
//! One place defines the workloads, scales, and system line-ups of the
//! paper's evaluation (§6); the `repro` binary and the criterion benches
//! both draw from here so the numbers they print come from identical
//! configurations.
//!
//! ## Scaling
//!
//! The paper ran on a 64-core × 4-SMT KNL with up to 4096 POSIX threads,
//! 128 PHOLD LPs per thread, and GVT every 200 cycles. Reproducing those
//! *absolute* sizes would take hours per figure on a laptop-class host, so
//! the default scale shrinks the machine to 16 cores × 4 SMT and the
//! per-thread LP count to 32 while keeping every *ratio* the paper's
//! effects depend on: the over-subscription factors (up to 16×), the
//! epoch-length-to-event-delay ratio (≥ 20 generations per activity window,
//! so temporal locality is real), and the zero-counter-threshold-to-GVT-
//! interval ratio (10×, as in the paper). `Scale::knl()` restores the full
//! 64-core machine for overnight runs.

pub mod experiments;
pub mod scale;

pub use experiments::{
    fig2, fig3, fig4, fig5, fig6, fig7, gvt_table, instr_table, mem_table, rollback_table, Figure,
};
pub use scale::Scale;
