//! Figure-shaped benchmarks: each group exercises the exact workload of one
//! of the paper's figures at `Scale::quick()` and measures how long the
//! virtual-machine reproduction takes to regenerate its key data point.
//! (The full sweeps and the paper-style tables come from the `repro`
//! binary; these groups keep the figure paths exercised under
//! `cargo bench` and catch performance regressions in the simulator
//! itself.)

use bench_support::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use models::{LocalityPattern, Phold, PholdConfig, Traffic, TrafficConfig};
use pdes_core::MapKind;
use sim_rt::{run_sim, RunConfig, SystemConfig};
use std::sync::Arc;

fn phold_point(c: &mut Criterion, group: &str, k: usize, threads: usize, sys: SystemConfig) {
    let scale = Scale::quick();
    let mut cfg = if k <= 1 {
        PholdConfig::balanced(threads, scale.phold_lps)
    } else {
        PholdConfig::imbalanced(
            threads,
            scale.phold_lps,
            k,
            scale.end_time,
            LocalityPattern::Linear,
        )
    };
    cfg.lookahead = scale.lookahead;
    cfg.mean_delay = scale.mean_delay;
    let model = Arc::new(Phold::new(cfg));
    let rc = RunConfig::new(threads, scale.engine(), sys).with_machine(scale.machine());
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function(format!("{}_T{threads}", sys.name()), |b| {
        b.iter(|| run_sim(&model, &rc))
    });
    g.finish();
}

fn fig2_balanced(c: &mut Criterion) {
    let hw = Scale::quick().hw_threads();
    for sys in [SystemConfig::ALL_SIX[0], SystemConfig::ALL_SIX[5]] {
        phold_point(c, "fig2_balanced", 1, hw, sys);
    }
}

fn fig3_imbalanced(c: &mut Criterion) {
    let hw = Scale::quick().hw_threads();
    for sys in [
        SystemConfig::ALL_SIX[0],
        SystemConfig::ALL_SIX[3],
        SystemConfig::ALL_SIX[5],
    ] {
        phold_point(c, "fig3_imbalanced_1_4", 4, hw * 2, sys);
    }
}

fn fig4_oversubscribed(c: &mut Criterion) {
    let hw = Scale::quick().hw_threads();
    for sys in [SystemConfig::ALL_SIX[1], SystemConfig::ALL_SIX[5]] {
        phold_point(c, "fig4_oversub_1_8", 8, hw * 2, sys);
    }
}

fn fig6_traffic(c: &mut Criterion) {
    let scale = Scale::quick();
    let threads = scale.hw_threads();
    let mut cfg = TrafficConfig::new(threads, scale.traffic_lps, 0.5);
    cfg.mapping = MapKind::Block;
    cfg.travel_scale = 0.12;
    cfg.lookahead = 0.01;
    let model = Arc::new(Traffic::new(cfg));
    let mut g = c.benchmark_group("fig6_traffic");
    g.sample_size(10);
    for sys in SystemConfig::HEADLINE {
        let rc = RunConfig::new(threads, scale.engine(), sys).with_machine(scale.machine());
        g.bench_function(format!("{}_T{threads}", sys.name()), |b| {
            b.iter(|| run_sim(&model, &rc))
        });
    }
    g.finish();
}

fn fig7_affinity(c: &mut Criterion) {
    use sim_rt::{AffinityPolicy, GvtMode, Scheduler};
    let scale = Scale::quick();
    let threads = scale.hw_threads() * 2;
    let mut cfg = PholdConfig::imbalanced(
        threads,
        scale.phold_lps,
        4,
        scale.end_time,
        LocalityPattern::Strided,
    );
    cfg.lookahead = scale.lookahead;
    cfg.mean_delay = scale.mean_delay;
    let model = Arc::new(Phold::new(cfg));
    let mut g = c.benchmark_group("fig7_affinity_strided");
    g.sample_size(10);
    for policy in [
        AffinityPolicy::NoAffinity,
        AffinityPolicy::Constant,
        AffinityPolicy::Dynamic,
    ] {
        let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, policy);
        let rc = RunConfig::new(threads, scale.engine(), sys).with_machine(scale.machine());
        g.bench_function(format!("{}_T{threads}", sys.name()), |b| {
            b.iter(|| run_sim(&model, &rc))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    fig2_balanced,
    fig3_imbalanced,
    fig4_oversubscribed,
    fig6_traffic,
    fig7_affinity
);
criterion_main!(benches);
