//! Micro-benchmarks of the Time Warp core data structures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use models::{Burr, Phold, PholdConfig};
use pdes_core::pending::PendingSet;
use pdes_core::{run_sequential, DetRng, EngineConfig, Event, EventKey, EventUid, LpId};
use std::sync::Arc;

fn bench_pending_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("pending_set");
    g.bench_function("insert_pop_1k", |b| {
        let mut rng = DetRng::seed_from_u64(1);
        let events: Vec<Event<u32>> = (0..1000)
            .map(|i| Event {
                key: EventKey {
                    recv_time: pdes_core::VirtualTime::from_f64(rng.next_f64() * 100.0),
                    dst: LpId(i % 64),
                    uid: EventUid::new(LpId(i % 64), i as u64),
                },
                send_time: pdes_core::VirtualTime::ZERO,
                payload: i,
            })
            .collect();
        b.iter_batched(
            || events.clone(),
            |events| {
                let mut ps = PendingSet::new();
                for e in events {
                    ps.insert(e);
                }
                while ps.pop_min().is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("detrng_u64", |b| {
        let mut rng = DetRng::seed_from_u64(7);
        b.iter(|| rng.next_f64());
    });
    g.bench_function("burr_sample", |b| {
        let mut rng = DetRng::seed_from_u64(7);
        let burr = Burr::TRAVEL_TIME;
        b.iter(|| burr.sample(&mut rng));
    });
    g.finish();
}

fn bench_sequential_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequential_engine");
    g.sample_size(10);
    g.bench_function("phold_10k_events", |b| {
        let model = Arc::new(Phold::new(PholdConfig::balanced(8, 8)));
        let cfg = EngineConfig::default().with_end_time(1e9).with_seed(3);
        b.iter(|| run_sequential(&model, &cfg, Some(10_000)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pending_set,
    bench_rng,
    bench_sequential_engine
);
criterion_main!(benches);
