//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * cost-model robustness — the GG-over-baseline advantage must survive
//!   ±50% perturbation of the virtual machine's cost constants;
//! * GVT frequency and zero-counter threshold — the paper fixes 200 / 2000
//!   "based on static analysis"; these groups sweep the ratio.
//!
//! Each bench runs the simulation and *asserts the shape* (GG ≥ baseline on
//! the imbalanced workload) before measuring, so `cargo bench` doubles as a
//! regression gate on the reproduction's headline result.

use bench_support::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use models::{LocalityPattern, Phold, PholdConfig};
use sim_rt::{run_sim, RunConfig, SimCost, SystemConfig};
use std::sync::Arc;

fn quick_model(threads: usize) -> Arc<Phold> {
    let scale = Scale::quick();
    let mut cfg = PholdConfig::imbalanced(
        threads,
        scale.phold_lps,
        4,
        scale.end_time,
        LocalityPattern::Linear,
    );
    cfg.lookahead = scale.lookahead;
    cfg.mean_delay = scale.mean_delay;
    Arc::new(Phold::new(cfg))
}

fn gg_vs_baseline_rate(model: &Arc<Phold>, threads: usize, cost: &SimCost) -> (f64, f64) {
    let scale = Scale::quick();
    let run = |sys| {
        let mut rc = RunConfig::new(threads, scale.engine(), sys).with_machine(scale.machine());
        rc.cost = cost.clone();
        run_sim(model, &rc).metrics.committed_event_rate()
    };
    (run(SystemConfig::ALL_SIX[5]), run(SystemConfig::ALL_SIX[1]))
}

fn ablation_cost_model(c: &mut Criterion) {
    let threads = Scale::quick().hw_threads() * 2;
    let model = quick_model(threads);
    let mut g = c.benchmark_group("ablation_cost_model");
    g.sample_size(10);
    for (name, factor) in [("half", 0.5f64), ("nominal", 1.0), ("double", 2.0)] {
        let base = SimCost::default();
        let scaled = |v: u64| ((v as f64 * factor) as u64).max(1);
        let cost = SimCost {
            poll: scaled(base.poll),
            recv_msg: scaled(base.recv_msg),
            proc_event: base.proc_event, // the unit of work stays fixed
            send_msg: scaled(base.send_msg),
            rollback_event: scaled(base.rollback_event),
            gvt_phase: scaled(base.gvt_phase),
            phase_check: scaled(base.phase_check),
            sched_op: scaled(base.sched_op),
            affinity_op: scaled(base.affinity_op),
            scan_per_thread: scaled(base.scan_per_thread),
            idle_polls_per_step: base.idle_polls_per_step,
        };
        // Shape gate: GG must stay ahead of Baseline-Async on the
        // over-subscribed imbalanced workload under every perturbation.
        let (gg, baseline) = gg_vs_baseline_rate(&model, threads, &cost);
        assert!(
            gg > baseline,
            "{name}: GG ({gg:.0}) must beat baseline ({baseline:.0})"
        );
        g.bench_function(name, |b| {
            b.iter(|| gg_vs_baseline_rate(&model, threads, &cost))
        });
    }
    g.finish();
}

fn ablation_gvt_frequency(c: &mut Criterion) {
    let scale = Scale::quick();
    let threads = scale.hw_threads() * 2;
    let model = quick_model(threads);
    let mut g = c.benchmark_group("ablation_gvt_interval");
    g.sample_size(10);
    for interval in [10u32, 25, 100] {
        let engine = scale
            .engine()
            .with_gvt_interval(interval)
            .with_zero_counter_threshold(interval * 10);
        let rc =
            RunConfig::new(threads, engine, SystemConfig::ALL_SIX[5]).with_machine(scale.machine());
        g.bench_function(format!("interval_{interval}"), |b| {
            b.iter(|| run_sim(&model, &rc))
        });
    }
    g.finish();
}

fn ablation_zero_counter(c: &mut Criterion) {
    let scale = Scale::quick();
    let threads = scale.hw_threads() * 2;
    let model = quick_model(threads);
    let mut g = c.benchmark_group("ablation_zero_counter");
    g.sample_size(10);
    for mult in [2u32, 10, 40] {
        let engine = scale
            .engine()
            .with_zero_counter_threshold(scale.gvt_interval * mult);
        let rc =
            RunConfig::new(threads, engine, SystemConfig::ALL_SIX[5]).with_machine(scale.machine());
        g.bench_function(format!("threshold_{mult}x_interval"), |b| {
            b.iter(|| run_sim(&model, &rc))
        });
    }
    g.finish();
}

fn ablation_state_saving(c: &mut Criterion) {
    // Sparse snapshots trade copy bandwidth for coast-forward replay; the
    // committed trace is identical (property-tested), so this group measures
    // pure engine cost.
    let scale = Scale::quick();
    let threads = scale.hw_threads();
    let model = quick_model(threads);
    let mut g = c.benchmark_group("ablation_snapshot_period");
    g.sample_size(10);
    for period in [1u32, 4, 16] {
        let engine = scale.engine().with_snapshot_period(period);
        let rc =
            RunConfig::new(threads, engine, SystemConfig::ALL_SIX[5]).with_machine(scale.machine());
        // Shape gate: identical committed counts at every period.
        let baseline = {
            let rc1 = RunConfig::new(
                threads,
                scale.engine().with_snapshot_period(1),
                SystemConfig::ALL_SIX[5],
            )
            .with_machine(scale.machine());
            run_sim(&model, &rc1).metrics.commit_digest
        };
        assert_eq!(run_sim(&model, &rc).metrics.commit_digest, baseline);
        g.bench_function(format!("period_{period}"), |b| {
            b.iter(|| run_sim(&model, &rc))
        });
    }
    g.finish();
}

fn ablation_optimism_window(c: &mut Criterion) {
    // A tight window suppresses rollbacks at the cost of throttled progress.
    let scale = Scale::quick();
    let threads = scale.hw_threads() * 2;
    let model = quick_model(threads);
    let mut g = c.benchmark_group("ablation_optimism_window");
    g.sample_size(10);
    let rollbacks = |w: Option<f64>| {
        let engine = scale.engine().with_optimism_window(w);
        let rc =
            RunConfig::new(threads, engine, SystemConfig::ALL_SIX[5]).with_machine(scale.machine());
        run_sim(&model, &rc).metrics.rolled_back
    };
    // Shape gate: a tight window must reduce rollbacks vs unthrottled.
    let tight = rollbacks(Some(0.5));
    let open = rollbacks(None);
    assert!(
        tight <= open,
        "window must not increase rollbacks (tight {tight} vs open {open})"
    );
    for (name, w) in [("unbounded", None), ("w2", Some(2.0)), ("w05", Some(0.5))] {
        let engine = scale.engine().with_optimism_window(w);
        let rc =
            RunConfig::new(threads, engine, SystemConfig::ALL_SIX[5]).with_machine(scale.machine());
        g.bench_function(name, |b| b.iter(|| run_sim(&model, &rc)));
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_cost_model,
    ablation_gvt_frequency,
    ablation_zero_counter,
    ablation_state_saving,
    ablation_optimism_window
);
criterion_main!(benches);
