//! Supervised virtual-machine execution: the same bounded-recovery loop as
//! the real-thread runtime, in virtual time.
//!
//! A scripted worker kill tears an attempt down ([`SimResult::killed`]); the
//! supervisor restores the newest GVT-aligned checkpoint, remaps the dead
//! thread's LPs onto the survivors, and resumes one thread smaller. When
//! `max_recoveries` is exhausted the run degrades to the sequential engine
//! from the last cut — a supervised run always completes. No wall-clock
//! backoff is applied: the machine is deterministic and single-threaded, so
//! sleeping would only slow the host down.

use crate::runner::{run_sim_resumable, RunConfig, SimResult};
use pdes_core::{
    run_sequential, run_sequential_from, Checkpoint, FaultInjector, Model, SequentialResult,
    SimThreadId, SupervisorConfig,
};
use std::sync::Arc;

/// How a supervised virtual-machine run finished.
// The parallel result dwarfs the sequential one; a supervised run yields
// exactly one outcome, so boxing would only complicate every caller.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum VmRecovered {
    /// The simulated parallel runtime completed (possibly after recoveries).
    Parallel(SimResult),
    /// Recovery was exhausted; the sequential engine finished the run from
    /// the last checkpoint (or from genesis when none existed).
    Sequential(SequentialResult),
}

impl VmRecovered {
    pub fn committed(&self) -> u64 {
        match self {
            VmRecovered::Parallel(r) => r.metrics.committed,
            VmRecovered::Sequential(s) => s.committed,
        }
    }

    pub fn commit_digest(&self) -> u64 {
        match self {
            VmRecovered::Parallel(r) => r.metrics.commit_digest,
            VmRecovered::Sequential(s) => s.commit_digest,
        }
    }

    /// Final per-LP state digests, in LP order.
    pub fn state_digests(&self) -> &[u64] {
        match self {
            VmRecovered::Parallel(r) => &r.digests,
            VmRecovered::Sequential(s) => &s.state_digests,
        }
    }
}

/// Outcome of a supervised run — always a completed simulation.
#[derive(Debug, Clone)]
pub struct VmSupervisedRun {
    pub outcome: VmRecovered,
    /// Recoveries performed (0 = first attempt succeeded).
    pub recoveries: u32,
    /// Whether the run fell back to the sequential engine.
    pub degraded: bool,
    /// One line per failed attempt, for operators and tests.
    pub log: Vec<String>,
}

impl VmSupervisedRun {
    pub fn completed_parallel(&self) -> bool {
        matches!(self.outcome, VmRecovered::Parallel(_))
    }
}

/// Run `model` on the virtual machine under supervision. Mirrors
/// `thread_rt::run_supervised`; see that module for the recovery contract.
pub fn run_sim_supervised<M: Model>(
    model: &Arc<M>,
    rc: &RunConfig,
    sup: &SupervisorConfig,
) -> VmSupervisedRun {
    let mut cfg = rc.clone();
    let mut ckpt: Option<Checkpoint<M::State, M::Payload>> = None;
    // Kills consumed since the newest checkpoint's fault cursor was taken
    // (reset when a fresher checkpoint arrives — its cursor embeds them).
    let mut consumed: Vec<usize> = Vec::new();
    let mut recoveries = 0u32;
    let mut log = Vec::new();

    loop {
        let injector = match ckpt.as_ref().and_then(|c| c.cursor.as_ref()) {
            Some(cur) => FaultInjector::with_cursor(cfg.faults.clone(), cur),
            None => FaultInjector::new(cfg.faults.clone()),
        };
        for &t in &consumed {
            injector.consume_kill(t);
        }
        let attempt = run_sim_resumable(model, &cfg, ckpt.as_ref(), Some(injector));
        let loads = attempt.thread_loads;
        if let Some(c) = attempt.checkpoint {
            ckpt = Some(c);
            consumed.clear();
        }
        if attempt.result.completed {
            return VmSupervisedRun {
                outcome: VmRecovered::Parallel(attempt.result),
                recoveries,
                degraded: false,
                log,
            };
        }
        let killed = attempt.result.killed;
        log.push(format!(
            "attempt {} failed: {}",
            recoveries + 1,
            match killed {
                Some(t) => format!("worker {t} killed (scripted fault)"),
                None => "stalled (virtual-time watchdog or deadlock)".to_string(),
            }
        ));
        if recoveries >= sup.max_recoveries {
            // Graceful degradation: finish sequentially from the last cut.
            let seq = match &ckpt {
                Some(c) => run_sequential_from(model, &cfg.engine, c, None),
                None => run_sequential(model, &cfg.engine, None),
            };
            log.push("recovery budget exhausted; degraded to sequential".into());
            return VmSupervisedRun {
                outcome: VmRecovered::Sequential(seq),
                recoveries,
                degraded: true,
                log,
            };
        }
        recoveries += 1;
        if let Some(dead) = killed {
            consumed.push(dead);
            // Remap the dead thread's LPs onto the survivors when there is a
            // checkpoint to resume under the new map; a pre-checkpoint
            // failure just restarts from genesis on the original map.
            if cfg.num_threads > 1 {
                if let Some(c) = &mut ckpt {
                    c.map = c.map.rebalanced_without(SimThreadId(dead as u32), &loads);
                    cfg.num_threads -= 1;
                }
            }
        }
    }
}
