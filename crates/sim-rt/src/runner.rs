//! The experiment runner: wires a model, a system configuration, and a
//! virtual machine together, runs the simulation, and collects metrics.

use crate::ckpt::VmCkptStore;
use crate::config::{AffinityPolicy, Scheduler, SimCost, SystemConfig};
use crate::controller::ControllerTask;
use crate::shared::Shared;
use crate::simthread::SimThreadTask;
use machine::{Machine, MachineConfig, Report, WorkTag};
use metrics::RunMetrics;
use pdes_core::{
    Checkpoint, EngineConfig, FaultInjector, FaultPlan, IngestGate, IngestRequest, LpId, LpMap,
    Model, SimThreadId, StallDump, ThreadEngine,
};
use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

/// Everything produced by one virtual-machine simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    pub metrics: RunMetrics,
    pub report: Report,
    /// Final state digest of every LP, ordered by LP id.
    pub digests: Vec<u64>,
    /// GVT monotonicity violations (must be 0).
    pub gvt_regressions: u64,
    /// Whether every task ran to completion (false if the time limit hit,
    /// the liveness watchdog tripped, or the machine deadlocked).
    pub completed: bool,
    /// Structured diagnostic when the run stalled (liveness watchdog trip
    /// or machine deadlock); `None` on a clean run.
    pub stall: Option<StallDump>,
    /// Fault injections actually performed (all zero without a plan).
    pub fault_counts: pdes_core::FaultCounts,
    /// Scheduling-activity transitions `(virtual ns, thread, scheduled-in)`
    /// — the raw data behind a Fig.-1-style activity diagram.
    pub timeline: Vec<(u64, usize, bool)>,
    /// Thread felled by a scripted worker kill (`completed` is then false).
    pub killed: Option<usize>,
    /// Collected trace + round snapshots (`None` when telemetry was off).
    /// Timestamps are virtual nanoseconds.
    pub telemetry: Option<telemetry::TelemetryData>,
}

impl SimResult {
    /// Render the activity timeline as CSV (`ns,thread,scheduled_in`).
    pub fn timeline_csv(&self) -> String {
        let mut out = String::from("ns,thread,scheduled_in\n");
        for &(ns, t, s) in &self.timeline {
            out.push_str(&format!("{ns},{t},{}\n", s as u8));
        }
        out
    }
}

/// Experiment parameters beyond the model itself.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub num_threads: usize,
    pub engine: EngineConfig,
    pub system: SystemConfig,
    pub machine: MachineConfig,
    pub cost: SimCost,
    /// Safety cap on virtual time (ns); `None` = unbounded.
    pub limit_ns: Option<u64>,
    /// Fault-injection plan (empty ⇒ zero-cost pass-through).
    pub faults: FaultPlan,
    /// Liveness watchdog: abort with a diagnostic dump when GVT makes no
    /// progress for this many *virtual* ns (`None` disables it).
    pub watchdog_ns: Option<u64>,
    /// Take a GVT-aligned checkpoint every this many GVT rounds
    /// (0 disables checkpointing).
    pub checkpoint_every_gvt: u64,
    /// Also persist each checkpoint here (atomic rename-into-place);
    /// `None` keeps checkpoints in memory only.
    pub checkpoint_path: Option<PathBuf>,
    /// Live telemetry (off by default; near-zero cost when disabled).
    pub telemetry: telemetry::TelemetryConfig,
}

impl RunConfig {
    pub fn new(num_threads: usize, engine: EngineConfig, system: SystemConfig) -> Self {
        RunConfig {
            num_threads,
            engine,
            system,
            machine: MachineConfig::default(),
            cost: SimCost::default(),
            limit_ns: Some(120_000_000_000), // 120 virtual seconds
            faults: FaultPlan::default(),
            watchdog_ns: Some(10_000_000_000), // 10 virtual seconds
            checkpoint_every_gvt: 0,
            checkpoint_path: None,
            telemetry: telemetry::TelemetryConfig::default(),
        }
    }

    pub fn with_machine(mut self, m: MachineConfig) -> Self {
        self.machine = m;
        self
    }

    /// Attach a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Override (or disable, with `None`) the virtual-time watchdog bound.
    pub fn with_watchdog_ns(mut self, bound: Option<u64>) -> Self {
        self.watchdog_ns = bound;
        self
    }

    /// Take a GVT-aligned checkpoint every `every` GVT rounds (0 disables).
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every_gvt = every;
        self
    }

    /// Persist checkpoints to `path` (atomic rename-into-place).
    pub fn with_checkpoint_path(mut self, path: PathBuf) -> Self {
        self.checkpoint_path = Some(path);
        self
    }

    /// Enable live telemetry (per-thread tracing + GVT-round snapshots).
    pub fn with_telemetry(mut self, telemetry: telemetry::TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// One attempt of a (possibly supervised) virtual-machine run: the result
/// plus what a supervisor needs to recover a failure — the newest assembled
/// checkpoint and the per-thread committed loads (survivor state is not
/// discarded when the attempt failed).
pub struct SimAttempt<M: Model> {
    pub result: SimResult,
    pub checkpoint: Option<Checkpoint<M::State, M::Payload>>,
    pub thread_loads: Vec<u64>,
}

/// Run `model` under the given configuration on the virtual machine.
///
/// Never panics on a stalled or deadlocked run: the liveness watchdog (and
/// the machine's deadlock detector) convert those into `completed == false`
/// plus a structured [`SimResult::stall`] dump.
///
/// # Panics
/// Panics on model/thread-count mismatches.
pub fn run_sim<M: Model>(model: &Arc<M>, rc: &RunConfig) -> SimResult {
    run_sim_resumable(model, rc, None, None).result
}

/// [`run_sim`] with a scripted ingest plane: `script` holds
/// `(gvt_round, request)` client arrivals replayed at each round's Aware
/// phase through `gate` — the same admission/pump path the real runtimes
/// use. Inspect the gate afterwards for verdict counts and the accepted
/// events to feed the merged-stream sequential oracle.
pub fn run_sim_ingest<M: Model>(
    model: &Arc<M>,
    rc: &RunConfig,
    gate: Arc<IngestGate<M::Payload>>,
    script: Vec<(u64, IngestRequest<M::Payload>)>,
) -> SimResult {
    run_sim_attempt(model, rc, None, None, Some((gate, script))).result
}

/// Run one attempt, optionally resuming from a GVT-aligned checkpoint and
/// with a pre-seeded fault injector (the supervisor restores fault-stream
/// cursors and consumes the kill that felled the previous attempt before
/// handing the injector in).
///
/// When `resume` is given, its map — not the formula map — assigns LPs to
/// threads, `rc.num_threads` must match the map, and the weak-scaling
/// divisibility requirement is waived (recovered maps are deliberately
/// uneven).
pub fn run_sim_resumable<M: Model>(
    model: &Arc<M>,
    rc: &RunConfig,
    resume: Option<&Checkpoint<M::State, M::Payload>>,
    faults: Option<FaultInjector>,
) -> SimAttempt<M> {
    run_sim_attempt(model, rc, resume, faults, None)
}

/// The full attempt body behind [`run_sim_resumable`] and
/// [`run_sim_ingest`].
#[allow(clippy::type_complexity)]
fn run_sim_attempt<M: Model>(
    model: &Arc<M>,
    rc: &RunConfig,
    resume: Option<&Checkpoint<M::State, M::Payload>>,
    faults: Option<FaultInjector>,
    ingest: Option<(
        Arc<IngestGate<M::Payload>>,
        Vec<(u64, IngestRequest<M::Payload>)>,
    )>,
) -> SimAttempt<M> {
    let num_threads = rc.num_threads;
    let map = match resume {
        Some(c) => {
            assert_eq!(
                c.map.num_threads as usize, num_threads,
                "checkpoint map threads must match the run config"
            );
            c.map.clone()
        }
        None => {
            assert!(
                model.num_lps().is_multiple_of(num_threads),
                "weak scaling requires LPs ({}) divisible by threads ({num_threads})",
                model.num_lps()
            );
            LpMap::new(model.num_lps(), num_threads, rc.engine.mapping)
        }
    };
    let num_cores = rc.machine.num_cores;

    let mut machine = Machine::new(rc.machine.clone());
    let shared = Rc::new(RefCell::new(Shared::<M::Payload>::new(
        num_threads,
        num_cores,
        rc.engine.end_time,
        rc.system,
        rc.cost.clone(),
    )));

    // Semaphores (`sem_locks`), the DD lock, faults, and the watchdog.
    {
        let mut sh = shared.borrow_mut();
        for _ in 0..num_threads {
            let sem = machine.kernel().add_sem(0, 1);
            sh.sems.push(sem);
        }
        if matches!(rc.system.scheduler, Scheduler::DdPdes) {
            sh.dd_mutex = Some(machine.kernel().add_mutex());
        }
        sh.set_faults(faults.unwrap_or_else(|| FaultInjector::new(rc.faults.clone())));
        // Each attempt gets a fresh registry: a supervised restart must not
        // inherit the felled attempt's half-deposited rings.
        sh.set_telemetry(telemetry::Telemetry::new(rc.telemetry.clone()));
        sh.watchdog_ns = rc.watchdog_ns;
        sh.ckpt_every = rc.checkpoint_every_gvt;
        if let Some((gate, script)) = ingest {
            sh.set_ingest(gate, map.clone(), script);
        }
        if let Some(c) = resume {
            // Resume mid-stream: GVT and the round cadence continue from the
            // cut instead of restarting at zero.
            sh.gvt = c.gvt;
            sh.gvt_rounds = c.gvt_rounds;
        }
    }
    let store: Rc<RefCell<VmCkptStore<M>>> = Rc::new(RefCell::new(VmCkptStore::new(
        if rc.checkpoint_every_gvt > 0 {
            rc.checkpoint_path.clone()
        } else {
            None
        },
        map.clone(),
    )));

    // Build engines; a fresh run pre-routes the initial events, a resumed
    // run instead restores each engine's share of the cut (initial events
    // are already part of the checkpoint's history).
    let mut engines = Vec::with_capacity(num_threads);
    for t in 0..num_threads {
        let mut eng = ThreadEngine::new(
            Arc::clone(model),
            map.clone(),
            SimThreadId(t as u32),
            &rc.engine,
        );
        match resume {
            Some(c) => {
                eng.take_init_events();
                eng.restore(&c.lps, &c.events, c.gvt);
            }
            None => {
                let init = eng.take_init_events();
                let mut sh = shared.borrow_mut();
                for (dst, msg) in init {
                    sh.push_msg(t, dst.index(), msg);
                }
            }
        }
        engines.push(eng);
    }
    // Initial events are pre-routed, not in-flight: clear the send windows
    // (queue minima still cover the messages).
    {
        let mut sh = shared.borrow_mut();
        for w in &mut sh.window_send_min {
            *w = pdes_core::VirtualTime::INFINITY;
        }
    }

    // The DD controller occupies a dedicated core (the last one); simulation
    // threads under constant affinity round-robin over the remaining cores.
    let dd = matches!(rc.system.scheduler, Scheduler::DdPdes);
    let sim_cores = if dd && num_cores > 1 {
        num_cores - 1
    } else {
        num_cores
    };

    for (t, eng) in engines.into_iter().enumerate() {
        let pin = match rc.system.affinity {
            AffinityPolicy::Constant => Some(t % sim_cores),
            AffinityPolicy::NoAffinity | AffinityPolicy::Dynamic => None,
        };
        let task = SimThreadTask::new(
            t,
            eng,
            Rc::clone(&shared),
            rc.system,
            rc.engine.clone(),
            Rc::clone(&store),
        );
        let id = machine.add_task(Box::new(task), format!("sim{t}"), pin);
        assert_eq!(id.index(), t, "task ids must equal thread ids");
    }
    if dd {
        let ctrl = ControllerTask::new(Rc::clone(&shared));
        let pin = if num_cores > 1 {
            Some(num_cores - 1)
        } else {
            None
        };
        machine.add_task(Box::new(ctrl), "controller", pin);
    }

    let (report, deadlocked) = match machine.run(rc.limit_ns) {
        Ok(r) => (r, false),
        Err(dl) => {
            // Every task is blocked — a protocol wedge (e.g. a lost wake-up
            // parking the whole group). Salvage the report and capture a
            // structured dump instead of panicking the process.
            let mut sh = shared.borrow_mut();
            if sh.stall.is_none() {
                let tokens: Vec<u32> = sh
                    .sems
                    .iter()
                    .map(|&s| machine.kernel_ref().sem_state(s).0)
                    .collect();
                let reason = format!("virtual machine deadlock: {dl}");
                sh.stall = Some(sh.build_stall_dump(&reason, &tokens));
            }
            drop(sh);
            (machine.report_now(), true)
        }
    };

    let sh = shared.borrow();
    let telemetry_data = sh.tel_enabled().then(|| sh.telemetry.take());
    let mut m = sh.collect_metrics();
    m.lps = model.num_lps();
    m.wall_secs = report.virtual_secs();
    m.total_work = report.total_work();
    m.wasted_work = report.work_for(WorkTag::Spin) + report.work_for(WorkTag::Poll);
    m.last_round = telemetry_data
        .as_ref()
        .and_then(|d| d.last_round().cloned());

    let mut digests: Vec<(LpId, u64)> = sh.final_digests.iter().flatten().copied().collect();
    digests.sort_by_key(|&(lp, _)| lp);
    let completed = !deadlocked
        && sh.stall.is_none()
        && sh.killed.is_none()
        && report.tasks.iter().all(|t| t.finished);
    if let Some(dump) = &sh.stall {
        eprintln!("{dump}");
    }
    if !completed && sh.killed.is_none() {
        // Diagnose what pinned the GVT (or what stalled the run).
        eprintln!(
            "[run_sim diag] {} T={num_threads}: gvt={} rounds={} active={} terminated={}",
            rc.system.name(),
            sh.gvt,
            sh.gvt_rounds,
            sh.num_active,
            sh.terminated
        );
        eprintln!(
            "  round: open={} id={} participants={} a={} b={} end={} aware={}",
            sh.round.open,
            sh.round.id,
            sh.round.participants,
            sh.round.a_done,
            sh.round.b_done,
            sh.round.end_done,
            sh.round.aware_claimed
        );
        for i in 0..num_threads {
            if sh.round.open && sh.round.participant[i] {
                eprintln!(
                    "  participant t{i}: phase={} active={} subscribed={} qlen={}",
                    sh.dbg_phase[i],
                    sh.active[i],
                    sh.subscribed[i],
                    sh.queues[i].len()
                );
            }
            if !sh.window_send_min[i].is_infinite() || !sh.queue_min[i].is_infinite() {
                eprintln!(
                    "  t{i}: window={} queue_min={} qlen={} active={} subscribed={}",
                    sh.window_send_min[i],
                    sh.queue_min[i],
                    sh.queues[i].len(),
                    sh.active[i],
                    sh.subscribed[i]
                );
            }
        }
    }

    // Survivor state outlives a failed attempt: per-thread committed loads
    // feed the supervisor's LP remap (the killed thread reports 0).
    let thread_loads: Vec<u64> = sh
        .final_stats
        .iter()
        .map(|s| s.as_ref().map_or(0, |st| st.committed))
        .collect();
    let result = SimResult {
        metrics: m,
        gvt_regressions: sh.gvt_regressions,
        digests: digests.into_iter().map(|(_, d)| d).collect(),
        timeline: sh.timeline.clone(),
        stall: sh.stall.clone(),
        fault_counts: sh.faults.counts(),
        killed: sh.killed,
        telemetry: telemetry_data,
        report,
        completed,
    };
    drop(sh);
    let checkpoint = store.borrow().latest();
    SimAttempt {
        result,
        checkpoint,
        thread_loads,
    }
}
