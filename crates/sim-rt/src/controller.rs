//! The DD-PDES dedicated controller thread (prior work, §3).
//!
//! Runs on its own CPU core and exclusively manages scheduling: it loops
//! acquiring the global scheduling lock, scanning every thread record for
//! inactive threads with pending input, and waking them. Simulation threads
//! must take the same lock to deactivate — at scale the O(N) scans inside
//! the critical section serialize the whole demand-driven machinery, which
//! is precisely the bottleneck GG-PDES removes.

use crate::shared::{Op, Shared};
use machine::{Ctx, Step, Task, WorkTag};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrlPhase {
    /// Acquire the global scheduling lock.
    Lock,
    /// Scan (holding the lock), wake, release.
    Scan,
}

/// The controller task.
pub struct ControllerTask<P> {
    shared: Rc<RefCell<Shared<P>>>,
    phase: CtrlPhase,
    ops: Vec<Op>,
}

impl<P> ControllerTask<P> {
    pub fn new(shared: Rc<RefCell<Shared<P>>>) -> Self {
        ControllerTask {
            shared,
            phase: CtrlPhase::Lock,
            ops: Vec::new(),
        }
    }
}

impl<P> Task for ControllerTask<P> {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        let shared = Rc::clone(&self.shared);
        let mut sh = shared.borrow_mut();
        let mutex = sh.dd_mutex.expect("controller requires the DD lock");
        match self.phase {
            CtrlPhase::Lock => {
                if sh.controller_exit {
                    return Step::Done;
                }
                self.phase = CtrlPhase::Scan;
                Step::MutexLock(mutex)
            }
            CtrlPhase::Scan => {
                self.phase = CtrlPhase::Lock;
                if sh.controller_exit {
                    drop(sh);
                    ctx.mutex_unlock(mutex);
                    return Step::Done;
                }
                let activated = sh.activate(&mut self.ops);
                let cost = sh.cost.scan_per_thread * sh.num_threads as u64
                    + sh.cost.sched_op * activated as u64;
                drop(sh);
                ctx.mutex_unlock(mutex);
                for op in self.ops.drain(..) {
                    match op {
                        Op::Post(t) => {
                            let sem = self.shared.borrow().sems[t];
                            ctx.sem_post(sem);
                        }
                        Op::Pin(..) => unreachable!("controller never pins"),
                    }
                }
                Step::work(cost, WorkTag::Sched)
            }
        }
    }
}
