//! Checkpoint assembly for the virtual-machine runtime.
//!
//! Each participant of an armed GVT round deposits its engine's share of the
//! cut during Phase End; the deposit completing the round assembles the
//! [`Checkpoint`] — LP snapshots in LP order, crossing events in key order —
//! and (optionally) persists it with an atomic rename. The machine is
//! single-threaded, so a plain `RefCell`-wrapped store replaces the
//! mutex-guarded sink the real-thread runtime uses; the protocol is the same.

use pdes_core::{Checkpoint, Event, FaultCursor, LpCheckpoint, LpMap, Model};
use std::path::PathBuf;

/// Accumulates per-thread cut deposits and keeps the newest assembled
/// checkpoint of the run.
pub struct VmCkptStore<M: Model> {
    path: Option<PathBuf>,
    map: LpMap,
    /// Round id the current partial deposits belong to.
    round: u64,
    deposits: usize,
    lps: Vec<LpCheckpoint<M::State>>,
    events: Vec<Event<M::Payload>>,
    latest: Option<Checkpoint<M::State, M::Payload>>,
}

impl<M: Model> VmCkptStore<M> {
    pub fn new(path: Option<PathBuf>, map: LpMap) -> Self {
        VmCkptStore {
            path,
            map,
            round: 0,
            deposits: 0,
            lps: Vec::new(),
            events: Vec::new(),
            latest: None,
        }
    }

    /// One participant's share of round `round`'s cut. Partial deposits from
    /// an earlier aborted round are discarded on the first deposit of a
    /// newer one. Returns whether this deposit completed a checkpoint.
    #[allow(clippy::too_many_arguments)]
    pub fn deposit(
        &mut self,
        round: u64,
        gvt: pdes_core::VirtualTime,
        gvt_rounds: u64,
        lps: Vec<LpCheckpoint<M::State>>,
        events: Vec<Event<M::Payload>>,
        expected: usize,
        cursor: Option<FaultCursor>,
    ) -> bool {
        if self.deposits > 0 && self.round != round {
            self.deposits = 0;
            self.lps.clear();
            self.events.clear();
        }
        self.round = round;
        self.deposits += 1;
        self.lps.extend(lps);
        self.events.extend(events);
        if self.deposits < expected {
            return false;
        }
        let mut lps = std::mem::take(&mut self.lps);
        let mut events = std::mem::take(&mut self.events);
        self.deposits = 0;
        lps.sort_by_key(|l| l.lp);
        events.sort_by_key(|e| e.key);
        let ck = Checkpoint {
            gvt,
            gvt_rounds,
            lps,
            events,
            map: self.map.clone(),
            cursor,
        };
        if let Some(path) = &self.path {
            if let Err(e) = ck.write_atomic(path) {
                // Persisting is best-effort; the in-memory cut still counts.
                eprintln!("[checkpoint] {e}");
            }
        }
        self.latest = Some(ck);
        true
    }

    /// The newest fully assembled checkpoint, if any.
    pub fn latest(&self) -> Option<Checkpoint<M::State, M::Payload>> {
        self.latest.clone()
    }
}
