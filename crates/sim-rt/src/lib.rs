//! # ggpdes-sim-rt — the PDES engine on the virtual machine
//!
//! This runtime executes the full Time Warp engine ([`pdes_core`]) as tasks
//! on the deterministic many-core model ([`machine`]), implementing all six
//! systems of the paper's evaluation —
//! `{Baseline, DD-PDES, GG-PDES} × {Sync, Async}` — and the three CPU
//! affinity policies. Events, rollbacks, anti-messages, and GVT values are
//! *real*; only time is modeled, so every figure of the paper can be
//! regenerated at 256–4096 thread scale on any host, bit-for-bit
//! reproducibly.
//!
//! Entry point: [`runner::run_sim`].
//!
//! Debugging aids: set `GG_TRACE=1` to stream GVT round lifecycle events
//! (open / phase-A folds / End completions) to stderr; incomplete runs
//! print a diagnostic dump of the round state and any stuck GVT minima.

pub mod ckpt;
pub mod config;
pub mod controller;
pub mod runner;
pub mod shared;
pub mod simthread;
pub mod supervisor;

pub use ckpt::VmCkptStore;
pub use config::{AffinityPolicy, GvtMode, Scheduler, SimCost, SystemConfig};
pub use runner::{run_sim, run_sim_ingest, run_sim_resumable, RunConfig, SimAttempt, SimResult};
pub use shared::{AffinityTables, Shared, SimIngest};
pub use simthread::SimThreadTask;
pub use supervisor::{run_sim_supervised, VmRecovered, VmSupervisedRun};
