//! System configurations: the six systems evaluated in the paper plus the
//! three CPU-affinity policies, and the engine cost model.

use serde::{Deserialize, Serialize};

/// Thread-scheduling scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheduler {
    /// No explicit de-scheduling; the (virtual) kernel's CFS decides
    /// everything.
    Baseline,
    /// Original Demand-Driven PDES: a dedicated controller thread manages
    /// activation/deactivation under a global lock (prior work, §3).
    DdPdes,
    /// GVT-Guided PDES: lock-free scheduling driven by the GVT phases with a
    /// per-round pseudo-controller (this paper, §4).
    GgPdes,
}

/// GVT algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GvtMode {
    /// Synchronous Barrier GVT: threads block at barriers each round.
    Sync,
    /// Asynchronous Wait-Free GVT: phases A / Send / B / Aware / End,
    /// threads keep simulating while rounds progress.
    Async,
}

/// CPU affinity policy (§4.2, Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AffinityPolicy {
    /// No pinning; the kernel migrates threads freely.
    NoAffinity,
    /// Round-robin pinning at startup, never changed (Algorithm 3).
    Constant,
    /// Pseudo-controller re-pins active threads to idle cores each GVT
    /// round, SMT-aware (Algorithm 4). Only meaningful under GG-PDES.
    Dynamic,
}

/// A complete system under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    pub scheduler: Scheduler,
    pub gvt: GvtMode,
    pub affinity: AffinityPolicy,
}

impl SystemConfig {
    pub const fn new(scheduler: Scheduler, gvt: GvtMode, affinity: AffinityPolicy) -> Self {
        SystemConfig {
            scheduler,
            gvt,
            affinity,
        }
    }

    /// The six systems of Figures 2–4, all under constant affinity.
    pub const ALL_SIX: [SystemConfig; 6] = [
        SystemConfig::new(Scheduler::Baseline, GvtMode::Sync, AffinityPolicy::Constant),
        SystemConfig::new(
            Scheduler::Baseline,
            GvtMode::Async,
            AffinityPolicy::Constant,
        ),
        SystemConfig::new(Scheduler::DdPdes, GvtMode::Sync, AffinityPolicy::Constant),
        SystemConfig::new(Scheduler::DdPdes, GvtMode::Async, AffinityPolicy::Constant),
        SystemConfig::new(Scheduler::GgPdes, GvtMode::Sync, AffinityPolicy::Constant),
        SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant),
    ];

    /// The three headline systems of Figures 5–6.
    pub const HEADLINE: [SystemConfig; 3] = [
        SystemConfig::new(Scheduler::Baseline, GvtMode::Sync, AffinityPolicy::Constant),
        SystemConfig::new(Scheduler::DdPdes, GvtMode::Async, AffinityPolicy::Constant),
        SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant),
    ];

    /// Paper-style display name, e.g. `GG-PDES-Async`.
    pub fn name(&self) -> String {
        let s = match self.scheduler {
            Scheduler::Baseline => "Baseline",
            Scheduler::DdPdes => "DD-PDES",
            Scheduler::GgPdes => "GG-PDES",
        };
        let g = match self.gvt {
            GvtMode::Sync => "Sync",
            GvtMode::Async => "Async",
        };
        match self.affinity {
            AffinityPolicy::Constant => format!("{s}-{g}"),
            AffinityPolicy::NoAffinity => format!("{s}-{g}+NoAff"),
            AffinityPolicy::Dynamic => format!("{s}-{g}+DynAff"),
        }
    }

    /// Does this system de-schedule inactive threads?
    pub fn demand_driven(&self) -> bool {
        !matches!(self.scheduler, Scheduler::Baseline)
    }
}

/// Cost of the PDES engine's operations on the virtual machine, in cycles.
/// See DESIGN.md §5.3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimCost {
    /// Checking the input queue once.
    pub poll: u64,
    /// Receiving (delivering) one message from the input queue.
    pub recv_msg: u64,
    /// Processing one event (includes state saving).
    pub proc_event: u64,
    /// Sending one event/anti-message to another thread.
    pub send_msg: u64,
    /// Undoing one event during a rollback.
    pub rollback_event: u64,
    /// One GVT phase operation (recording a minimum, folding).
    pub gvt_phase: u64,
    /// Checking whether a GVT phase has globally completed.
    pub phase_check: u64,
    /// Scheduling bookkeeping (activation scan per entry, deactivation).
    pub sched_op: u64,
    /// Re-pinning a thread (the `sched_setaffinity` call, Algorithm 4).
    pub affinity_op: u64,
    /// Controller scan cost per thread record (DD-PDES).
    pub scan_per_thread: u64,
    /// Input-queue polls batched into one idle step (model-side batching of
    /// an idle thread's spin loop; does not change contention semantics).
    pub idle_polls_per_step: u64,
}

impl Default for SimCost {
    fn default() -> Self {
        SimCost {
            poll: 60,
            recv_msg: 100,
            proc_event: 1000,
            send_msg: 120,
            rollback_event: 700,
            gvt_phase: 200,
            phase_check: 40,
            sched_op: 150,
            affinity_op: 250,
            scan_per_thread: 80,
            idle_polls_per_step: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_conventions() {
        assert_eq!(
            SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant).name(),
            "GG-PDES-Async"
        );
        assert_eq!(
            SystemConfig::new(Scheduler::Baseline, GvtMode::Sync, AffinityPolicy::Constant).name(),
            "Baseline-Sync"
        );
        assert_eq!(
            SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Dynamic).name(),
            "GG-PDES-Async+DynAff"
        );
    }

    #[test]
    fn all_six_are_distinct() {
        let names: std::collections::BTreeSet<String> =
            SystemConfig::ALL_SIX.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn demand_driven_flag() {
        assert!(!SystemConfig::ALL_SIX[0].demand_driven());
        assert!(SystemConfig::ALL_SIX[2].demand_driven());
        assert!(SystemConfig::ALL_SIX[5].demand_driven());
    }
}
