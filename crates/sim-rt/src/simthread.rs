//! The simulation-thread task: the ROSS main loop plus the GVT round and
//! demand-driven scheduling state machine, for all six system
//! configurations.
//!
//! Each [`machine::Task::step`] call performs one slice — a main-loop cycle,
//! a GVT phase, a barrier arrival, a deactivation — on *real* Time Warp data
//! structures, and returns its modeled cost. The phase structure follows
//! §4.1: Wait-Free GVT rounds run phases A → Send → B → Aware → End;
//! activation happens in Aware (pseudo-controller), deactivation in End;
//! synchronous rounds use three blocking barrier points instead.

use crate::ckpt::VmCkptStore;
use crate::config::{AffinityPolicy, GvtMode, Scheduler, SystemConfig};
use crate::shared::{Arrive, Op, Shared};
use machine::{Ctx, Step, Task, WorkTag};
use pdes_core::{EngineConfig, Model, Outbound, ThreadEngine};
use std::cell::RefCell;
use std::rc::Rc;
use telemetry::{EventKind, Tracer};

/// Where the thread is in its control loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Normal main-loop cycling (includes the Wait-Free *Send* phase).
    Cycle,
    // Wait-free GVT round:
    AsyncA,
    AsyncWaitA,
    AsyncB,
    AsyncWaitB,
    AsyncAware,
    AsyncEnd,
    // Barrier GVT round (indices are the three arrival points):
    SyncBar(u8),
    SyncFold,
    SyncCtrl,
    SyncEnd,
    /// DD-PDES only: holding the global lock to deactivate.
    DdDoDeact,
    /// Blocked on own semaphore (de-scheduled). Next step = woken.
    Parked,
    /// Commit remaining history and report stats.
    Finishing,
    /// Felled by a scripted worker kill: report nothing, just exit — the
    /// thread's uncommitted work is lost, exactly like a real crash.
    Dead,
}

/// One simulation thread.
pub struct SimThreadTask<M: Model> {
    tid: usize,
    engine: ThreadEngine<M>,
    shared: Rc<RefCell<Shared<M::Payload>>>,
    sys: SystemConfig,
    ecfg: EngineConfig,

    phase: Phase,
    /// Cycles since the thread last joined a GVT round (drives the paper's
    /// 1-in-200-cycles trigger).
    cycles_since_gvt: u64,
    /// Consecutive idle cycles (Algorithm 1's `zero_counter`).
    zero_counter: u64,
    /// Algorithm 1's thread-local `active` flag.
    active_flag: bool,
    /// Round id this thread last joined.
    joined_round: Option<u64>,
    /// Wall time when the thread joined the current round.
    round_enter_ns: u64,
    /// Liveness watchdog: last observed (gvt_rounds, gvt).
    wd_last: (u64, pdes_core::VirtualTime),
    /// Virtual time of the last watchdog observation change.
    wd_last_change_ns: u64,
    outbox: Vec<Outbound<M::Payload>>,
    /// Scratch for kernel ops queued while `shared` is borrowed.
    ops: Vec<Op>,
    /// Checkpoint deposit store (shared by all sim threads of the run).
    ckpt: Rc<RefCell<VmCkptStore<M>>>,
    /// Work cycles completed — the clock scripted worker kills fire on.
    total_cycles: u64,
    /// Telemetry tracer (no-op unless the run enabled telemetry).
    /// Timestamps here are *virtual* nanoseconds (`ctx.now()`).
    tracer: Tracer,
    /// Virtual time the current GVT phase started.
    ph_ns: u64,
    /// Virtual time the thread parked (for the Park span).
    park_ns: u64,
}

impl<M: Model> SimThreadTask<M> {
    pub fn new(
        tid: usize,
        engine: ThreadEngine<M>,
        shared: Rc<RefCell<Shared<M::Payload>>>,
        sys: SystemConfig,
        ecfg: EngineConfig,
        ckpt: Rc<RefCell<VmCkptStore<M>>>,
    ) -> Self {
        let tracer = shared.borrow().telemetry.tracer(tid);
        SimThreadTask {
            tid,
            engine,
            shared,
            sys,
            ecfg,
            phase: Phase::Cycle,
            cycles_since_gvt: 0,
            zero_counter: 0,
            active_flag: true,
            joined_round: None,
            round_enter_ns: 0,
            wd_last: (0, pdes_core::VirtualTime::ZERO),
            wd_last_change_ns: 0,
            outbox: Vec::new(),
            ops: Vec::new(),
            ckpt,
            total_cycles: 0,
            tracer,
            ph_ns: 0,
            park_ns: 0,
        }
    }

    /// Virtual-time liveness watchdog: trip when neither `gvt_rounds` nor
    /// `gvt` has changed within the configured bound of virtual time.
    /// Returns `true` when this call tripped — the run is then torn down
    /// (dump captured, everyone woken, this task heading to `Finishing`).
    fn watchdog_check(&mut self, sh: &mut Shared<M::Payload>, now: u64, ctx: &Ctx<'_>) -> bool {
        let Some(bound) = sh.watchdog_ns else {
            return false;
        };
        let obs = (sh.gvt_rounds, sh.gvt);
        if obs != self.wd_last {
            self.wd_last = obs;
            self.wd_last_change_ns = now;
            return false;
        }
        if sh.terminated || now.saturating_sub(self.wd_last_change_ns) <= bound {
            return false;
        }
        let sem_tokens: Vec<u32> = sh.sems.iter().map(|&s| ctx.sem_state(s).0).collect();
        let reason = format!(
            "no GVT progress for {} virtual ns (bound {bound})",
            now - self.wd_last_change_ns
        );
        sh.stall = Some(sh.build_stall_dump(&reason, &sem_tokens));
        sh.terminated = true;
        sh.controller_exit = true;
        // Emergency drain: wake *every* thread — including one wrongly
        // marked active by a lost wake-up, which the normal termination
        // broadcast (inactive threads only) would strand in `sem_wait`.
        for i in 0..sh.num_threads {
            self.ops.push(Op::Post(i));
        }
        self.phase = Phase::Finishing;
        true
    }

    /// Advance this task's work-cycle counter and ask the fault injector
    /// whether a scripted kill fires at the new count.
    fn tick_kill_clock(&mut self, sh: &Shared<M::Payload>) -> bool {
        self.total_cycles += 1;
        sh.faults.should_kill(self.tid, self.total_cycles)
    }

    /// One main-loop cycle: drain the input queue, process a batch, route
    /// sends. Returns (cost, cycles_advanced, useful).
    fn do_cycle(&mut self, sh: &mut Shared<M::Payload>, now: u64) -> (u64, u64, bool) {
        let c = sh.cost.clone();
        let msgs = sh.drain(self.tid);
        let n_msgs = msgs.len() as u64;
        let mut rolled = 0u64;
        self.outbox.clear();
        for m in msgs {
            let d = self.engine.deliver(m, &mut self.outbox);
            rolled += d.rolled_back as u64;
        }
        let batch = self
            .engine
            .process_batch(self.ecfg.batch_size, &mut self.outbox);
        let sends = self.outbox.len() as u64;
        for (dst, msg) in self.outbox.drain(..) {
            sh.push_msg(self.tid, dst.index(), msg);
        }
        rolled += batch.rolled_back as u64;

        let idle = n_msgs == 0 && batch.processed == 0;
        // Algorithm 1, read_message_count: track consecutive empty cycles.
        let cycles = if idle {
            c.idle_polls_per_step.max(1)
        } else {
            1
        };
        if idle && !self.engine.has_live_pending() {
            self.zero_counter += cycles;
            if self.zero_counter > self.ecfg.zero_counter_threshold as u64 {
                self.active_flag = false;
            }
        } else {
            self.zero_counter = 0;
            self.active_flag = true;
        }

        let cost = c.poll * cycles
            + c.recv_msg * n_msgs
            + c.proc_event * batch.processed as u64
            + c.send_msg * sends
            + c.rollback_event * rolled;
        if self.tracer.enabled() {
            // The cycle occupies [now, now + cost] in virtual time.
            if batch.processed > 0 {
                self.tracer.span(
                    EventKind::EventBatch,
                    now,
                    now + cost,
                    batch.processed as u64,
                );
            }
            if rolled > 0 {
                self.tracer
                    .span(EventKind::Rollback, now, now + cost, rolled);
            }
        }
        (cost, cycles, !idle)
    }

    /// Drain + fold the engine minimum into the open round.
    fn drain_and_fold(&mut self, sh: &mut Shared<M::Payload>) -> u64 {
        let c = sh.cost.clone();
        let msgs = sh.drain(self.tid);
        let n = msgs.len() as u64;
        let mut rolled = 0u64;
        self.outbox.clear();
        for m in msgs {
            rolled += self.engine.deliver(m, &mut self.outbox).rolled_back as u64;
        }
        let sends = self.outbox.len() as u64;
        for (dst, msg) in self.outbox.drain(..) {
            sh.push_msg(self.tid, dst.index(), msg);
        }
        let local = self.engine.local_min();
        sh.fold_min(self.tid, local);
        if self.tracer.enabled() {
            sh.tel_publish(self.tid, local, self.engine.stats());
        }
        c.gvt_phase + c.recv_msg * n + c.send_msg * sends + c.rollback_event * rolled
    }

    /// Should this thread de-schedule itself (Algorithm 1, line 8)?
    ///
    /// §3 defines inactive as "LPs have not received **or sent** an event
    /// message in a predefined period": an unfolded send window means a
    /// recent send whose timestamp still backs the GVT lower bound — the
    /// thread must stay for one more round (its next Phase-A fold clears
    /// the window) before it may park.
    fn wants_deactivation(&self, sh: &Shared<M::Payload>) -> bool {
        self.sys.demand_driven()
            && !self.active_flag
            && sh.queues[self.tid].is_empty()
            && !self.engine.has_live_pending()
            && sh.window_send_min[self.tid].is_infinite()
    }

    /// Pseudo-controller duties at Aware: new GVT, termination, activation.
    /// Returns the cost.
    fn aware_duties(&mut self, sh: &mut Shared<M::Payload>) -> u64 {
        let c = sh.cost.clone();
        let mut cost = c.gvt_phase;
        sh.compute_gvt();
        // Admit scripted external arrivals against the floor just published
        // (same Aware-phase slot as the real runtimes' ingest pump).
        let injected = sh.pump_ingest();
        cost += c.recv_msg * injected;
        if sh.terminated {
            sh.release_all_for_termination(&mut self.ops);
            cost += c.sched_op * self.ops.len() as u64;
        } else if matches!(self.sys.scheduler, Scheduler::GgPdes) {
            // Algorithm 2 — the scan itself costs per entry.
            let activated = sh.activate(&mut self.ops);
            cost += c.scan_per_thread / 4 * sh.num_threads as u64 + c.sched_op * activated as u64;
        }
        cost
    }

    /// End-of-phase-End bookkeeping shared by both GVT modes. Returns the
    /// follow-up (cost, next phase, optional blocking step).
    fn end_duties(&mut self, sh: &mut Shared<M::Payload>, now: u64) -> (u64, Step) {
        let c = sh.cost.clone();
        let mut cost = c.gvt_phase;
        let trace = self.tracer.enabled();
        if sh.ckpt_round == Some(sh.round.id) && !sh.terminated {
            let cw0 = cost;
            // Armed round: this thread's share of the consistent cut. The
            // claimant computed the round's GVT before any participant can
            // reach End (single-threaded machine, Aware precedes End), so
            // `sh.gvt` is final here. Drain the input queue chaos-exempt and
            // deliver, so every in-flight message below the cut is inside
            // the engine before the snapshot; messages at or above GVT are
            // delivered too but excluded from the cut (their senders re-send
            // them deterministically after a restore).
            let msgs = sh.drain_clean(self.tid);
            let n = msgs.len() as u64;
            self.outbox.clear();
            for m in msgs {
                self.engine.deliver(m, &mut self.outbox);
            }
            for (dst, msg) in self.outbox.drain(..) {
                sh.push_msg(self.tid, dst.index(), msg);
            }
            let g = sh.gvt;
            self.engine.fossil_collect(g);
            let (lps, events) = self.engine.snapshot_at_gvt(g);
            cost += c.gvt_phase + c.recv_msg * n + c.proc_event * lps.len() as u64;
            self.ckpt.borrow_mut().deposit(
                sh.round.id,
                g,
                sh.gvt_rounds,
                lps,
                events,
                sh.round.participants,
                sh.faults.cursor(),
            );
            if trace {
                // The snapshot occupies [now + cw0, now + cost] virtually.
                self.tracer.span(
                    EventKind::CheckpointWrite,
                    now + cw0,
                    now + cost,
                    sh.round.id,
                );
            }
        } else {
            self.engine.fossil_collect(sh.gvt);
        }
        sh.gvt_wall_in_round += now.saturating_sub(self.round_enter_ns);
        let deact = !sh.terminated && self.wants_deactivation(sh);
        let rid = sh.round.id;
        if trace {
            // Refresh this thread's counters so a closing snapshot reflects
            // post-round totals.
            sh.tel_publish(self.tid, self.engine.local_min(), self.engine.stats());
        }
        let closed = sh.end_phase(self.tid);
        if closed {
            sh.tel_round_snapshot(rid, now);
        }
        if closed && self.sys.affinity == AffinityPolicy::Dynamic && !sh.terminated {
            let (pinned, scanned) = sh.set_cpu_affinity(&mut self.ops);
            cost += c.affinity_op * pinned as u64 + (scanned as u64) * 8;
            if trace && pinned > 0 {
                self.tracer
                    .instant(EventKind::Migrate, now + cost, pinned as u64);
            }
        }
        if trace {
            self.tracer
                .span(EventKind::GvtEnd, self.ph_ns, now + cost, rid);
        }
        if sh.terminated {
            self.phase = Phase::Finishing;
            return (cost, Step::work(cost, WorkTag::Gvt));
        }
        self.cycles_since_gvt = 0;
        if deact {
            match self.sys.scheduler {
                Scheduler::GgPdes => {
                    // Lock-free: phase coupling makes this safe (§4.1.4).
                    if sh.deactivate_self(self.tid) {
                        sh.record_transition(now, self.tid, false);
                        if trace {
                            self.park_ns = now + cost;
                            let stats = self.engine.stats().clone();
                            sh.tel_publish(self.tid, pdes_core::VirtualTime::INFINITY, &stats);
                        }
                        self.phase = Phase::Parked;
                        return (cost, Step::SemWait(sh.sems[self.tid]));
                    }
                }
                Scheduler::DdPdes => {
                    // Serialized through the controller's global lock; leave
                    // the GVT group first so no round waits on us while we
                    // block on the mutex.
                    sh.dd_unsubscribe(self.tid);
                    self.phase = Phase::DdDoDeact;
                    let m = sh.dd_mutex.expect("DD systems have the lock");
                    return (cost, Step::MutexLock(m));
                }
                Scheduler::Baseline => unreachable!("baseline never deactivates"),
            }
        }
        self.phase = Phase::Cycle;
        (cost, Step::work(cost, WorkTag::Gvt))
    }

    /// Apply queued kernel ops through the machine context.
    fn apply_ops(&mut self, ctx: &mut Ctx<'_>) {
        for op in self.ops.drain(..) {
            match op {
                Op::Post(t) => {
                    let sem = self.shared.borrow().sems[t];
                    ctx.sem_post(sem);
                }
                Op::Pin(t, core) => {
                    ctx.set_affinity(machine::TaskId(t as u32), Some(core));
                }
            }
        }
    }
}

impl<M: Model> Task for SimThreadTask<M> {
    fn step(&mut self, ctx: &mut Ctx<'_>) -> Step {
        let now = ctx.now();
        let shared = Rc::clone(&self.shared);
        let mut sh = shared.borrow_mut();
        debug_assert!(self.ops.is_empty());
        sh.dbg_phase[self.tid] = match self.phase {
            Phase::Cycle => "Cycle",
            Phase::AsyncA => "AsyncA",
            Phase::AsyncWaitA => "AsyncWaitA",
            Phase::AsyncB => "AsyncB",
            Phase::AsyncWaitB => "AsyncWaitB",
            Phase::AsyncAware => "AsyncAware",
            Phase::AsyncEnd => "AsyncEnd",
            Phase::SyncBar(0) => "SyncBar0",
            Phase::SyncBar(1) => "SyncBar1",
            Phase::SyncBar(_) => "SyncBar2",
            Phase::SyncFold => "SyncFold",
            Phase::SyncCtrl => "SyncCtrl",
            Phase::SyncEnd => "SyncEnd",
            Phase::DdDoDeact => "DdDoDeact",
            Phase::Parked => "Parked",
            Phase::Finishing => "Finishing",
            Phase::Dead => "Dead",
        };
        let step = match self.phase {
            Phase::Cycle => {
                if sh.terminated {
                    self.phase = Phase::Finishing;
                    Step::work(sh.cost.phase_check, WorkTag::Gvt)
                } else if self.watchdog_check(&mut sh, now, ctx) {
                    Step::work(sh.cost.phase_check, WorkTag::Gvt)
                } else if self.tick_kill_clock(&sh) {
                    // Scripted worker death: tear the run down exactly as a
                    // crash would — uncommitted work on this thread is lost,
                    // siblings are woken to drain, and the runner reports the
                    // attempt as failed so a supervisor can recover it.
                    sh.killed = Some(self.tid);
                    sh.terminated = true;
                    sh.controller_exit = true;
                    for i in 0..sh.num_threads {
                        if i != self.tid {
                            self.ops.push(Op::Post(i));
                        }
                    }
                    self.phase = Phase::Dead;
                    Step::work(sh.cost.phase_check, WorkTag::Sched)
                } else {
                    let (cost, cycles, useful) = self.do_cycle(&mut sh, now);
                    self.cycles_since_gvt += cycles;
                    let mut tag = if useful { WorkTag::Sim } else { WorkTag::Spin };
                    // GVT trigger: the thread's own 1-in-`gvt_interval`
                    // counter, or an in-flight round whose participant
                    // snapshot is waiting for this thread.
                    let round_waiting = sh.round.open
                        && sh.round.participant[self.tid]
                        && self.joined_round != Some(sh.round.id);
                    let interval = match self.ecfg.adaptive_gvt {
                        Some(a) => {
                            a.effective_interval(self.ecfg.gvt_interval, self.engine.history_len())
                        }
                        None => self.ecfg.gvt_interval,
                    };
                    if (self.cycles_since_gvt >= interval as u64 || round_waiting)
                        && sh.subscribed[self.tid]
                    {
                        let participate = sh.ensure_round_open(self.tid, &mut self.ops);
                        let fresh = self.joined_round != Some(sh.round.id);
                        if participate && fresh {
                            self.joined_round = Some(sh.round.id);
                            sh.dbg_joined[self.tid] = self.joined_round;
                            self.round_enter_ns = now;
                            self.ph_ns = now;
                            self.phase = match self.sys.gvt {
                                GvtMode::Async => Phase::AsyncA,
                                GvtMode::Sync => Phase::SyncBar(0),
                            };
                            tag = WorkTag::Gvt;
                        }
                    }
                    Step::work(cost, tag)
                }
            }

            // ---- Wait-Free GVT ------------------------------------------
            Phase::AsyncA => {
                assert!(
                    sh.round.open
                        && sh.round.participant[self.tid]
                        && self.joined_round == Some(sh.round.id),
                    "t{} stale AsyncA: open={} id={} joined={:?} participant={} a={} b={} end={} participants={}",
                    self.tid,
                    sh.round.open,
                    sh.round.id,
                    self.joined_round,
                    sh.round.participant[self.tid],
                    sh.round.a_done,
                    sh.round.b_done,
                    sh.round.end_done,
                    sh.round.participants,
                );
                let cost = self.drain_and_fold(&mut sh);
                sh.round.a_done += 1;
                if std::env::var_os("GG_TRACE").is_some() {
                    eprintln!(
                        "[trace] t{} A round {} ({}/{})",
                        self.tid, sh.round.id, sh.round.a_done, sh.round.participants
                    );
                }
                if self.tracer.enabled() {
                    self.tracer
                        .span(EventKind::GvtA, self.ph_ns, now + cost, sh.round.id);
                    self.ph_ns = now + cost;
                }
                self.phase = Phase::AsyncWaitA;
                Step::work(cost, WorkTag::Gvt)
            }
            Phase::AsyncWaitA | Phase::AsyncWaitB => {
                // Only an abnormal abort (watchdog trip, poisoned run) can
                // terminate while a participant still waits mid-round —
                // normal termination requires every `b_done` first. Escape
                // instead of spinning on a count that will never arrive.
                // The watchdog check also lives here: this *is* the stall
                // loop under a lost wake-up (the round's snapshot includes
                // a thread that is parked and will never fold).
                if sh.terminated {
                    self.phase = Phase::Finishing;
                    drop(sh);
                    self.apply_ops(ctx);
                    return Step::work(self.shared.borrow().cost.phase_check, WorkTag::Gvt);
                }
                if self.watchdog_check(&mut sh, now, ctx) {
                    drop(sh);
                    self.apply_ops(ctx);
                    return Step::work(self.shared.borrow().cost.phase_check, WorkTag::Gvt);
                }
                // The *Send* phase: keep simulating while peers catch up.
                let (cost, _, useful) = self.do_cycle(&mut sh, now);
                let check = sh.cost.phase_check;
                let done = if self.phase == Phase::AsyncWaitA {
                    sh.round.a_done == sh.round.participants
                } else {
                    sh.round.b_done == sh.round.participants
                };
                if done {
                    if self.tracer.enabled() {
                        let kind = if self.phase == Phase::AsyncWaitA {
                            EventKind::GvtSendA
                        } else {
                            EventKind::GvtSendB
                        };
                        self.tracer.span(kind, self.ph_ns, now + cost, sh.round.id);
                        self.ph_ns = now + cost;
                    }
                    self.phase = if self.phase == Phase::AsyncWaitA {
                        Phase::AsyncB
                    } else {
                        Phase::AsyncAware
                    };
                }
                let tag = if useful { WorkTag::Sim } else { WorkTag::Gvt };
                Step::work(cost + check, tag)
            }
            Phase::AsyncB => {
                let cost = self.drain_and_fold(&mut sh);
                sh.round.b_done += 1;
                if self.tracer.enabled() {
                    self.tracer
                        .span(EventKind::GvtB, self.ph_ns, now + cost, sh.round.id);
                    self.ph_ns = now + cost;
                }
                self.phase = Phase::AsyncWaitB;
                Step::work(cost, WorkTag::Gvt)
            }
            Phase::AsyncAware => {
                let cost = if sh.claim_aware(self.tid) {
                    self.aware_duties(&mut sh)
                } else {
                    sh.cost.phase_check
                };
                if self.tracer.enabled() {
                    self.tracer
                        .span(EventKind::GvtAware, self.ph_ns, now + cost, sh.round.id);
                    self.ph_ns = now + cost;
                }
                self.phase = Phase::AsyncEnd;
                Step::work(cost, WorkTag::Sched)
            }
            Phase::AsyncEnd => {
                let (_cost, step) = self.end_duties(&mut sh, now);
                step
            }

            // ---- Barrier GVT --------------------------------------------
            Phase::SyncBar(i) => {
                self.phase = match i {
                    0 => Phase::SyncFold,
                    1 => Phase::SyncCtrl,
                    _ => Phase::SyncEnd,
                };
                match sh.barrier_arrive(self.tid, i as usize, &mut self.ops) {
                    Arrive::Proceed => Step::work(sh.cost.gvt_phase, WorkTag::Gvt),
                    Arrive::Park => Step::SemWait(sh.sems[self.tid]),
                }
            }
            Phase::SyncFold => {
                let cost = self.drain_and_fold(&mut sh);
                if self.tracer.enabled() {
                    self.tracer
                        .span(EventKind::GvtA, self.ph_ns, now + cost, sh.round.id);
                    self.ph_ns = now + cost;
                }
                self.phase = Phase::SyncBar(1);
                Step::work(cost, WorkTag::Gvt)
            }
            Phase::SyncCtrl => {
                // Sync mapping mirrors thread-rt: the reduction barrier wait
                // is the B phase, the controller slice is Aware.
                if self.tracer.enabled() {
                    self.tracer
                        .span(EventKind::GvtB, self.ph_ns, now, sh.round.id);
                    self.ph_ns = now;
                }
                let cost = if sh.claim_aware(self.tid) {
                    self.aware_duties(&mut sh)
                } else {
                    sh.cost.phase_check
                };
                if self.tracer.enabled() {
                    self.tracer
                        .span(EventKind::GvtAware, self.ph_ns, now + cost, sh.round.id);
                    self.ph_ns = now + cost;
                }
                self.phase = Phase::SyncBar(2);
                Step::work(cost, WorkTag::Sched)
            }
            Phase::SyncEnd => {
                // The exit-barrier wait maps onto Send-B.
                if self.tracer.enabled() {
                    self.tracer
                        .span(EventKind::GvtSendB, self.ph_ns, now, sh.round.id);
                    self.ph_ns = now;
                }
                let (_cost, step) = self.end_duties(&mut sh, now);
                step
            }

            // ---- demand-driven blocking paths ----------------------------
            Phase::DdDoDeact => {
                // Holding the DD global lock. If the simulation terminated
                // while we waited for it, the wake-everyone broadcast has
                // already run — do not park now, finish instead.
                let m = sh.dd_mutex.expect("DD lock exists");
                if sh.terminated {
                    sh.subscribed[self.tid] = true; // undo dd_unsubscribe
                    drop(sh);
                    ctx.mutex_unlock(m);
                    self.phase = Phase::Finishing;
                    return Step::work(self.shared.borrow().cost.sched_op, WorkTag::Sched);
                }
                // An armed checkpoint round force-subscribed us while we
                // waited for the lock: its participant snapshot now includes
                // this thread, so parking would wedge the round. Abort the
                // deactivation and go fold into the round instead.
                if sh.round.open
                    && sh.round.participant[self.tid]
                    && self.joined_round != Some(sh.round.id)
                {
                    sh.subscribed[self.tid] = true;
                    drop(sh);
                    ctx.mutex_unlock(m);
                    self.phase = Phase::Cycle;
                    return Step::work(self.shared.borrow().cost.sched_op, WorkTag::Sched);
                }
                let ok = sh.dd_finalize_deact(self.tid);
                if ok {
                    sh.record_transition(now, self.tid, false);
                    if self.tracer.enabled() {
                        self.park_ns = now;
                        let stats = self.engine.stats().clone();
                        sh.tel_publish(self.tid, pdes_core::VirtualTime::INFINITY, &stats);
                    }
                }
                drop(sh);
                ctx.mutex_unlock(m);
                let sems = self.shared.borrow().sems[self.tid];
                if ok {
                    self.phase = Phase::Parked;
                    return Step::SemWait(sems);
                }
                self.phase = Phase::Cycle;
                let c = self.shared.borrow().cost.sched_op;
                return Step::work(c, WorkTag::Sched);
            }
            Phase::Parked => {
                // A wake token proves nothing by itself: a fault plan may
                // post a parked thread without activating it (spurious
                // wake-up). Re-park unless the activator marked us active
                // or the run is over.
                if !sh.terminated && !sh.active[self.tid] {
                    let sem = sh.sems[self.tid];
                    drop(sh);
                    return Step::SemWait(sem);
                }
                // Woken: either reactivated (Algorithm 1 lines 14–17) or the
                // simulation ended.
                sh.on_wake(self.tid);
                sh.record_transition(now, self.tid, true);
                if self.tracer.enabled() {
                    self.tracer
                        .span(EventKind::Park, self.park_ns, now, self.tid as u64);
                    self.tracer.instant(EventKind::Unpark, now, self.tid as u64);
                }
                self.zero_counter = 0;
                self.active_flag = true;
                // `joined_round` stays untouched: it records the last round
                // this thread folded into. If the currently open round's
                // snapshot includes us (we were re-activated just before it
                // opened) its id is newer and we join it; if we already
                // completed the open round before parking, the ids match and
                // we correctly skip it.
                self.cycles_since_gvt = 0;
                self.phase = if sh.terminated {
                    Phase::Finishing
                } else {
                    Phase::Cycle
                };
                Step::work(sh.cost.sched_op, WorkTag::Sched)
            }

            Phase::Finishing => {
                if std::env::var_os("GG_TRACE").is_some() {
                    eprintln!(
                        "[trace] t{} finishing after {} cycles",
                        self.tid, self.total_cycles
                    );
                }
                self.engine.finalize();
                sh.final_stats[self.tid] = Some(self.engine.stats().clone());
                sh.final_digests[self.tid] = self.engine.state_digests();
                sh.telemetry
                    .deposit(std::mem::replace(&mut self.tracer, Tracer::disabled()));
                drop(sh);
                return Step::Done;
            }
            Phase::Dead => {
                drop(sh);
                return Step::Done;
            }
        };
        drop(sh);
        self.apply_ops(ctx);
        step
    }
}
