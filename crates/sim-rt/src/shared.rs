//! State shared between simulation-thread tasks on the virtual machine:
//! input queues, the demand-driven scheduling arrays (`active_threads`,
//! semaphores), the GVT round protocol, and the dynamic-affinity tables.
//!
//! In the real system these are concurrently-accessed arrays ("padded and
//! aligned to cache lines", §4.1.4); on the single-threaded virtual machine
//! they live behind one `Rc<RefCell<…>>`, but the *protocol* — who may touch
//! what in which GVT phase — is exactly the paper's, and is exercised as
//! such by the thread-rt implementation with real atomics.

use crate::config::{SimCost, SystemConfig};
use machine::{MutexId, SemId};
use metrics::RunMetrics;
use pdes_core::{
    batch_has_uid_pairs, EventKey, EventUid, FaultInjector, IngestGate, IngestRequest, LpMap, Msg,
    ReplySlot, RoundDump, StallDump, ThreadDump, ThreadStats, VirtualTime,
};
use std::collections::VecDeque;

/// Deferred kernel operations produced while the shared state is borrowed;
/// the task applies them through [`machine::Ctx`] after releasing the borrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `sem_post(sem_locks[thread])` — schedule the thread in.
    Post(usize),
    /// Pin `thread` to `core` (`sched_setaffinity`).
    Pin(usize, usize),
}

/// Outcome of arriving at the dynamic barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrive {
    /// This arrival completed the generation; wake the parked threads (the
    /// `Op::Post`s are already queued) and proceed.
    Proceed,
    /// Park: the caller must `sem_wait` on its own semaphore.
    Park,
}

/// Per-round GVT protocol state.
#[derive(Debug, Clone)]
pub struct Round {
    pub open: bool,
    pub id: u64,
    /// Participation snapshot taken when the round opened.
    pub participant: Vec<bool>,
    pub participants: usize,
    /// Wait-free phase counters.
    pub a_done: usize,
    pub b_done: usize,
    pub end_done: usize,
    /// Set once a thread claimed the pseudo-controller role (Phase Aware).
    pub aware_claimed: bool,
    /// Folded minimum (pending-set mins + send windows).
    pub min_fold: VirtualTime,
    /// Synchronous-mode barrier state: three arrival points per round.
    pub bar_arrived: [usize; 3],
    pub bar_parked: [Vec<usize>; 3],
}

impl Round {
    fn new(n: usize) -> Self {
        Round {
            open: false,
            id: 0,
            participant: vec![false; n],
            participants: 0,
            a_done: 0,
            b_done: 0,
            end_done: 0,
            aware_claimed: false,
            min_fold: VirtualTime::INFINITY,
            bar_arrived: [0; 3],
            bar_parked: [Vec::new(), Vec::new(), Vec::new()],
        }
    }
}

/// Dynamic CPU-affinity tables (§4.2), stored exactly as the paper does:
/// `core_of` is `affinity_table_inv` (`-1` = unpinned) and `core_load`
/// summarizes `affinity_table` per core (how many active threads are pinned
/// there) — the quantity the SMT-aware search minimizes.
#[derive(Debug, Clone)]
pub struct AffinityTables {
    pub core_load: Vec<i32>,
    pub core_of: Vec<i32>,
}

impl AffinityTables {
    pub fn new(num_cores: usize, num_threads: usize) -> Self {
        AffinityTables {
            core_load: vec![0; num_cores],
            core_of: vec![-1; num_threads],
        }
    }

    /// Core the thread is pinned to, if any.
    #[inline]
    pub fn core_of(&self, thread: usize) -> Option<usize> {
        let c = self.core_of[thread];
        (c >= 0).then_some(c as usize)
    }

    /// Pin `thread` to `core` in the tables.
    pub fn pin(&mut self, thread: usize, core: usize) {
        debug_assert_eq!(self.core_of[thread], -1, "double pin");
        self.core_of[thread] = core as i32;
        self.core_load[core] += 1;
    }

    /// Clear a deactivating thread's assignment (Algorithm 1, lines 9–10).
    pub fn clear(&mut self, thread: usize) {
        let c = self.core_of[thread];
        if c >= 0 {
            self.core_load[c as usize] -= 1;
            self.core_of[thread] = -1;
        }
    }

    /// Memory footprint in bytes. With the paper's layout (one `int` per
    /// core plus one per thread) this is ~16.6 KB at 4096 threads / 64
    /// cores — the paper quotes ~17 KB (§6.6).
    pub fn footprint_bytes(&self) -> usize {
        (self.core_load.len() + self.core_of.len()) * std::mem::size_of::<i32>()
    }
}

/// Scripted external-event ingest for the deterministic virtual machine:
/// the gate, the LP → thread routing map, and a script of submissions keyed
/// by the GVT round at which the client "arrives" with them. The VM has no
/// real client threads, so arrivals are replayed from the script at the
/// round's Aware phase — the same admission/pump path the real runtimes use,
/// with bit-identical verdicts.
pub struct SimIngest<P> {
    pub gate: std::sync::Arc<IngestGate<P>>,
    pub map: LpMap,
    /// `(gvt_round, request)` pairs, sorted by round.
    pub script: Vec<(u64, IngestRequest<P>)>,
    /// Script cursor.
    pub next: usize,
}

/// Everything the tasks share.
pub struct Shared<P> {
    pub num_threads: usize,
    pub num_cores: usize,
    pub end_time: VirtualTime,
    pub sys: SystemConfig,
    pub cost: SimCost,

    /// Per-thread input queues.
    pub queues: Vec<VecDeque<Msg<P>>>,
    /// Minimum receive time currently in each queue (∞ when empty) —
    /// transient-message coverage for GVT.
    pub queue_min: Vec<VirtualTime>,
    /// Residual send-window minimum per thread (folded each round).
    pub window_send_min: Vec<VirtualTime>,

    /// The paper's `active_threads` array.
    pub active: Vec<bool>,
    pub num_active: usize,
    /// GVT-round participation (deactivated threads unsubscribe).
    pub subscribed: Vec<bool>,
    /// The paper's `sem_locks`: one binary semaphore per thread.
    pub sems: Vec<SemId>,

    pub gvt: VirtualTime,
    pub gvt_rounds: u64,
    pub terminated: bool,
    pub round: Round,

    /// Take a GVT-aligned checkpoint every this many rounds (0 = disabled).
    pub ckpt_every: u64,
    /// Round id currently armed for a checkpoint, if any. Every thread is
    /// force-subscribed into an armed round so the cut covers all engines.
    pub ckpt_round: Option<u64>,
    /// Thread felled by a scripted [`pdes_core::FaultKind::WorkerKill`];
    /// the run is torn down and reported as failed for the supervisor.
    pub killed: Option<usize>,

    pub aff: AffinityTables,

    /// DD-PDES global scheduling lock.
    pub dd_mutex: Option<MutexId>,
    pub controller_exit: bool,

    // ---- metrics ----
    /// Σ over threads of wall time spent inside GVT rounds (ns).
    pub gvt_wall_in_round: u64,
    pub max_descheduled: usize,
    /// Would-be monotonicity violations (must stay 0).
    pub gvt_regressions: u64,
    /// Final per-thread engine stats, filled as tasks finish.
    pub final_stats: Vec<Option<ThreadStats>>,
    /// Final per-thread (lp, state-digest) lists.
    pub final_digests: Vec<Vec<(pdes_core::LpId, u64)>>,
    /// Debug: (round id, round open, a_done, b_done) at each thread's last
    /// window write.
    pub dbg_window_write: Vec<(u64, bool, usize, usize)>,
    /// Debug: last observed control-loop phase per thread.
    pub dbg_phase: Vec<&'static str>,
    /// Debug: last round id each thread joined.
    pub dbg_joined: Vec<Option<u64>>,
    /// Scripted external-event ingest (`None` = no live ingest).
    pub ingest: Option<SimIngest<P>>,
    /// Fault-injection plan (inert by default).
    pub faults: FaultInjector,
    /// Virtual-time liveness bound: abort when GVT makes no progress for
    /// this many virtual ns (`None` disables the watchdog).
    pub watchdog_ns: Option<u64>,
    /// Set by the virtual-time liveness watchdog when it aborts the run.
    pub stall: Option<StallDump>,
    /// Activity timeline: `(virtual ns, thread, scheduled-in?)` transitions,
    /// recorded at de-scheduling and reactivation (capped; see
    /// [`TIMELINE_CAP`]).
    pub timeline: Vec<(u64, usize, bool)>,

    // ---- telemetry ----
    /// Live telemetry registry (an inert `off()` registry by default).
    pub telemetry: std::sync::Arc<telemetry::Telemetry>,
    /// Latest published per-thread LVT ticks (`u64::MAX` = idle/∞).
    pub tel_lvt: Vec<u64>,
    /// Latest published per-thread cumulative counters.
    pub tel_committed: Vec<u64>,
    pub tel_processed: Vec<u64>,
    pub tel_rolled_back: Vec<u64>,
}

/// Maximum recorded timeline transitions (memory bound for long runs).
pub const TIMELINE_CAP: usize = 262_144;

impl<P> Shared<P> {
    pub fn new(
        num_threads: usize,
        num_cores: usize,
        end_time: VirtualTime,
        sys: SystemConfig,
        cost: SimCost,
    ) -> Self {
        Shared {
            num_threads,
            num_cores,
            end_time,
            sys,
            cost,
            queues: (0..num_threads).map(|_| VecDeque::new()).collect(),
            queue_min: vec![VirtualTime::INFINITY; num_threads],
            window_send_min: vec![VirtualTime::INFINITY; num_threads],
            active: vec![true; num_threads],
            num_active: num_threads,
            subscribed: vec![true; num_threads],
            sems: Vec::new(),
            gvt: VirtualTime::ZERO,
            gvt_rounds: 0,
            terminated: false,
            round: Round::new(num_threads),
            ckpt_every: 0,
            ckpt_round: None,
            killed: None,
            aff: AffinityTables::new(num_cores, num_threads),
            dd_mutex: None,
            controller_exit: false,
            gvt_wall_in_round: 0,
            max_descheduled: 0,
            gvt_regressions: 0,
            final_stats: vec![None; num_threads],
            final_digests: vec![Vec::new(); num_threads],
            dbg_window_write: vec![(0, false, 0, 0); num_threads],
            dbg_phase: vec!["init"; num_threads],
            dbg_joined: vec![None; num_threads],
            ingest: None,
            faults: FaultInjector::disabled(),
            watchdog_ns: None,
            stall: None,
            timeline: Vec::new(),
            telemetry: telemetry::Telemetry::off(),
            tel_lvt: vec![u64::MAX; num_threads],
            tel_committed: vec![0; num_threads],
            tel_processed: vec![0; num_threads],
            tel_rolled_back: vec![0; num_threads],
        }
    }

    /// Attach a fault injector (before the run starts).
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Attach a scripted ingest plane (before the run starts). `script`
    /// holds `(gvt_round, request)` arrivals; it is sorted here so the pump
    /// can consume it with a cursor.
    pub fn set_ingest(
        &mut self,
        gate: std::sync::Arc<IngestGate<P>>,
        map: LpMap,
        mut script: Vec<(u64, IngestRequest<P>)>,
    ) {
        script.sort_by_key(|(round, _)| *round);
        self.ingest = Some(SimIngest {
            gate,
            map,
            script,
            next: 0,
        });
    }

    /// Attach a telemetry registry (before the run starts).
    pub fn set_telemetry(&mut self, registry: std::sync::Arc<telemetry::Telemetry>) {
        self.telemetry = registry;
    }

    /// Whether telemetry collection is on for this run.
    #[inline]
    pub fn tel_enabled(&self) -> bool {
        self.telemetry.enabled()
    }

    /// Publish thread `me`'s LVT and cumulative engine counters for the
    /// next round snapshot (pass `VirtualTime::INFINITY` when idle).
    pub fn tel_publish(&mut self, me: usize, lvt: VirtualTime, stats: &ThreadStats) {
        self.tel_lvt[me] = if lvt.is_infinite() {
            u64::MAX
        } else {
            lvt.ticks()
        };
        self.tel_committed[me] = stats.committed;
        self.tel_processed[me] = stats.processed;
        self.tel_rolled_back[me] = stats.rolled_back;
    }

    /// Stamp the per-round counter snapshot at round `id`'s End phase
    /// (no-op when telemetry is off). `now_ns` is virtual time here.
    pub fn tel_round_snapshot(&self, id: u64, now_ns: u64) {
        if !self.telemetry.enabled() {
            return;
        }
        self.telemetry.record_round(telemetry::RoundTotals {
            round: id,
            gvt_ticks: self.gvt.ticks(),
            ts_ns: now_ns,
            committed: self.tel_committed.iter().sum(),
            processed: self.tel_processed.iter().sum(),
            rolled_back: self.tel_rolled_back.iter().sum(),
            active_threads: self.num_active,
            members: self.tel_lvt.len() as u64,
            lvt_ticks: self.tel_lvt.clone(),
            queue_depths: self.queues.iter().map(|q| q.len()).collect(),
            ingest: self
                .ingest
                .as_ref()
                .map(|p| {
                    let s = p.gate.stats();
                    (s.admitted, s.rejected, s.shed, s.busy)
                })
                .unwrap_or((0, 0, 0, 0)),
        });
    }

    // ---- message routing --------------------------------------------------

    /// Enqueue a message for `dst`, maintaining the queue minimum and the
    /// sender's send-window minimum.
    pub fn push_msg(&mut self, sender: usize, dst: usize, msg: Msg<P>) {
        let t = msg.recv_time();
        if t < self.queue_min[dst] {
            self.queue_min[dst] = t;
        }
        if t < self.window_send_min[sender] {
            self.window_send_min[sender] = t;
            self.dbg_window_write[sender] = (
                self.round.id,
                self.round.open,
                self.round.a_done,
                self.round.b_done,
            );
        }
        self.queues[dst].push_back(msg);
    }

    /// Take every queued message for `me` (the queue minimum resets — the
    /// messages are about to enter the pending set, covered by the thread's
    /// own fold from now on).
    pub fn drain(&mut self, me: usize) -> VecDeque<Msg<P>> {
        self.queue_min[me] = VirtualTime::INFINITY;
        let mut out = std::mem::take(&mut self.queues[me]);
        if self.faults.is_enabled() {
            self.chaos_filter(me, &mut out);
        }
        out
    }

    /// Fault injection on a drained batch: per-message deferral, a bounded
    /// straggler hold-back of the batch minimum, and adversarial shuffling.
    /// Held-back messages re-enter this thread's own queue *within this
    /// call*, restoring their `queue_min` coverage before any GVT
    /// computation can observe the reset above — so the deferral is
    /// invisible to the transient-message invariant (trivially, here: the
    /// virtual machine is single-threaded).
    /// Per-uid FIFO is the one ordering contract chaos must respect (an
    /// anti-message and its re-sent positive twin may never swap places):
    /// once one message of a uid is deferred, every later same-uid message
    /// defers with it; a straggler hold drags same-uid companions along and
    /// skips uids that already have a deferred member; shuffling skips
    /// batches containing same-uid pairs. Re-queued messages land in the
    /// (just-emptied) queue ahead of all future arrivals, so deferral never
    /// reorders across drains either.
    fn chaos_filter(&mut self, me: usize, out: &mut VecDeque<Msg<P>>) {
        let mut deferred_uids: Vec<EventUid> = Vec::new();
        for _ in 0..out.len() {
            let m = out.pop_front().expect("bounded by entry len");
            let uid = m.key().uid;
            if deferred_uids.contains(&uid) || self.faults.defer_delivery() {
                deferred_uids.push(uid);
                self.requeue(me, m);
            } else {
                out.push_back(m);
            }
        }
        if out.len() > 1 {
            let min_i = out
                .iter()
                .enumerate()
                .filter(|(_, m)| !deferred_uids.contains(&m.key().uid))
                .min_by_key(|(_, m)| m.recv_time().ticks())
                .map(|(i, _)| i);
            if let Some(min_i) = min_i {
                if self.faults.straggler_hold() {
                    let uid = out[min_i].key().uid;
                    let mut i = min_i;
                    while i < out.len() {
                        if out[i].key().uid == uid {
                            let m = out.remove(i).expect("index in range");
                            self.requeue(me, m);
                        } else {
                            i += 1;
                        }
                    }
                }
            }
        }
        let batch = out.make_contiguous();
        if !batch_has_uid_pairs(batch) {
            self.faults.shuffle_batch(batch);
        }
    }

    fn requeue(&mut self, me: usize, m: Msg<P>) {
        let t = m.recv_time();
        if t < self.queue_min[me] {
            self.queue_min[me] = t;
        }
        self.queues[me].push_back(m);
    }

    // ---- GVT round protocol ------------------------------------------------

    /// Take every queued message for `me` *without* the chaos filter — the
    /// checkpoint drain at Phase End of an armed round must capture every
    /// in-flight message below the cut, so scripted deferral is exempt here
    /// (exactly as the real-thread runtime's clean drain).
    pub fn drain_clean(&mut self, me: usize) -> VecDeque<Msg<P>> {
        self.queue_min[me] = VirtualTime::INFINITY;
        std::mem::take(&mut self.queues[me])
    }

    /// Open a new round if none is open; snapshot the participant set.
    /// Returns whether `me` participates in the (now) open round.
    ///
    /// When the checkpoint cadence lands on the opening round, every thread
    /// is force-subscribed (and parked threads force-woken, chaos-exempt)
    /// *before* the participant snapshot, so the armed round's cut covers
    /// every engine.
    pub fn ensure_round_open(&mut self, me: usize, ops: &mut Vec<Op>) -> bool {
        if !self.round.open {
            let arm = self.ckpt_every > 0
                && !self.terminated
                && (self.gvt_rounds + 1).is_multiple_of(self.ckpt_every);
            if arm {
                for i in 0..self.num_threads {
                    self.subscribed[i] = true;
                    if !self.active[i] {
                        self.active[i] = true;
                        self.num_active += 1;
                        ops.push(Op::Post(i));
                    }
                }
                self.ckpt_round = Some(self.round.id);
            }
            if std::env::var_os("GG_TRACE").is_some() {
                eprintln!(
                    "[trace] t{me} OPEN round {} (subscribed={})",
                    self.round.id,
                    self.subscribed.iter().filter(|&&x| x).count()
                );
            }
            self.round.open = true;
            self.round.participant.copy_from_slice(&self.subscribed);
            self.round.participants = self.subscribed.iter().filter(|&&s| s).count();
            self.round.a_done = 0;
            self.round.b_done = 0;
            self.round.end_done = 0;
            self.round.aware_claimed = false;
            self.round.min_fold = VirtualTime::INFINITY;
            self.round.bar_arrived = [0; 3];
            for p in &mut self.round.bar_parked {
                p.clear();
            }
        }
        self.round.participant[me]
    }

    /// Fold a thread's local minimum and its send window into the round.
    pub fn fold_min(&mut self, me: usize, local_min: VirtualTime) {
        let w = std::mem::replace(&mut self.window_send_min[me], VirtualTime::INFINITY);
        let m = local_min.min(w);
        if m < self.round.min_fold {
            self.round.min_fold = m;
        }
    }

    /// Compute the new GVT (pseudo-controller, Phase Aware): the folded
    /// minima plus every residual send window and every parked queue
    /// minimum — the conservative transient-message coverage.
    pub fn compute_gvt(&mut self) -> VirtualTime {
        let mut g = self.round.min_fold;
        for i in 0..self.num_threads {
            g = g.min(self.window_send_min[i]).min(self.queue_min[i]);
        }
        if g < self.gvt {
            // Must never happen — counted so tests can assert on it.
            self.gvt_regressions += 1;
        } else {
            self.gvt = g;
        }
        self.gvt_rounds += 1;
        if self.gvt >= self.end_time {
            self.terminated = true;
        }
        self.gvt
    }

    /// Arrive at sync-mode barrier `idx` (0, 1, or 2 within the round).
    pub fn barrier_arrive(&mut self, me: usize, idx: usize, ops: &mut Vec<Op>) -> Arrive {
        debug_assert!(self.round.open && self.round.participant[me]);
        self.round.bar_arrived[idx] += 1;
        debug_assert!(self.round.bar_arrived[idx] <= self.round.participants);
        if self.round.bar_arrived[idx] == self.round.participants {
            for &t in &self.round.bar_parked[idx] {
                ops.push(Op::Post(t));
            }
            self.round.bar_parked[idx].clear();
            Arrive::Proceed
        } else {
            self.round.bar_parked[idx].push(me);
            Arrive::Park
        }
    }

    /// Claim the pseudo-controller role for this round. First caller wins.
    pub fn claim_aware(&mut self, _me: usize) -> bool {
        if self.round.aware_claimed {
            return false;
        }
        self.round.aware_claimed = true;
        true
    }

    /// Complete the End phase for `me`; the last participant closes the
    /// round. Returns `true` if this call closed it.
    pub fn end_phase(&mut self, me: usize) -> bool {
        self.round.end_done += 1;
        if std::env::var_os("GG_TRACE").is_some() {
            eprintln!(
                "[trace] t{me} END round {} ({}/{})",
                self.round.id, self.round.end_done, self.round.participants
            );
        }
        if self.round.end_done == self.round.participants {
            self.round.open = false;
            self.round.id += 1;
            true
        } else {
            false
        }
    }

    // ---- demand-driven scheduling (Algorithms 1 & 2) ------------------------

    /// Algorithm 2: scan for inactive threads with pending input and wake
    /// them. Returns the number of activations (the `Op::Post`s are queued).
    pub fn activate(&mut self, ops: &mut Vec<Op>) -> usize {
        let mut n = 0;
        if self.num_active < self.num_threads {
            for i in 0..self.num_threads {
                if !self.active[i] && !self.queues[i].is_empty() {
                    self.active[i] = true;
                    self.subscribed[i] = true;
                    self.num_active += 1;
                    // Lost wake-up fault: the bookkeeping above happened but
                    // the `sem_post` never goes out — the thread stays parked
                    // while the protocol believes it is running. (Termination
                    // wake-ups in `release_all_for_termination` are exempt.)
                    if !self.faults.lose_wakeup() {
                        ops.push(Op::Post(i));
                    }
                    n += 1;
                }
            }
            if self.faults.spurious_wakeup() {
                // Post a thread that was *not* activated: its task must
                // re-park rather than trust the token.
                if let Some(i) = (0..self.num_threads).find(|&i| !self.active[i]) {
                    ops.push(Op::Post(i));
                }
            }
        }
        n
    }

    /// Algorithm 1 (lines 9–12): bookkeeping for a thread de-scheduling
    /// itself. The caller must then `sem_wait`. Refuses to deactivate the
    /// last active thread — someone must remain to run GVT rounds and
    /// reactivate the others (see DESIGN.md §5.6).
    pub fn deactivate_self(&mut self, me: usize) -> bool {
        if self.num_active <= 1 {
            return false;
        }
        assert!(
            self.window_send_min[me].is_infinite(),
            "thread {me} deactivating with unfolded send window {} (round open={} id={} a_done={} b_done={} participants={})",
            self.window_send_min[me],
            self.round.open,
            self.round.id,
            self.round.a_done,
            self.round.b_done,
            self.round.participants,
        );
        self.aff.clear(me);
        self.active[me] = false;
        self.subscribed[me] = false;
        self.num_active -= 1;
        let parked = self.num_threads - self.num_active;
        if parked > self.max_descheduled {
            self.max_descheduled = parked;
        }
        true
    }

    /// DD-PDES, step 1 of deactivation (at Phase End, lock-free):
    /// unsubscribe from GVT rounds so an opening round does not wait on a
    /// thread that is about to block on the scheduling lock.
    pub fn dd_unsubscribe(&mut self, me: usize) {
        self.subscribed[me] = false;
    }

    /// DD-PDES, step 2 (holding the global lock): the actual bookkeeping.
    /// Refuses (and re-subscribes) if this is the last active thread.
    pub fn dd_finalize_deact(&mut self, me: usize) -> bool {
        if self.num_active <= 1 {
            self.subscribed[me] = true;
            return false;
        }
        assert!(
            self.window_send_min[me].is_infinite(),
            "thread {me} DD-deactivating with unfolded send window {} (written at {:?}; now round id={} open={} a={} b={} end={} participant={})",
            self.window_send_min[me],
            self.dbg_window_write[me],
            self.round.id,
            self.round.open,
            self.round.a_done,
            self.round.b_done,
            self.round.end_done,
            self.round.participant[me],
        );
        self.aff.clear(me);
        self.active[me] = false;
        self.num_active -= 1;
        let parked = self.num_threads - self.num_active;
        if parked > self.max_descheduled {
            self.max_descheduled = parked;
        }
        true
    }

    /// Wake-side bookkeeping (Algorithm 1, lines 14–17) — under GG the
    /// pseudo-controller already set the flags in [`Self::activate`]; this
    /// is a consistency check plus reactivation of termination stragglers.
    pub fn on_wake(&mut self, me: usize) {
        if !self.terminated {
            debug_assert!(self.active[me], "woken thread must be marked active");
        }
    }

    // ---- Dynamic CPU affinity (Algorithm 4) ---------------------------------

    /// Pin every active-but-unpinned thread to the least-loaded core.
    /// Returns (threads pinned, table entries scanned) for cost accounting.
    pub fn set_cpu_affinity(&mut self, ops: &mut Vec<Op>) -> (usize, usize) {
        let mut pinned = 0;
        let mut scanned = 0;
        for t in 0..self.num_threads {
            scanned += 1;
            if !self.active[t] || self.aff.core_of(t).is_some() {
                continue;
            }
            // SMT-aware search: the core with the fewest active pinned
            // threads (ties → lowest index).
            let mut best = 0;
            for c in 1..self.num_cores {
                scanned += 1;
                if self.aff.core_load[c] < self.aff.core_load[best] {
                    best = c;
                }
            }
            self.aff.pin(t, best);
            ops.push(Op::Pin(t, best));
            pinned += 1;
        }
        (pinned, scanned)
    }

    // ---- termination --------------------------------------------------------

    /// Wake every de-scheduled thread so it can observe `terminated` and
    /// finish; also tells the DD controller to exit.
    pub fn release_all_for_termination(&mut self, ops: &mut Vec<Op>) {
        debug_assert!(self.terminated);
        self.controller_exit = true;
        for i in 0..self.num_threads {
            if !self.active[i] {
                ops.push(Op::Post(i));
            }
        }
    }

    /// Snapshot everything a stall post-mortem needs. `sem_tokens[i]` is the
    /// token count of thread `i`'s scheduling semaphore (gathered by the
    /// caller, which can reach the kernel).
    pub fn build_stall_dump(&self, reason: &str, sem_tokens: &[u32]) -> StallDump {
        let fmt_vt = |t: VirtualTime| {
            if t.is_infinite() {
                "inf".to_string()
            } else {
                t.to_string()
            }
        };
        StallDump {
            reason: reason.into(),
            system: self.sys.name(),
            gvt: self.gvt.to_string(),
            gvt_rounds: self.gvt_rounds,
            num_active: self.num_active,
            terminated: self.terminated,
            round: RoundDump {
                open: self.round.open,
                id: self.round.id,
                participants: self.round.participants,
                a_done: self.round.a_done,
                b_done: self.round.b_done,
                end_done: self.round.end_done,
                aware_claimed: self.round.aware_claimed,
            },
            threads: (0..self.num_threads)
                .map(|i| ThreadDump {
                    thread: i,
                    phase: self.dbg_phase[i].into(),
                    joined_round: self.dbg_joined[i],
                    queue_len: self.queues[i].len(),
                    active: self.active[i],
                    subscribed: self.subscribed[i],
                    sem_tokens: sem_tokens.get(i).copied().unwrap_or(0),
                    window_min: fmt_vt(self.window_send_min[i]),
                    queue_min: fmt_vt(self.queue_min[i]),
                })
                .collect(),
            fault_counts: self.faults.counts(),
            last_round: self.telemetry.last_round(),
        }
    }

    /// Record an activity transition for the timeline.
    pub fn record_transition(&mut self, now_ns: u64, thread: usize, scheduled_in: bool) {
        if self.timeline.len() < TIMELINE_CAP {
            self.timeline.push((now_ns, thread, scheduled_in));
        }
    }

    // ---- final metrics -------------------------------------------------------

    /// Aggregate the per-thread stats into a [`RunMetrics`] skeleton (wall
    /// time and work totals are filled from the machine report by the
    /// runner).
    pub fn collect_metrics(&self) -> RunMetrics {
        let mut total = ThreadStats::default();
        for s in self.final_stats.iter().flatten() {
            total.merge(s);
        }
        RunMetrics {
            system: self.sys.name(),
            threads: self.num_threads,
            committed: total.committed,
            processed: total.processed,
            rolled_back: total.rolled_back,
            rollbacks: total.rollbacks,
            antis_sent: total.antis_sent,
            gvt_rounds: self.gvt_rounds,
            gvt_cpu_secs: self.gvt_wall_in_round as f64 * 1e-9,
            max_descheduled: self.max_descheduled,
            commit_digest: total.commit_digest,
            protocol: "optimistic".into(),
            ..Default::default()
        }
    }
}

impl<P: Clone + serde::Serialize> Shared<P> {
    /// Replay due scripted arrivals, raise the admission floor to the GVT
    /// just computed, and inject every admitted event — called by the
    /// pseudo-controller right after `compute_gvt`. The machine is
    /// single-threaded, so "under the gate lock" is trivially satisfied:
    /// nothing can interleave between the floor update, the admission check,
    /// and the queue publish. Returns the number injected.
    pub fn pump_ingest(&mut self) -> u64 {
        let Some(ing) = &mut self.ingest else {
            return 0;
        };
        let round = self.gvt_rounds;
        let gate = std::sync::Arc::clone(&ing.gate);
        while ing.next < ing.script.len() && ing.script[ing.next].0 <= round {
            let req = ing.script[ing.next].1.clone();
            ing.next += 1;
            let _ = gate.submit(req, ReplySlot::None);
        }
        gate.set_floor(self.gvt);
        let map = ing.map.clone();
        let mut buf = Vec::new();
        if gate.pump(|_| true, &mut |ev| buf.push(ev)).is_err() {
            // The VM journals to memory only (no path), so an append failure
            // is unreachable; a future journaled config would surface it.
            return 0;
        }
        let n = buf.len() as u64;
        for ev in buf {
            let dst = map.thread_of(ev.key.dst).index();
            self.push_msg(0, dst, Msg::Event(ev));
        }
        n
    }
}

/// Fold an anti/positive message key into GVT coverage — helper for tests.
pub fn key_time(key: &EventKey) -> VirtualTime {
    key.recv_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AffinityPolicy, GvtMode, Scheduler};
    use pdes_core::{EventUid, LpId};

    fn mk(n: usize, cores: usize) -> Shared<()> {
        Shared::new(
            n,
            cores,
            VirtualTime::from_f64(100.0),
            SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant),
            SimCost::default(),
        )
    }

    fn msg(t: f64) -> Msg<()> {
        Msg::Anti(EventKey {
            recv_time: VirtualTime::from_f64(t),
            dst: LpId(0),
            uid: EventUid::new(LpId(0), 0),
        })
    }

    #[test]
    fn push_and_drain_maintain_queue_min() {
        let mut s = mk(2, 2);
        s.push_msg(0, 1, msg(5.0));
        s.push_msg(0, 1, msg(3.0));
        assert_eq!(s.queue_min[1], VirtualTime::from_f64(3.0));
        assert_eq!(s.window_send_min[0], VirtualTime::from_f64(3.0));
        let drained = s.drain(1);
        assert_eq!(drained.len(), 2);
        assert_eq!(s.queue_min[1], VirtualTime::INFINITY);
    }

    #[test]
    fn round_snapshot_freezes_participants() {
        let mut s = mk(4, 2);
        s.subscribed[3] = false;
        assert!(s.ensure_round_open(0, &mut Vec::new()));
        assert_eq!(s.round.participants, 3);
        // Subscribing mid-round does not join the current round.
        s.subscribed[3] = true;
        assert!(!s.round.participant[3]);
    }

    #[test]
    fn gvt_includes_parked_queue_and_windows() {
        let mut s = mk(3, 2);
        s.ensure_round_open(0, &mut Vec::new());
        s.fold_min(0, VirtualTime::from_f64(10.0));
        s.fold_min(1, VirtualTime::from_f64(12.0));
        // Thread 2 is inactive with a parked message at t=4.
        s.push_msg(0, 2, msg(4.0));
        // Thread 0's post-fold send leaves a residual window at 6.
        s.window_send_min[0] = VirtualTime::from_f64(6.0);
        let g = s.compute_gvt();
        assert_eq!(g, VirtualTime::from_f64(4.0));
        assert_eq!(s.gvt_regressions, 0);
    }

    #[test]
    fn gvt_regression_is_counted_not_applied() {
        let mut s = mk(1, 1);
        s.ensure_round_open(0, &mut Vec::new());
        s.fold_min(0, VirtualTime::from_f64(10.0));
        s.compute_gvt();
        s.ensure_round_open(0, &mut Vec::new());
        s.fold_min(0, VirtualTime::from_f64(5.0));
        let g = s.compute_gvt();
        assert_eq!(g, VirtualTime::from_f64(10.0), "gvt must not regress");
        assert_eq!(s.gvt_regressions, 1);
    }

    #[test]
    fn gvt_past_end_terminates() {
        let mut s = mk(1, 1);
        s.ensure_round_open(0, &mut Vec::new());
        let g = s.compute_gvt(); // everything empty → ∞
        assert!(g.is_infinite());
        assert!(s.terminated);
    }

    #[test]
    fn barrier_parks_until_last_arrival() {
        let mut s = mk(3, 2);
        for i in 0..3 {
            s.ensure_round_open(i, &mut Vec::new());
        }
        let mut ops = Vec::new();
        assert_eq!(s.barrier_arrive(0, 0, &mut ops), Arrive::Park);
        assert_eq!(s.barrier_arrive(1, 0, &mut ops), Arrive::Park);
        assert!(ops.is_empty());
        assert_eq!(s.barrier_arrive(2, 0, &mut ops), Arrive::Proceed);
        assert_eq!(ops, vec![Op::Post(0), Op::Post(1)]);
    }

    #[test]
    fn aware_claim_is_exclusive_per_round() {
        let mut s = mk(2, 2);
        s.ensure_round_open(0, &mut Vec::new());
        assert!(s.claim_aware(0));
        assert!(!s.claim_aware(1));
        // End closes; next round claimable again.
        assert!(!s.end_phase(0));
        assert!(s.end_phase(1));
        s.ensure_round_open(0, &mut Vec::new());
        assert!(s.claim_aware(1));
    }

    #[test]
    fn activate_wakes_only_queued_inactive_threads() {
        let mut s = mk(3, 2);
        s.active[1] = false;
        s.active[2] = false;
        s.subscribed[1] = false;
        s.subscribed[2] = false;
        s.num_active = 1;
        s.push_msg(0, 2, msg(4.0));
        let mut ops = Vec::new();
        assert_eq!(s.activate(&mut ops), 1);
        assert_eq!(ops, vec![Op::Post(2)]);
        assert!(s.active[2] && s.subscribed[2]);
        assert!(!s.active[1]);
        assert_eq!(s.num_active, 2);
    }

    #[test]
    fn deactivate_refuses_last_active_thread() {
        let mut s = mk(2, 2);
        assert!(s.deactivate_self(0));
        assert!(!s.deactivate_self(1), "last active thread must stay");
        assert_eq!(s.num_active, 1);
        assert_eq!(s.max_descheduled, 1);
    }

    #[test]
    fn dynamic_affinity_spreads_across_cores() {
        let mut s = mk(4, 2);
        let mut ops = Vec::new();
        let (pinned, _) = s.set_cpu_affinity(&mut ops);
        assert_eq!(pinned, 4);
        // 4 threads over 2 cores → 2 each.
        assert_eq!(s.aff.core_load, vec![2, 2]);
        // Deactivate thread 0 (core 0) → its slot clears.
        s.deactivate_self(0);
        assert_eq!(s.aff.core_load, vec![1, 2]);
        // A reactivated thread 0 re-pins to the now-least-loaded core 0.
        s.active[0] = true;
        ops.clear();
        s.set_cpu_affinity(&mut ops);
        assert_eq!(ops, vec![Op::Pin(0, 0)]);
    }

    #[test]
    fn affinity_footprint_is_small() {
        let aff = AffinityTables::new(64, 4096);
        // §6.6: ~17 KB at 4096 threads on 64 cores.
        assert!(aff.footprint_bytes() < 70 * 1024);
    }

    #[test]
    fn termination_release_posts_all_inactive() {
        let mut s = mk(3, 2);
        s.deactivate_self(1);
        s.deactivate_self(2);
        s.terminated = true;
        let mut ops = Vec::new();
        s.release_all_for_termination(&mut ops);
        assert_eq!(ops, vec![Op::Post(1), Op::Post(2)]);
        assert!(s.controller_exit);
    }
}
