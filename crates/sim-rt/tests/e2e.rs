//! End-to-end tests: every system configuration must commit exactly the
//! trace the sequential oracle commits, deterministically.

use models::{LocalityPattern, Phold, PholdConfig};
use pdes_core::{run_sequential, EngineConfig};
use sim_rt::{run_sim, RunConfig, SystemConfig};
use std::sync::Arc;

fn engine_cfg(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(42)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250)
}

fn machine_small() -> machine::MachineConfig {
    machine::MachineConfig::small(4, 2)
}

#[test]
fn all_six_systems_match_oracle_on_balanced_phold() {
    let threads = 8;
    let model = Arc::new(Phold::new(PholdConfig::balanced(threads, 4)));
    let ecfg = engine_cfg(8.0);
    let oracle = run_sequential(&model, &ecfg, None);
    assert!(
        oracle.committed > 100,
        "oracle committed {}",
        oracle.committed
    );

    for sys in SystemConfig::ALL_SIX {
        let rc = RunConfig::new(threads, ecfg.clone(), sys).with_machine(machine_small());
        let r = run_sim(&model, &rc);
        assert!(r.completed, "{} did not finish", sys.name());
        assert_eq!(r.gvt_regressions, 0, "{} regressed GVT", sys.name());
        assert_eq!(
            r.metrics.committed,
            oracle.committed,
            "{}: committed {} vs oracle {}",
            sys.name(),
            r.metrics.committed,
            oracle.committed
        );
        assert_eq!(
            r.metrics.commit_digest,
            oracle.commit_digest,
            "{}: commit digest mismatch",
            sys.name()
        );
        assert_eq!(
            r.digests,
            oracle.state_digests,
            "{}: final LP states differ",
            sys.name()
        );
    }
}

#[test]
fn imbalanced_phold_matches_oracle_and_deschedules() {
    let threads = 8;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        4,
        12.0,
        LocalityPattern::Linear,
    )));
    // Short run: use an aggressive deactivation threshold so even the
    // barrier-GVT systems (whose idle threads park at barriers instead of
    // accumulating idle cycles) de-schedule within the test horizon.
    let ecfg = engine_cfg(12.0).with_zero_counter_threshold(60);
    let oracle = run_sequential(&model, &ecfg, None);

    for sys in SystemConfig::ALL_SIX {
        let rc = RunConfig::new(threads, ecfg.clone(), sys).with_machine(machine_small());
        let r = run_sim(&model, &rc);
        assert!(r.completed, "{} did not finish", sys.name());
        assert_eq!(
            r.metrics.commit_digest,
            oracle.commit_digest,
            "{}: digest mismatch",
            sys.name()
        );
        if sys.demand_driven() {
            assert!(
                r.metrics.max_descheduled > 0,
                "{} never de-scheduled anything on an imbalanced model",
                sys.name()
            );
        }
    }
}

#[test]
fn sim_is_deterministic() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        10.0,
        LocalityPattern::Linear,
    )));
    let ecfg = engine_cfg(10.0);
    let sys = SystemConfig::ALL_SIX[5]; // GG-PDES-Async
    let rc = RunConfig::new(threads, ecfg, sys).with_machine(machine_small());
    let a = run_sim(&model, &rc);
    let b = run_sim(&model, &rc);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.report.virtual_ns, b.report.virtual_ns);
    assert_eq!(a.digests, b.digests);
}

#[test]
fn activity_timeline_records_descheduling() {
    let threads = 8;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        4,
        12.0,
        LocalityPattern::Linear,
    )));
    let ecfg = engine_cfg(12.0).with_zero_counter_threshold(60);
    let sys = SystemConfig::ALL_SIX[5]; // GG-PDES-Async
    let rc = RunConfig::new(threads, ecfg, sys).with_machine(machine_small());
    let r = run_sim(&model, &rc);
    assert!(
        !r.timeline.is_empty(),
        "an imbalanced run must record scheduling transitions"
    );
    // Transitions are time-ordered and alternate sensibly per thread.
    let mut last_ns = 0;
    let mut state: std::collections::BTreeMap<usize, bool> = Default::default();
    for &(ns, t, s) in &r.timeline {
        assert!(ns >= last_ns, "timeline must be time-ordered");
        last_ns = ns;
        if let Some(&prev) = state.get(&t) {
            assert_ne!(prev, s, "thread {t} recorded the same state twice");
        } else {
            assert!(!s, "a thread's first transition is de-scheduling");
        }
        state.insert(t, s);
    }
    let csv = r.timeline_csv();
    assert!(csv.starts_with("ns,thread,scheduled_in\n"));
    assert_eq!(csv.lines().count(), r.timeline.len() + 1);
}
