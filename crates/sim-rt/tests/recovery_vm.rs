//! Checkpoint/restart and supervised-recovery tests for the virtual-machine
//! runtime — the same headline invariant as the real-thread suite, replayed
//! deterministically in virtual time: a run killed mid-flight and recovered
//! from a GVT-aligned checkpoint commits the *exact* event trace of an
//! uninterrupted run (sequential-oracle comparison).

use models::{LocalityPattern, Phold, PholdConfig};
use pdes_core::{run_sequential, EngineConfig, FaultPlan, Model, SupervisorConfig};
use sim_rt::{run_sim_resumable, run_sim_supervised, RunConfig, SystemConfig, VmRecovered};
use std::sync::Arc;

fn engine_cfg(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(42)
        .with_gvt_interval(20)
        .with_zero_counter_threshold(60)
}

fn machine_small() -> machine::MachineConfig {
    machine::MachineConfig::small(4, 2)
}

fn gg_async() -> SystemConfig {
    SystemConfig::ALL_SIX[5]
}

fn imbalanced_model(threads: usize) -> Arc<Phold> {
    Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        8.0,
        LocalityPattern::Linear,
    )))
}

#[test]
fn vm_checkpointed_run_matches_oracle_and_restores_identically() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(8.0);
    let oracle = run_sequential(&model, &ecfg, None);

    // A fault-free checkpointing run must be unaffected by the armed rounds.
    let rc = RunConfig::new(threads, ecfg.clone(), gg_async())
        .with_machine(machine_small())
        .with_checkpoint_every(3);
    let attempt = run_sim_resumable(&model, &rc, None, None);
    let r = &attempt.result;
    assert!(r.completed, "checkpointed run must complete");
    assert_eq!(r.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(r.digests, oracle.state_digests);
    let ckpt = attempt
        .checkpoint
        .expect("a multi-round run must have assembled a checkpoint");
    assert!(
        ckpt.gvt > pdes_core::VirtualTime::ZERO,
        "cut not at genesis"
    );
    assert_eq!(ckpt.lps.len(), model.num_lps());
    assert!(
        ckpt.total_committed() > 0 && ckpt.total_committed() <= oracle.committed,
        "cut at {} of {}",
        ckpt.total_committed(),
        oracle.committed
    );

    // Restoring that cut into a fresh run must finish on the oracle trace.
    let resumed = run_sim_resumable(&model, &rc, Some(&ckpt), None).result;
    assert!(resumed.completed, "resumed run must complete");
    assert_eq!(resumed.metrics.commit_digest, oracle.commit_digest);
    assert_eq!(resumed.metrics.committed, oracle.committed);
    assert_eq!(resumed.digests, oracle.state_digests);
}

/// The headline invariant on the VM: a scripted `WorkerKill` plus supervised
/// recovery commits the exact trace of an uninterrupted run.
#[test]
fn vm_kill_and_recover_commits_exact_oracle_trace() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(16.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let plan = FaultPlan::default().with_kill(0, 15);
    let rc = RunConfig::new(threads, ecfg, gg_async())
        .with_machine(machine_small())
        .with_faults(plan)
        .with_checkpoint_every(2);
    let s = run_sim_supervised(&model, &rc, &SupervisorConfig::new(3));
    assert!(s.recoveries >= 1, "the kill must fire: {:?}", s.log);
    assert!(
        !s.degraded,
        "one kill is within the retry budget: {:?}",
        s.log
    );
    assert_eq!(
        s.outcome.commit_digest(),
        oracle.commit_digest,
        "trace diverged"
    );
    assert_eq!(s.outcome.committed(), oracle.committed);
    assert_eq!(s.outcome.state_digests(), &oracle.state_digests[..]);
    if let VmRecovered::Parallel(r) = &s.outcome {
        assert!(r.metrics.threads == threads || r.metrics.threads == threads - 1);
    }
}

/// Graceful degradation on the VM: when every retry is killed too, the run
/// finishes on the sequential engine from the last cut.
#[test]
fn vm_recovery_exhaustion_degrades_to_sequential_and_still_completes() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(16.0);
    let oracle = run_sequential(&model, &ecfg, None);
    // The cycle counter restarts per attempt and a resumed attempt has less
    // work left, so follow-up kills trigger early to land before completion.
    let plan = FaultPlan::default()
        .with_kill(0, 120)
        .with_kill(0, 5)
        .with_kill(0, 5)
        .with_kill(0, 5);
    let rc = RunConfig::new(threads, ecfg, gg_async())
        .with_machine(machine_small())
        .with_faults(plan)
        .with_checkpoint_every(1);
    let s = run_sim_supervised(&model, &rc, &SupervisorConfig::new(1));
    assert!(s.degraded, "budget of 1 must be exhausted: {:?}", s.log);
    assert_eq!(s.recoveries, 1);
    assert!(matches!(s.outcome, VmRecovered::Sequential(_)));
    assert_eq!(s.outcome.commit_digest(), oracle.commit_digest);
    assert_eq!(s.outcome.committed(), oracle.committed);
    assert_eq!(s.outcome.state_digests(), &oracle.state_digests[..]);
}

/// The VM is deterministic, so a kill-and-recover scenario replays
/// identically — including the recovery count and the remapped thread count.
#[test]
fn vm_supervised_recovery_is_deterministic() {
    let threads = 4;
    let model = imbalanced_model(threads);
    let ecfg = engine_cfg(16.0);
    let run = || {
        let plan = FaultPlan::default().with_kill(0, 15);
        let rc = RunConfig::new(threads, ecfg.clone(), gg_async())
            .with_machine(machine_small())
            .with_faults(plan)
            .with_checkpoint_every(2);
        run_sim_supervised(&model, &rc, &SupervisorConfig::new(3))
    };
    let a = run();
    let b = run();
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(a.degraded, b.degraded);
    assert_eq!(a.outcome.commit_digest(), b.outcome.commit_digest());
    assert_eq!(a.outcome.state_digests(), b.outcome.state_digests());
    assert_eq!(a.log, b.log);
}
