//! Chaos-harness tests for the virtual-machine runtime.
//!
//! The VM is single-threaded and deterministic, so — unlike the real-thread
//! suite — every scenario here replays identically: a safe plan always
//! commits the oracle trace, and a liveness plan always stalls at the same
//! virtual time with the same dump.

use models::{LocalityPattern, Phold, PholdConfig};
use pdes_core::{
    run_sequential, DelayFault, EngineConfig, FaultPlan, ReorderFault, StragglerFault, WakeupFault,
};
use sim_rt::{run_sim, RunConfig, SystemConfig};
use std::sync::Arc;

fn engine_cfg(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(42)
        .with_gvt_interval(20)
        .with_zero_counter_threshold(60)
}

fn machine_small() -> machine::MachineConfig {
    machine::MachineConfig::small(4, 2)
}

/// GG-PDES-Async: the headline demand-driven system.
fn gg_async() -> SystemConfig {
    SystemConfig::ALL_SIX[5]
}

#[test]
fn safe_fault_plans_match_oracle_on_vm() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        8.0,
        LocalityPattern::Linear,
    )));
    let ecfg = engine_cfg(8.0);
    let oracle = run_sequential(&model, &ecfg, None);
    let plan = FaultPlan {
        seed: 0xBADCAB,
        delay: Some(DelayFault { prob: 0.2 }),
        reorder: Some(ReorderFault { prob: 0.5 }),
        straggler: Some(StragglerFault {
            prob: 0.05,
            max_storms: 16,
        }),
        ..FaultPlan::default()
    };
    for sys in [SystemConfig::ALL_SIX[3], gg_async()] {
        let rc = RunConfig::new(threads, ecfg.clone(), sys)
            .with_machine(machine_small())
            .with_faults(plan.clone());
        let r = run_sim(&model, &rc);
        assert!(r.completed, "{}: stalled under a safe plan", sys.name());
        assert!(r.stall.is_none(), "{}: unexpected stall dump", sys.name());
        assert_eq!(r.gvt_regressions, 0, "{}: GVT regressed", sys.name());
        assert_eq!(
            r.metrics.commit_digest,
            oracle.commit_digest,
            "{}: digest diverged under safe faults",
            sys.name()
        );
        assert_eq!(r.digests, oracle.state_digests, "{}: states", sys.name());
        let c = r.fault_counts;
        assert!(
            c.delayed + c.reordered + c.stragglers > 0,
            "{}: plan was supposed to fire (counts {c:?})",
            sys.name()
        );
    }
}

#[test]
fn safe_chaos_runs_are_deterministic() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        8.0,
        LocalityPattern::Linear,
    )));
    let ecfg = engine_cfg(8.0);
    let rc = RunConfig::new(threads, ecfg, gg_async())
        .with_machine(machine_small())
        .with_faults(FaultPlan::chaos(7));
    let a = run_sim(&model, &rc);
    let b = run_sim(&model, &rc);
    assert!(a.completed && b.completed);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.fault_counts, b.fault_counts, "decision streams replay");
}

/// Lost wake-ups on the VM: the run must end with `completed == false` and
/// a structured stall dump — run_sim's contract is that it never panics and
/// never hangs on a wedged protocol.
#[test]
fn lost_wakeup_stalls_vm_with_dump() {
    let threads = 4;
    // Many activity-epoch shifts so parked threads are guaranteed to have
    // mail at some Aware phase (see the thread-rt twin of this test).
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        8.0,
        LocalityPattern::Linear,
    )));
    let ecfg = engine_cfg(40.0).with_zero_counter_threshold(8);

    // Sanity: faults off, same seed completes and matches the oracle.
    let oracle = run_sequential(&model, &ecfg, None);
    let clean = run_sim(
        &model,
        &RunConfig::new(threads, ecfg.clone(), gg_async()).with_machine(machine_small()),
    );
    assert!(clean.completed);
    assert_eq!(clean.metrics.commit_digest, oracle.commit_digest);
    assert!(
        clean.metrics.max_descheduled > 0,
        "model must deactivate threads for the lost-wakeup fault to bite"
    );

    let plan = FaultPlan {
        seed: 77,
        wakeup: Some(WakeupFault {
            lose_prob: 1.0,
            spurious_prob: 0.0,
            max_lost: u64::MAX,
        }),
        ..FaultPlan::default()
    };
    let rc = RunConfig::new(threads, ecfg, gg_async())
        .with_machine(machine_small())
        .with_faults(plan)
        .with_watchdog_ns(Some(2_000_000_000)); // 2 virtual seconds
    let r = run_sim(&model, &rc);
    assert!(
        !r.completed,
        "a run with every wake-up lost cannot complete"
    );
    let dump = r.stall.expect("stall dump captured");
    assert!(r.fault_counts.lost_wakeups > 0, "the fault fired");
    assert_eq!(dump.threads.len(), threads);
    assert!(
        dump.threads
            .iter()
            .any(|t| !t.active || t.phase == "parked"),
        "a stranded thread shows up in the dump: {dump}"
    );
    assert!(dump.to_string().contains("watchdog") || dump.to_string().contains("deadlock"));
}

#[test]
fn fault_free_vm_run_never_trips_tight_watchdog() {
    let threads = 4;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        8.0,
        LocalityPattern::Linear,
    )));
    let ecfg = engine_cfg(8.0);
    let rc = RunConfig::new(threads, ecfg, gg_async())
        .with_machine(machine_small())
        .with_watchdog_ns(Some(1_000_000_000)); // 1 virtual second
    let r = run_sim(&model, &rc);
    assert!(r.completed, "healthy run must never trip the watchdog");
    assert!(r.stall.is_none());
    assert_eq!(r.fault_counts, pdes_core::FaultCounts::default());
}
