//! Telemetry on the virtual machine: traces are stamped with *virtual*
//! nanoseconds, so a traced run is bit-for-bit deterministic — and the
//! round snapshots must track GVT monotonically exactly like the real
//! runtimes.

use models::{LocalityPattern, Phold, PholdConfig};
use pdes_core::EngineConfig;
use sim_rt::{run_sim, AffinityPolicy, GvtMode, RunConfig, Scheduler, SystemConfig};
use std::sync::Arc;
use telemetry::{EventKind, TelemetryConfig, TelemetryData};

fn engine_cfg() -> EngineConfig {
    EngineConfig::default()
        .with_end_time(8.0)
        .with_seed(42)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250)
}

fn run_traced(gvt: GvtMode, sched: Scheduler) -> (TelemetryData, metrics::RunMetrics) {
    let threads = 8;
    let model = Arc::new(Phold::new(PholdConfig::imbalanced(
        threads,
        4,
        2,
        8.0,
        LocalityPattern::Linear,
    )));
    let sys = SystemConfig::new(sched, gvt, AffinityPolicy::Constant);
    let rc = RunConfig::new(threads, engine_cfg(), sys)
        .with_machine(machine::MachineConfig::small(4, 2))
        .with_telemetry(TelemetryConfig::on());
    let r = run_sim(&model, &rc);
    assert!(r.completed, "traced run did not finish");
    (r.telemetry.expect("telemetry collected"), r.metrics)
}

#[test]
fn telemetry_is_off_by_default_and_free_of_results() {
    let threads = 8;
    let model = Arc::new(Phold::new(PholdConfig::balanced(threads, 4)));
    let sys = SystemConfig::new(Scheduler::GgPdes, GvtMode::Async, AffinityPolicy::Constant);
    let rc = RunConfig::new(threads, engine_cfg(), sys)
        .with_machine(machine::MachineConfig::small(4, 2));
    let r = run_sim(&model, &rc);
    assert!(r.telemetry.is_none());
    assert!(r.metrics.last_round.is_none());
}

#[test]
fn round_snapshots_track_gvt_monotonically_on_the_vm() {
    let (data, m) = run_traced(GvtMode::Async, Scheduler::GgPdes);
    assert!(!data.rounds.is_empty());
    for w in data.rounds.windows(2) {
        assert!(
            w[1].gvt_ticks >= w[0].gvt_ticks,
            "virtual GVT regressed across rounds {} -> {}",
            w[0].round,
            w[1].round
        );
        assert!(w[1].ts_ns >= w[0].ts_ns);
    }
    assert_eq!(
        m.last_round.expect("metrics last round"),
        data.rounds.last().cloned().expect("nonempty")
    );
}

#[test]
fn traced_vm_runs_are_deterministic() {
    let (a, _) = run_traced(GvtMode::Async, Scheduler::GgPdes);
    let (b, _) = run_traced(GvtMode::Async, Scheduler::GgPdes);
    // Virtual timestamps make the whole export reproducible byte-for-byte.
    assert_eq!(
        telemetry::chrome_trace_json(&a),
        telemetry::chrome_trace_json(&b)
    );
    assert_eq!(a.rounds, b.rounds);
}

#[test]
fn both_gvt_modes_emit_the_required_phase_set() {
    for gvt in [GvtMode::Async, GvtMode::Sync] {
        let (data, _) = run_traced(gvt, Scheduler::GgPdes);
        let names: Vec<&str> = {
            let mut v: Vec<&str> = data
                .threads
                .iter()
                .flat_map(|t| t.records.iter())
                .map(|r| r.kind.name())
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for required in ["gvt-a", "gvt-b", "gvt-aware", "gvt-end"] {
            assert!(names.contains(&required), "{gvt:?}: {required} missing");
        }
        assert!(
            names.contains(&"gvt-send-a") || names.contains(&"gvt-send-b"),
            "{gvt:?}: no send phase"
        );
    }
}

#[test]
fn demand_driven_deactivation_produces_park_spans() {
    // GG-PDES on the 1-2 imbalanced model deschedules idle threads; their
    // park intervals must surface as Park spans with matching Unparks.
    let (data, m) = run_traced(GvtMode::Async, Scheduler::GgPdes);
    let parks: usize = data
        .threads
        .iter()
        .flat_map(|t| t.records.iter())
        .filter(|r| r.kind == EventKind::Park)
        .count();
    let unparks: usize = data
        .threads
        .iter()
        .flat_map(|t| t.records.iter())
        .filter(|r| r.kind == EventKind::Unpark)
        .count();
    if m.max_descheduled > 0 {
        assert!(parks > 0, "threads descheduled but no Park spans traced");
    }
    assert_eq!(parks, unparks, "every park span pairs with an unpark");
    // The gantt derived from those spans renders one lane per thread.
    let trs = metrics::transitions_from_trace(&data, 8);
    let g = metrics::render_gantt(&trs, 8, metrics::trace_horizon(&data).max(1), 40);
    assert_eq!(g.lines().count(), 9); // 8 lanes + axis
}
