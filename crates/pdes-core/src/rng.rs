//! Deterministic, clonable random number generator for LP state.
//!
//! Every LP owns a private RNG stream whose state is saved and restored by
//! the rollback machinery (a random draw made while processing an event must
//! be reproduced identically when the event is re-executed). We implement
//! xoshiro256** seeded through SplitMix64 rather than relying on
//! `rand::rngs::SmallRng`, whose algorithm is explicitly unspecified and may
//! change between `rand` releases — golden-value tests and cross-runtime
//! determinism need a fixed algorithm.

use rand::rand_core::{Infallible, TryRng};
use serde::{Deserialize, Serialize};

/// SplitMix64 step — used for seeding and as a cheap one-shot mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator with full `Clone`/`Eq` state, suitable for
/// inclusion in rollback snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed from a single `u64` via SplitMix64 (never yields the all-zero
    /// state, which xoshiro cannot escape).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derive an independent stream for LP `lp` under experiment seed `seed`.
    ///
    /// Streams for distinct `(seed, lp)` pairs are decorrelated by mixing the
    /// LP index through SplitMix64 before seeding.
    pub fn for_lp(seed: u64, lp: crate::ids::LpId) -> Self {
        let mut sm = seed ^ 0xA076_1D64_78BD_642F;
        let a = splitmix64(&mut sm);
        let mut sm2 = a ^ (lp.0 as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB);
        DetRng::seed_from_u64(splitmix64(&mut sm2))
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the high 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's method, bound > 0).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Widening multiply rejection-free approximation is fine here: the
        // bias for bound << 2^64 is far below anything observable by the
        // simulation models.
        let m = (self.next() as u128).wrapping_mul(bound as u128);
        (m >> 64) as u64
    }

    /// Exponentially distributed draw with the given mean (inverse CDF).
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // 1 - u in (0, 1] avoids ln(0).
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }
}

// Implementing the infallible side of `rand_core` makes `DetRng` usable with
// the whole `rand` / `rand_distr` distribution machinery.
impl TryRng for DetRng {
    type Error = Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((self.next() >> 32) as u32)
    }
    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.next())
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LpId;
    use rand::Rng as _;

    #[test]
    fn deterministic_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_preserves_state() {
        let mut a = DetRng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn lp_streams_differ() {
        let mut a = DetRng::for_lp(9, LpId(0));
        let mut b = DetRng::for_lp(9, LpId(1));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn below_hits_every_residue() {
        let mut r = DetRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut r = DetRng::seed_from_u64(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn fill_bytes_partial_chunk() {
        let mut r = DetRng::seed_from_u64(8);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        // Not all zero with overwhelming probability.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
