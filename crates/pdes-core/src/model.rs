//! The model-facing API: what a simulation application implements.

use crate::event::{Event, EventKey};
use crate::ids::{EventUid, LpId};
use crate::rng::DetRng;
use crate::time::VirtualTime;

/// Context handed to model code while it initializes an LP or processes an
/// event. Sends are buffered and routed by the engine after the handler
/// returns; the RNG and send-sequence counter live in the LP's rolled-back
/// state, so a re-executed handler reproduces its draws and event UIDs.
pub struct SendCtx<'a, P> {
    lp: LpId,
    now: VirtualTime,
    rng: &'a mut DetRng,
    send_seq: &'a mut u64,
    out: &'a mut Vec<Event<P>>,
}

impl<'a, P> SendCtx<'a, P> {
    /// Construct a context manually. Used by the engines; also handy for
    /// unit-testing model handlers in isolation.
    pub fn new(
        lp: LpId,
        now: VirtualTime,
        rng: &'a mut DetRng,
        send_seq: &'a mut u64,
        out: &'a mut Vec<Event<P>>,
    ) -> Self {
        SendCtx {
            lp,
            now,
            rng,
            send_seq,
            out,
        }
    }

    /// The LP this context belongs to.
    #[inline]
    pub fn self_lp(&self) -> LpId {
        self.lp
    }

    /// Current local virtual time (the receive time of the event being
    /// processed, or `0` during initialization).
    #[inline]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// The LP's private, rollback-aware RNG stream.
    #[inline]
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Schedule `payload` for `dst` at `now + delay`.
    ///
    /// # Panics
    /// Panics if `delay` is negative (via [`VirtualTime::from_f64`]) — zero
    /// delay is allowed and ordered after the current event by the tie-break
    /// on [`EventUid`].
    pub fn send(&mut self, dst: LpId, delay: f64, payload: P) {
        self.send_at(
            dst,
            self.now.saturating_add(VirtualTime::from_f64(delay)),
            payload,
        );
    }

    /// Schedule `payload` for `dst` at the absolute time `at` (≥ now).
    pub fn send_at(&mut self, dst: LpId, at: VirtualTime, payload: P) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let uid = EventUid::new(self.lp, *self.send_seq);
        *self.send_seq += 1;
        self.out.push(Event {
            key: EventKey {
                recv_time: at,
                dst,
                uid,
            },
            send_time: self.now,
            payload,
        });
    }

    /// Number of events buffered so far in this handler invocation.
    #[inline]
    pub fn sends_buffered(&self) -> usize {
        self.out.len()
    }
}

/// A discrete-event simulation model: a fixed population of LPs exchanging
/// time-stamped events.
///
/// Implementations must be *deterministic*: given the same state, RNG state,
/// and event, `handle_event` must make the same draws and sends. All
/// randomness must come from `ctx.rng()`.
pub trait Model: Send + Sync + 'static {
    /// Per-LP mutable state. Cloned into rollback snapshots and serialized
    /// into GVT-aligned checkpoints (see [`crate::checkpoint`]).
    type State: Clone + Send + std::fmt::Debug + serde::Serialize + serde::Deserialize + 'static;
    /// Event payload. Serialized with the above-GVT pending events of a
    /// checkpoint.
    type Payload: Clone + Send + std::fmt::Debug + serde::Serialize + serde::Deserialize + 'static;

    /// Total number of LPs in the simulation.
    fn num_lps(&self) -> usize;

    /// Construct the initial state of `lp`.
    fn init_state(&self, lp: LpId) -> Self::State;

    /// Schedule the initial events of `lp` (called once, at time zero).
    /// May target any LP.
    fn init_events(&self, lp: LpId, state: &mut Self::State, ctx: &mut SendCtx<'_, Self::Payload>);

    /// Process one event at `lp`. `ctx.now()` is the event's receive time.
    fn handle_event(
        &self,
        lp: LpId,
        state: &mut Self::State,
        payload: &Self::Payload,
        ctx: &mut SendCtx<'_, Self::Payload>,
    );

    /// A 64-bit digest of an LP state, used by cross-runtime correctness
    /// oracles (sequential vs Time Warp executions must agree).
    fn state_digest(&self, state: &Self::State) -> u64;

    /// The model's *lookahead*: a lower bound on the virtual-time delay of
    /// every send, promised for the whole run. An event processed at time
    /// `t` may only schedule events at `t + lookahead` or later (in every
    /// handler and in `init_events` from time zero).
    ///
    /// Optimistic runtimes ignore it. The conservative null-message runtime
    /// (`cons-rt`) requires it to be strictly positive — Chandy–Misra–Bryant
    /// deadlock avoidance advances channel clocks by exactly this margin,
    /// and a zero bound cannot break cyclic waits. The default of `0.0`
    /// means "no promise": such models run conservatively only with an
    /// explicit structured error.
    fn lookahead(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_assigns_sequential_uids_and_times() {
        let mut rng = DetRng::seed_from_u64(1);
        let mut seq = 5u64;
        let mut out = Vec::new();
        let mut ctx = SendCtx::new(
            LpId(3),
            VirtualTime::from_f64(10.0),
            &mut rng,
            &mut seq,
            &mut out,
        );
        ctx.send(LpId(4), 1.5, "a");
        ctx.send(LpId(5), 0.0, "b");
        assert_eq!(ctx.sends_buffered(), 2);
        #[allow(clippy::drop_non_drop)] // end the ctx borrow explicitly
        drop(ctx);
        assert_eq!(seq, 7);
        assert_eq!(out[0].key.uid, EventUid::new(LpId(3), 5));
        assert_eq!(out[0].key.recv_time, VirtualTime::from_f64(11.5));
        assert_eq!(out[0].send_time, VirtualTime::from_f64(10.0));
        assert_eq!(out[1].key.recv_time, VirtualTime::from_f64(10.0));
        assert_eq!(out[1].key.dst, LpId(5));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn send_at_past_panics() {
        let mut rng = DetRng::seed_from_u64(1);
        let mut seq = 0u64;
        let mut out: Vec<Event<()>> = Vec::new();
        let mut ctx = SendCtx::new(
            LpId(0),
            VirtualTime::from_f64(10.0),
            &mut rng,
            &mut seq,
            &mut out,
        );
        ctx.send_at(LpId(0), VirtualTime::from_f64(9.0), ());
    }
}
