//! GVT-aligned checkpoint/restart.
//!
//! Everything at or below GVT is irrevocably committed — fossil collection
//! already relies on that — so a GVT round is a natural *consistent cut*:
//!
//! * each LP's committed state (its state, RNG stream, and send-sequence
//!   counter immediately after the last event with receive time `< gvt`);
//! * every positive event with `send_time < gvt` and `recv_time ≥ gvt`.
//!   Such an event's sender is committed and will never re-send it, so it
//!   must be saved. Events with `send_time ≥ gvt` are *dropped*: their
//!   senders re-execute after a restore and deterministically re-send them
//!   with identical [`crate::ids::EventUid`]s (send-sequence counters are
//!   part of the saved state). Anti-messages never cross the cut — they
//!   always target events sent at or above GVT.
//!
//! A restore therefore reproduces the exact optimistic frontier the run had
//! at that GVT, and a recovered run commits the same event trace as an
//! uninterrupted one — the headline invariant enforced by the recovery test
//! suites. The checkpoint also carries the LP→thread map (a recovery may
//! restore under a *different* map after a worker death) and the fault
//! injector's [`FaultCursor`] so scripted chaos resumes rather than
//! replaying from the start.
//!
//! On-disk format is the workspace's vendored JSON; writes go through a
//! temp-file + rename so readers never observe a torn checkpoint.

use crate::event::Event;
use crate::faults::FaultCursor;
use crate::ids::LpId;
use crate::mapping::LpMap;
use crate::rng::DetRng;
use crate::time::VirtualTime;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One LP's committed-side snapshot at the checkpoint's GVT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpCheckpoint<S> {
    pub lp: LpId,
    /// Model state after every event with `recv_time < gvt`.
    pub state: S,
    /// RNG stream position at the same point.
    pub rng: DetRng,
    /// Send-sequence counter at the same point (re-executed sends reproduce
    /// their original event UIDs).
    pub send_seq: u64,
    /// Events committed so far (metrics continuity across a restore).
    pub committed: u64,
    /// XOR-fold of committed event-key digests so far.
    pub commit_digest: u64,
    /// Receive time of the LP's last committed event.
    pub lvt: VirtualTime,
}

/// One engine's contribution to a cut: its LP snapshots plus the pending
/// events crossing the cut that are queued on it.
pub type CutSnapshot<S, P> = (Vec<LpCheckpoint<S>>, Vec<Event<P>>);

/// A consistent cut of the whole simulation at one GVT value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint<S, P> {
    /// The GVT this cut was taken at.
    pub gvt: VirtualTime,
    /// GVT rounds completed when the cut was taken.
    pub gvt_rounds: u64,
    /// Committed snapshot of every LP, in LP order.
    pub lps: Vec<LpCheckpoint<S>>,
    /// In-flight events crossing the cut: `send_time < gvt ≤ recv_time`.
    pub events: Vec<Event<P>>,
    /// The LP→thread map the run was using (a restore may override it).
    pub map: LpMap,
    /// Fault-injector resume position (`None` when chaos is disabled).
    pub cursor: Option<FaultCursor>,
}

impl<S, P> Checkpoint<S, P> {
    /// Assemble per-shard cut contributions (each shard's LP snapshots and
    /// cut-crossing events, taken at the *same* GVT) into one global cut.
    /// Validates that the parts cover every LP of `map` exactly once —
    /// a missing or doubled LP means the shards disagreed about the cut and
    /// the checkpoint would be silently wrong.
    pub fn assemble(
        gvt: VirtualTime,
        gvt_rounds: u64,
        map: LpMap,
        parts: Vec<CutSnapshot<S, P>>,
        cursor: Option<FaultCursor>,
    ) -> Result<Self, String> {
        let mut lps = Vec::with_capacity(map.num_lps as usize);
        let mut events = Vec::new();
        for (part_lps, part_events) in parts {
            lps.extend(part_lps);
            events.extend(part_events);
        }
        lps.sort_by_key(|l| l.lp);
        let mut seen = vec![false; map.num_lps as usize];
        for l in &lps {
            let i = l.lp.index();
            if i >= seen.len() {
                return Err(format!("cut names LP {} outside the map", l.lp));
            }
            if std::mem::replace(&mut seen[i], true) {
                return Err(format!("LP {} appears in two shard cuts", l.lp));
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("no shard cut covers LP {missing}"));
        }
        events.sort_by_key(|e| e.key);
        Ok(Checkpoint {
            gvt,
            gvt_rounds,
            lps,
            events,
            map,
            cursor,
        })
    }

    /// Total committed events across all LPs at the cut.
    pub fn total_committed(&self) -> u64 {
        self.lps.iter().map(|l| l.committed).sum()
    }

    /// XOR-fold of all LPs' commit digests at the cut.
    pub fn commit_digest(&self) -> u64 {
        self.lps.iter().fold(0, |d, l| d ^ l.commit_digest)
    }
}

/// Recovery policy for a supervised run (shared by both runtimes'
/// supervisors): how many times to restore-and-retry after a worker death
/// before degrading to the sequential engine.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Maximum recovery attempts before degrading to sequential execution.
    pub max_recoveries: u32,
    /// Base backoff; attempt `k` sleeps `backoff << (k-1)` (wall-clock
    /// runtimes only — the virtual machine recovers without sleeping).
    pub backoff: std::time::Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_recoveries: 3,
            backoff: std::time::Duration::from_millis(25),
        }
    }
}

impl SupervisorConfig {
    pub fn new(max_recoveries: u32) -> Self {
        SupervisorConfig {
            max_recoveries,
            ..Default::default()
        }
    }

    pub fn with_backoff(mut self, backoff: std::time::Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem-level failure (open/write/rename/read).
    Io {
        path: std::path::PathBuf,
        source: std::io::Error,
    },
    /// The file exists but does not parse as a checkpoint (truncated,
    /// corrupt, or a different schema).
    Corrupt {
        path: std::path::PathBuf,
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
            CheckpointError::Corrupt { path, detail } => {
                write!(
                    f,
                    "checkpoint {}: not a valid checkpoint ({detail})",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            CheckpointError::Corrupt { .. } => None,
        }
    }
}

impl<S: Serialize, P: Serialize> Checkpoint<S, P> {
    /// Serialize to the vendored JSON text format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization is infallible")
    }

    /// Atomically write the checkpoint to `path`: serialize to
    /// `<path>.tmp` in the same directory, then rename into place, so a
    /// reader (or a crash mid-write) never sees a torn file.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let io_err = |source| CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json()).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }
}

impl<S: Deserialize, P: Deserialize> Checkpoint<S, P> {
    /// Parse a checkpoint from JSON text.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(text)
    }

    /// Read a checkpoint back from `path`. A missing file is an `Io` error;
    /// a truncated or corrupt file is reported as `Corrupt` with the parse
    /// detail — never a panic.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|source| CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Self::from_json(&text).map_err(|e| CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKey;
    use crate::ids::EventUid;
    use crate::mapping::MapKind;

    fn sample() -> Checkpoint<u64, ()> {
        let t = VirtualTime::from_f64;
        Checkpoint {
            gvt: t(4.0),
            gvt_rounds: 17,
            lps: vec![
                LpCheckpoint {
                    lp: LpId(0),
                    state: 11,
                    rng: DetRng::for_lp(9, LpId(0)),
                    send_seq: 5,
                    committed: 3,
                    commit_digest: 0xABCD,
                    lvt: t(3.5),
                },
                LpCheckpoint {
                    lp: LpId(1),
                    state: 22,
                    rng: DetRng::for_lp(9, LpId(1)),
                    send_seq: 2,
                    committed: 1,
                    commit_digest: 0x1234,
                    lvt: t(2.0),
                },
            ],
            events: vec![Event {
                key: EventKey {
                    recv_time: t(4.5),
                    dst: LpId(1),
                    uid: EventUid::new(LpId(0), 4),
                },
                send_time: t(3.5),
                payload: (),
            }],
            map: LpMap::new(2, 2, MapKind::RoundRobin),
            cursor: Some(FaultCursor {
                seq: vec![1, 2, 3, 4, 5],
                storms_left: 7,
                lost_left: 0,
                kills_fired: vec![true, false],
            }),
        }
    }

    fn lp_ck(lp: u32) -> LpCheckpoint<u64> {
        LpCheckpoint {
            lp: LpId(lp),
            state: u64::from(lp) * 10,
            rng: DetRng::for_lp(9, LpId(lp)),
            send_seq: 1,
            committed: 2,
            commit_digest: u64::from(lp) << 8,
            lvt: VirtualTime::from_f64(1.0),
        }
    }

    #[test]
    fn assemble_merges_shard_cuts_in_lp_and_key_order() {
        let t = VirtualTime::from_f64;
        let ev = |send: f64, recv: f64, dst: u32, seq: u64| Event {
            key: EventKey {
                recv_time: t(recv),
                dst: LpId(dst),
                uid: EventUid::new(LpId(0), seq),
            },
            send_time: t(send),
            payload: (),
        };
        // Shard cuts arrive unordered; LPs interleave round-robin.
        let parts: Vec<CutSnapshot<u64, ()>> = vec![
            (vec![lp_ck(1), lp_ck(3)], vec![ev(1.0, 5.0, 1, 2)]),
            (vec![lp_ck(2), lp_ck(0)], vec![ev(1.5, 4.0, 0, 1)]),
        ];
        let map = LpMap::new(4, 2, MapKind::RoundRobin);
        let ck = Checkpoint::assemble(t(2.0), 3, map, parts, None).expect("assemble");
        assert_eq!(
            ck.lps.iter().map(|l| l.lp.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(ck.events[0].key.recv_time, t(4.0));
        assert_eq!(ck.total_committed(), 8);
    }

    #[test]
    fn assemble_rejects_missing_and_duplicate_lps() {
        let map = || LpMap::new(3, 3, MapKind::RoundRobin);
        let t = VirtualTime::from_f64(1.0);
        let missing: Vec<CutSnapshot<u64, ()>> =
            vec![(vec![lp_ck(0)], vec![]), (vec![lp_ck(2)], vec![])];
        let err = Checkpoint::assemble(t, 1, map(), missing, None).unwrap_err();
        assert!(err.contains("no shard cut covers LP 1"), "{err}");
        let doubled: Vec<CutSnapshot<u64, ()>> = vec![
            (vec![lp_ck(0), lp_ck(1)], vec![]),
            (vec![lp_ck(1), lp_ck(2)], vec![]),
        ];
        let err = Checkpoint::assemble(t, 1, map(), doubled, None).unwrap_err();
        assert!(err.contains("two shard cuts"), "{err}");
        let stray: Vec<CutSnapshot<u64, ()>> =
            vec![(vec![lp_ck(0), lp_ck(1), lp_ck(2), lp_ck(7)], vec![])];
        let err = Checkpoint::assemble(t, 1, map(), stray, None).unwrap_err();
        assert!(err.contains("outside the map"), "{err}");
    }

    #[test]
    fn json_round_trips() {
        let ck = sample();
        let back = Checkpoint::<u64, ()>::from_json(&ck.to_json()).expect("round trip");
        assert_eq!(back, ck);
        assert_eq!(back.total_committed(), 4);
        assert_eq!(back.commit_digest(), 0xABCD ^ 0x1234);
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join("ggpdes-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic_write_then_read.ckpt");
        let ck = sample();
        ck.write_atomic(&path).expect("write");
        // The temp file must not linger after the rename.
        assert!(!path.with_extension("ckpt.tmp").exists());
        let back = Checkpoint::<u64, ()>::read(&path).expect("read");
        assert_eq!(back, ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_clear_error_not_a_panic() {
        let dir = std::env::temp_dir().join("ggpdes-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.ckpt");
        let full = sample().to_json();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        match Checkpoint::<u64, ()>::read(&path) {
            Err(CheckpointError::Corrupt { detail, .. }) => {
                assert!(!detail.is_empty());
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = std::path::Path::new("/nonexistent-dir-xyz/nope.ckpt");
        match Checkpoint::<u64, ()>::read(path) {
            Err(CheckpointError::Io { .. }) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_name_the_path() {
        let path = std::path::Path::new("/nonexistent-dir-xyz/nope.ckpt");
        let err = Checkpoint::<u64, ()>::read(path).unwrap_err();
        assert!(err.to_string().contains("nope.ckpt"));
    }
}
