//! The per-thread pending event set.
//!
//! A `BTreeMap` keyed by the total event order gives deterministic iteration,
//! O(log n) insert/pop-min, and — crucially for Time Warp — O(log n) exact
//! removal when an anti-message annihilates an unprocessed event.
//!
//! Anti-messages can arrive *before* their positive twin (the positive and
//! the anti may be enqueued by different threads after a rollback on the
//! sender). Such "orphan" antis are parked in a side set and annihilate the
//! positive on arrival.

use crate::event::{Event, EventKey};
use crate::time::VirtualTime;
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of inserting a positive event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Event stored in the pending set.
    Inserted,
    /// A parked anti-message was waiting for it; both vanished.
    Annihilated,
}

/// Outcome of applying an anti-message to the pending set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The positive twin was pending and has been removed.
    Removed,
    /// The positive twin has not arrived yet; the anti is parked.
    Deferred,
}

/// Pending (unprocessed) events of one simulation thread, across all its LPs.
#[derive(Debug)]
pub struct PendingSet<P> {
    events: BTreeMap<EventKey, Event<P>>,
    /// Anti-messages whose positive twin has not arrived yet.
    orphan_antis: BTreeSet<EventKey>,
}

impl<P> Default for PendingSet<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PendingSet<P> {
    pub fn new() -> Self {
        PendingSet {
            events: BTreeMap::new(),
            orphan_antis: BTreeSet::new(),
        }
    }

    /// Insert a positive event, annihilating it against a parked anti if one
    /// is waiting.
    ///
    /// # Panics
    /// Panics on duplicate keys — event UIDs are unique by construction, so a
    /// duplicate indicates an engine bug (e.g. an event re-inserted without
    /// its twin being cancelled).
    pub fn insert(&mut self, event: Event<P>) -> InsertOutcome {
        if self.orphan_antis.remove(&event.key) {
            return InsertOutcome::Annihilated;
        }
        let prev = self.events.insert(event.key, event);
        assert!(prev.is_none(), "duplicate pending event key");
        InsertOutcome::Inserted
    }

    /// Apply an anti-message for `key`.
    pub fn cancel(&mut self, key: &EventKey) -> CancelOutcome {
        if self.events.remove(key).is_some() {
            CancelOutcome::Removed
        } else {
            let fresh = self.orphan_antis.insert(*key);
            assert!(fresh, "duplicate anti-message for {key:?}");
            CancelOutcome::Deferred
        }
    }

    /// Remove a parked anti-message (the caller resolved it another way,
    /// e.g. by rolling back the already-processed positive). Returns whether
    /// the anti was present.
    pub fn unpark_anti(&mut self, key: &EventKey) -> bool {
        self.orphan_antis.remove(key)
    }

    /// Remove and return the lowest-keyed pending event.
    pub fn pop_min(&mut self) -> Option<Event<P>> {
        let key = *self.events.keys().next()?;
        self.events.remove(&key)
    }

    /// Key of the lowest pending event without removing it.
    pub fn min_key(&self) -> Option<EventKey> {
        self.events.keys().next().copied()
    }

    /// Receive time of the lowest pending event, or `INFINITY` when empty —
    /// the thread's contribution to the GVT minimum.
    pub fn min_time(&self) -> VirtualTime {
        self.min_key()
            .map(|k| k.recv_time)
            .unwrap_or(VirtualTime::INFINITY)
    }

    /// Number of pending positive events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of parked (unmatched) anti-messages.
    pub fn orphan_antis(&self) -> usize {
        self.orphan_antis.len()
    }

    /// Iterate pending events in key order (testing / debugging).
    pub fn iter(&self) -> impl Iterator<Item = &Event<P>> {
        self.events.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EventUid, LpId};

    fn ev(t: f64, dst: u32, src: u32, seq: u64) -> Event<u32> {
        Event {
            key: EventKey {
                recv_time: VirtualTime::from_f64(t),
                dst: LpId(dst),
                uid: EventUid::new(LpId(src), seq),
            },
            send_time: VirtualTime::ZERO,
            payload: 0,
        }
    }

    #[test]
    fn pop_min_in_key_order() {
        let mut ps = PendingSet::new();
        ps.insert(ev(3.0, 0, 0, 0));
        ps.insert(ev(1.0, 0, 0, 1));
        ps.insert(ev(2.0, 0, 0, 2));
        assert_eq!(ps.min_time(), VirtualTime::from_f64(1.0));
        let order: Vec<f64> = std::iter::from_fn(|| ps.pop_min())
            .map(|e| e.key.recv_time.as_f64())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
        assert_eq!(ps.min_time(), VirtualTime::INFINITY);
    }

    #[test]
    fn cancel_removes_pending() {
        let mut ps = PendingSet::new();
        let e = ev(1.0, 0, 0, 0);
        ps.insert(e.clone());
        assert_eq!(ps.cancel(&e.key), CancelOutcome::Removed);
        assert!(ps.is_empty());
    }

    #[test]
    fn anti_before_positive_annihilates_on_arrival() {
        let mut ps = PendingSet::new();
        let e = ev(1.0, 0, 0, 0);
        assert_eq!(ps.cancel(&e.key), CancelOutcome::Deferred);
        assert_eq!(ps.orphan_antis(), 1);
        assert_eq!(ps.insert(e), InsertOutcome::Annihilated);
        assert_eq!(ps.orphan_antis(), 0);
        assert!(ps.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate pending event key")]
    fn duplicate_insert_panics() {
        let mut ps = PendingSet::new();
        ps.insert(ev(1.0, 0, 0, 0));
        ps.insert(ev(1.0, 0, 0, 0));
    }

    #[test]
    fn len_tracks_contents() {
        let mut ps: PendingSet<u32> = PendingSet::new();
        assert!(ps.is_empty());
        ps.insert(ev(1.0, 0, 0, 0));
        ps.insert(ev(1.0, 1, 0, 1));
        assert_eq!(ps.len(), 2);
        ps.pop_min();
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn tie_break_orders_same_time_events() {
        let mut ps = PendingSet::new();
        ps.insert(ev(1.0, 2, 0, 0));
        ps.insert(ev(1.0, 1, 0, 1));
        assert_eq!(ps.pop_min().unwrap().key.dst, LpId(1));
    }
}
