//! The per-thread pending event set.
//!
//! Hot-path layout: a min-heap of event keys for ordering plus a hash map
//! from key to event for O(1) exact removal when an anti-message annihilates
//! an unprocessed event. Both structures reach a steady-state capacity and
//! then stop allocating — unlike the previous `BTreeMap`, which boxed a tree
//! node per insert and made every event cost a heap allocation.
//!
//! Determinism: the map uses a fixed-key FxHash ([`DetHash`]) — never
//! `RandomState` — so any code path that observes map internals behaves
//! identically across runs. Ordering queries never consult the map's
//! iteration order: `pop_min`/`min_key` are driven by the heap, and
//! [`PendingSet::iter`] is documented as **unordered** (callers that need an
//! order sort; the digest folds are XOR and order-independent).
//!
//! Cancellation is lazy: removing a key from the map leaves its heap entry
//! behind as a tombstone. The invariant is that the heap *top* is always
//! live — after any pop or top-cancel, stale tops are purged — so `min_key`
//! and `min_time` stay `&self` and O(1). A tombstone buried deeper is
//! dropped when it surfaces. The same key can legitimately appear twice in
//! the heap (anti-then-resend: cancel parks a tombstone, the re-sent twin
//! pushes a fresh entry); the map always holds at most one.
//!
//! Anti-messages can arrive *before* their positive twin (the positive and
//! the anti may be enqueued by different threads after a rollback on the
//! sender). Such "orphan" antis are parked in a side set and annihilate the
//! positive on arrival.

use crate::event::{Event, EventKey};
use crate::time::VirtualTime;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash with a fixed key: deterministic across runs and platforms, ~1 ns
/// per `EventKey`. The standard library's `RandomState` would randomize
/// iteration order per process — poison for a deterministic simulator.
#[derive(Default)]
pub struct DetHash {
    state: u64,
}

const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for DetHash {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = (self.state.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// A `HashMap` with deterministic (fixed-seed) hashing.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<DetHash>>;

/// Outcome of inserting a positive event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Event stored in the pending set.
    Inserted,
    /// A parked anti-message was waiting for it; both vanished.
    Annihilated,
}

/// Outcome of applying an anti-message to the pending set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The positive twin was pending and has been removed.
    Removed,
    /// The positive twin has not arrived yet; the anti is parked.
    Deferred,
}

/// Pending (unprocessed) events of one simulation thread, across all its LPs.
#[derive(Debug)]
pub struct PendingSet<P> {
    /// Min-heap of keys; may hold tombstones below the top (see module docs).
    heap: BinaryHeap<Reverse<EventKey>>,
    events: DetHashMap<EventKey, Event<P>>,
    /// Anti-messages whose positive twin has not arrived yet.
    orphan_antis: BTreeSet<EventKey>,
}

impl<P> Default for PendingSet<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PendingSet<P> {
    pub fn new() -> Self {
        PendingSet {
            heap: BinaryHeap::new(),
            events: DetHashMap::default(),
            orphan_antis: BTreeSet::new(),
        }
    }

    /// Drop tombstones off the top of the heap until the top is live (or the
    /// heap is empty) — restores the `min_key` invariant after a removal.
    #[inline]
    fn purge_top(&mut self) {
        while let Some(Reverse(k)) = self.heap.peek() {
            if self.events.contains_key(k) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Insert a positive event, annihilating it against a parked anti if one
    /// is waiting.
    ///
    /// # Panics
    /// Panics on duplicate keys — event UIDs are unique by construction, so a
    /// duplicate indicates an engine bug (e.g. an event re-inserted without
    /// its twin being cancelled).
    pub fn insert(&mut self, event: Event<P>) -> InsertOutcome {
        if self.orphan_antis.remove(&event.key) {
            return InsertOutcome::Annihilated;
        }
        let key = event.key;
        let prev = self.events.insert(key, event);
        assert!(prev.is_none(), "duplicate pending event key");
        self.heap.push(Reverse(key));
        InsertOutcome::Inserted
    }

    /// Apply an anti-message for `key`.
    pub fn cancel(&mut self, key: &EventKey) -> CancelOutcome {
        if self.events.remove(key).is_some() {
            // The heap entry becomes a tombstone; fix the top if we just
            // killed it. A cancellation storm can bloat the heap with buried
            // tombstones, so compact once they clearly dominate.
            self.purge_top();
            if self.heap.len() > 64 && self.heap.len() > 2 * self.events.len() {
                self.compact();
            }
            CancelOutcome::Removed
        } else {
            let fresh = self.orphan_antis.insert(*key);
            assert!(fresh, "duplicate anti-message for {key:?}");
            CancelOutcome::Deferred
        }
    }

    /// Rebuild the heap from the live key set, dropping every tombstone.
    fn compact(&mut self) {
        self.heap.clear();
        self.heap.extend(self.events.keys().map(|k| Reverse(*k)));
    }

    /// Remove a parked anti-message (the caller resolved it another way,
    /// e.g. by rolling back the already-processed positive). Returns whether
    /// the anti was present.
    pub fn unpark_anti(&mut self, key: &EventKey) -> bool {
        self.orphan_antis.remove(key)
    }

    /// Remove and return the lowest-keyed pending event.
    pub fn pop_min(&mut self) -> Option<Event<P>> {
        let Reverse(key) = self.heap.pop()?;
        let ev = self
            .events
            .remove(&key)
            .expect("heap top is always live (invariant)");
        // Every heap entry is either live (one map entry) or a tombstone, so
        // `heap.len() - events.len()` counts outstanding tombstones exactly.
        // When it is zero — the common case on the hot path; cancels are
        // rare — the new top is provably live and the purge's per-pop hash
        // probe is skipped entirely.
        if self.heap.len() != self.events.len() {
            self.purge_top();
        }
        Some(ev)
    }

    /// Key of the lowest pending event without removing it.
    #[inline]
    pub fn min_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse(k)| *k)
    }

    /// Receive time of the lowest pending event, or `INFINITY` when empty —
    /// the thread's contribution to the GVT minimum.
    #[inline]
    pub fn min_time(&self) -> VirtualTime {
        self.min_key()
            .map(|k| k.recv_time)
            .unwrap_or(VirtualTime::INFINITY)
    }

    /// Number of pending positive events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of parked (unmatched) anti-messages.
    pub fn orphan_antis(&self) -> usize {
        self.orphan_antis.len()
    }

    /// Iterate pending events in **unspecified order**. Callers that need a
    /// deterministic order must sort (checkpoint assembly does); the digest
    /// folds over this iterator are XOR and thus order-independent.
    pub fn iter(&self) -> impl Iterator<Item = &Event<P>> {
        self.events.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EventUid, LpId};

    fn ev(t: f64, dst: u32, src: u32, seq: u64) -> Event<u32> {
        Event {
            key: EventKey {
                recv_time: VirtualTime::from_f64(t),
                dst: LpId(dst),
                uid: EventUid::new(LpId(src), seq),
            },
            send_time: VirtualTime::ZERO,
            payload: 0,
        }
    }

    #[test]
    fn pop_min_in_key_order() {
        let mut ps = PendingSet::new();
        ps.insert(ev(3.0, 0, 0, 0));
        ps.insert(ev(1.0, 0, 0, 1));
        ps.insert(ev(2.0, 0, 0, 2));
        assert_eq!(ps.min_time(), VirtualTime::from_f64(1.0));
        let order: Vec<f64> = std::iter::from_fn(|| ps.pop_min())
            .map(|e| e.key.recv_time.as_f64())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
        assert_eq!(ps.min_time(), VirtualTime::INFINITY);
    }

    #[test]
    fn cancel_removes_pending() {
        let mut ps = PendingSet::new();
        let e = ev(1.0, 0, 0, 0);
        ps.insert(e.clone());
        assert_eq!(ps.cancel(&e.key), CancelOutcome::Removed);
        assert!(ps.is_empty());
        assert_eq!(ps.min_key(), None, "tombstone must not surface");
    }

    #[test]
    fn anti_before_positive_annihilates_on_arrival() {
        let mut ps = PendingSet::new();
        let e = ev(1.0, 0, 0, 0);
        assert_eq!(ps.cancel(&e.key), CancelOutcome::Deferred);
        assert_eq!(ps.orphan_antis(), 1);
        assert_eq!(ps.insert(e), InsertOutcome::Annihilated);
        assert_eq!(ps.orphan_antis(), 0);
        assert!(ps.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate pending event key")]
    fn duplicate_insert_panics() {
        let mut ps = PendingSet::new();
        ps.insert(ev(1.0, 0, 0, 0));
        ps.insert(ev(1.0, 0, 0, 0));
    }

    #[test]
    fn len_tracks_contents() {
        let mut ps: PendingSet<u32> = PendingSet::new();
        assert!(ps.is_empty());
        ps.insert(ev(1.0, 0, 0, 0));
        ps.insert(ev(1.0, 1, 0, 1));
        assert_eq!(ps.len(), 2);
        ps.pop_min();
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn tie_break_orders_same_time_events() {
        let mut ps = PendingSet::new();
        ps.insert(ev(1.0, 2, 0, 0));
        ps.insert(ev(1.0, 1, 0, 1));
        assert_eq!(ps.pop_min().unwrap().key.dst, LpId(1));
    }

    #[test]
    fn cancel_then_reinsert_same_key_stays_ordered() {
        // Anti-then-resend leaves a tombstone and a live entry for the same
        // key in the heap; the live one must pop exactly once.
        let mut ps = PendingSet::new();
        let e = ev(2.0, 0, 0, 0);
        ps.insert(e.clone());
        ps.insert(ev(1.0, 0, 0, 1));
        assert_eq!(ps.cancel(&e.key), CancelOutcome::Removed);
        ps.insert(e.clone());
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.pop_min().unwrap().key.uid.seq, 1);
        assert_eq!(ps.pop_min().unwrap().key, e.key);
        assert_eq!(ps.pop_min(), None);
        assert!(ps.is_empty());
    }

    #[test]
    fn buried_tombstones_never_resurface() {
        let mut ps = PendingSet::new();
        let doomed: Vec<_> = (0..10).map(|i| ev(5.0 + i as f64, 0, 0, i)).collect();
        for e in &doomed {
            ps.insert(e.clone());
        }
        ps.insert(ev(1.0, 0, 0, 100));
        for e in &doomed {
            // Buried behind the t=1.0 top: all become tombstones.
            assert_eq!(ps.cancel(&e.key), CancelOutcome::Removed);
        }
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.pop_min().unwrap().key.uid.seq, 100);
        assert_eq!(ps.pop_min(), None);
    }

    #[test]
    fn compaction_keeps_live_set_intact() {
        let mut ps = PendingSet::new();
        ps.insert(ev(0.5, 0, 0, 1000));
        // Enough cancel traffic to trip the tombstone compaction threshold.
        for i in 0..200 {
            let e = ev(10.0 + i as f64, 0, 0, i);
            ps.insert(e.clone());
            if i % 2 == 0 {
                ps.cancel(&e.key);
            }
        }
        assert_eq!(ps.len(), 101);
        let mut times: Vec<f64> = std::iter::from_fn(|| ps.pop_min())
            .map(|e| e.key.recv_time.as_f64())
            .collect();
        assert_eq!(times.len(), 101);
        let sorted = {
            let mut s = times.clone();
            s.sort_by(f64::total_cmp);
            s
        };
        assert_eq!(times, sorted, "pop order must stay ascending");
        assert_eq!(times.remove(0), 0.5);
    }

    #[test]
    fn det_hash_is_stable() {
        // The whole point of DetHash: the same key hashes identically in
        // every process, so runs are reproducible.
        use std::hash::{Hash, Hasher};
        let key = ev(3.25, 7, 2, 9).key;
        let mut h1 = DetHash::default();
        key.hash(&mut h1);
        let mut h2 = DetHash::default();
        key.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
        assert_ne!(h1.finish(), 0);
    }
}
