//! Engine configuration shared by both runtimes.

use crate::mapping::MapKind;
use crate::time::VirtualTime;
use serde::{Deserialize, Serialize};

/// Adaptive GVT frequency (the idea of the paper's related work, ref. 24):
/// when a thread's uncommitted history grows past the watermarks, it
/// triggers GVT rounds earlier than the static interval, bounding Time Warp
/// memory without paying for frequent rounds when pressure is low.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveGvt {
    /// Uncommitted events per thread above which the interval halves.
    pub low_watermark: usize,
    /// Above this the interval quarters.
    pub high_watermark: usize,
}

impl AdaptiveGvt {
    pub fn new(low_watermark: usize, high_watermark: usize) -> Self {
        assert!(
            0 < low_watermark && low_watermark < high_watermark,
            "watermarks must satisfy 0 < low < high"
        );
        AdaptiveGvt {
            low_watermark,
            high_watermark,
        }
    }

    /// Effective interval for a thread holding `history` uncommitted events.
    pub fn effective_interval(&self, base: u32, history: usize) -> u32 {
        if history >= self.high_watermark {
            (base / 4).max(1)
        } else if history >= self.low_watermark {
            (base / 2).max(1)
        } else {
            base
        }
    }
}

/// Parameters of the core simulation loop (paper §2.2 and §4.1.4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Events processed per main-loop cycle (ROSS batch; paper: 8).
    pub batch_size: usize,
    /// GVT computation frequency: one round every this many cycles
    /// (paper: 200).
    pub gvt_interval: u32,
    /// Consecutive empty-input-queue cycles before a thread declares itself
    /// inactive (paper's `zero_counter_threshold`: 2000).
    pub zero_counter_threshold: u32,
    /// Simulation end time: the run finishes once GVT ≥ this.
    pub end_time: VirtualTime,
    /// Experiment seed; all LP RNG streams derive from it.
    pub seed: u64,
    /// LP → thread mapping strategy.
    pub mapping: MapKind,
    /// Sparse state saving: snapshot LP state before every k-th event only
    /// (1 = classical copy state saving). Rollbacks past a gap coast-forward
    /// by replaying events with sends suppressed.
    pub snapshot_period: u32,
    /// Bounded optimism: when set, threads do not process events more than
    /// this far (in virtual time) beyond the last known GVT. `None` = the
    /// unthrottled ROSS behaviour used throughout the paper.
    pub optimism_window: Option<f64>,
    /// Adaptive GVT frequency by memory pressure; `None` = the paper's
    /// static interval.
    pub adaptive_gvt: Option<AdaptiveGvt>,
    /// Adaptive GVT *backoff* (the ROSS "7 O'clock" `g_tw_gvt_max_no_change`
    /// pattern): after this many consecutive rounds in which GVT did not
    /// move, a thread doubles its effective round interval (capped at 64×
    /// the base) until GVT advances again, so quiescent phases stop paying
    /// round costs. `0` (the default) disables the backoff.
    pub gvt_max_no_change: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            batch_size: 8,
            gvt_interval: 200,
            zero_counter_threshold: 2000,
            end_time: VirtualTime::from_f64(100.0),
            seed: 0x5EED,
            mapping: MapKind::RoundRobin,
            snapshot_period: 1,
            optimism_window: None,
            adaptive_gvt: None,
            gvt_max_no_change: 0,
        }
    }
}

impl EngineConfig {
    /// Builder-style setters.
    pub fn with_end_time(mut self, t: f64) -> Self {
        self.end_time = VirtualTime::from_f64(t);
        self
    }
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
    pub fn with_gvt_interval(mut self, n: u32) -> Self {
        assert!(n > 0, "gvt_interval must be positive");
        self.gvt_interval = n;
        self
    }
    pub fn with_zero_counter_threshold(mut self, n: u32) -> Self {
        self.zero_counter_threshold = n;
        self
    }
    pub fn with_batch_size(mut self, n: usize) -> Self {
        assert!(n > 0, "batch_size must be positive");
        self.batch_size = n;
        self
    }
    pub fn with_mapping(mut self, kind: MapKind) -> Self {
        self.mapping = kind;
        self
    }
    pub fn with_snapshot_period(mut self, k: u32) -> Self {
        assert!(k >= 1, "snapshot period must be at least 1");
        self.snapshot_period = k;
        self
    }
    pub fn with_optimism_window(mut self, w: Option<f64>) -> Self {
        if let Some(w) = w {
            assert!(w > 0.0, "optimism window must be positive");
        }
        self.optimism_window = w;
        self
    }
    pub fn with_adaptive_gvt(mut self, a: Option<AdaptiveGvt>) -> Self {
        self.adaptive_gvt = a;
        self
    }
    pub fn with_gvt_max_no_change(mut self, n: u32) -> Self {
        self.gvt_max_no_change = n;
        self
    }
}

/// Per-thread state of the no-change GVT backoff (`gvt_max_no_change`):
/// counts consecutive rounds where GVT stood still and widens the effective
/// interval geometrically once the configured patience runs out.
#[derive(Debug, Clone, Copy, Default)]
pub struct GvtBackoff {
    last_gvt: u64,
    no_change: u32,
    /// Current interval multiplier as a power of two (0 → 1×, capped 6 → 64×).
    shift: u32,
}

impl GvtBackoff {
    /// Record the GVT observed after a round. Movement resets the backoff;
    /// `max_no_change` consecutive still rounds double the multiplier.
    pub fn observe(&mut self, gvt_ticks: u64, max_no_change: u32) {
        if max_no_change == 0 {
            return;
        }
        if gvt_ticks != self.last_gvt {
            self.last_gvt = gvt_ticks;
            self.no_change = 0;
            self.shift = 0;
        } else {
            self.no_change += 1;
            if self.no_change >= max_no_change {
                self.no_change = 0;
                self.shift = (self.shift + 1).min(6);
            }
        }
    }

    /// The interval to use this cycle, given the (possibly watermark-
    /// adapted) base interval.
    pub fn effective_interval(&self, base: u32) -> u32 {
        base.saturating_mul(1 << self.shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EngineConfig::default();
        assert_eq!(c.batch_size, 8);
        assert_eq!(c.gvt_interval, 200);
        assert_eq!(c.zero_counter_threshold, 2000);
        assert_eq!(c.snapshot_period, 1);
        assert_eq!(c.optimism_window, None);
    }

    #[test]
    fn builder_chains() {
        let c = EngineConfig::default()
            .with_end_time(50.0)
            .with_seed(9)
            .with_gvt_interval(10)
            .with_zero_counter_threshold(40)
            .with_batch_size(4)
            .with_mapping(MapKind::Block);
        assert_eq!(c.end_time, VirtualTime::from_f64(50.0));
        assert_eq!(c.seed, 9);
        assert_eq!(c.gvt_interval, 10);
        assert_eq!(c.zero_counter_threshold, 40);
        assert_eq!(c.batch_size, 4);
        assert_eq!(c.mapping, MapKind::Block);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gvt_interval_rejected() {
        EngineConfig::default().with_gvt_interval(0);
    }

    #[test]
    fn adaptive_interval_tiers() {
        let a = AdaptiveGvt::new(100, 400);
        assert_eq!(a.effective_interval(200, 0), 200);
        assert_eq!(a.effective_interval(200, 99), 200);
        assert_eq!(a.effective_interval(200, 100), 100);
        assert_eq!(a.effective_interval(200, 400), 50);
        // Never reaches zero.
        assert_eq!(a.effective_interval(2, 1000), 1);
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn inverted_watermarks_rejected() {
        AdaptiveGvt::new(400, 100);
    }

    #[test]
    fn backoff_widens_on_still_gvt_and_resets_on_movement() {
        let mut b = GvtBackoff::default();
        // Disabled: nothing changes no matter how still GVT is.
        for _ in 0..10 {
            b.observe(7, 0);
        }
        assert_eq!(b.effective_interval(16), 16);
        // The first observation is the moving baseline; two still rounds
        // after it double the interval, two more double it again.
        b.observe(7, 2);
        assert_eq!(b.effective_interval(16), 16);
        b.observe(7, 2);
        b.observe(7, 2);
        assert_eq!(b.effective_interval(16), 32);
        b.observe(7, 2);
        b.observe(7, 2);
        assert_eq!(b.effective_interval(16), 64);
        // Movement snaps straight back to the base interval.
        b.observe(8, 2);
        assert_eq!(b.effective_interval(16), 16);
        // The multiplier caps at 64×.
        for _ in 0..100 {
            b.observe(8, 1);
        }
        assert_eq!(b.effective_interval(16), 16 * 64);
    }
}
