//! # ggpdes-core — platform-independent Time Warp PDES primitives
//!
//! This crate implements the optimistic (Time Warp) discrete-event core that
//! the GG-PDES runtimes are built on, following the ROSS shared-memory design
//! described in *GVT-Guided Demand-Driven Scheduling in Parallel Discrete
//! Event Simulation* (Eker et al., ICPP 2021), §2:
//!
//! * [`time::VirtualTime`] — fixed-point virtual time with total ordering;
//! * [`model::Model`] — the application interface (LP states + handlers);
//! * [`lp::Lp`] — per-LP state saving, rollback, fossil collection;
//! * [`pending::PendingSet`] — the per-thread pending event set with
//!   anti-message annihilation;
//! * [`engine::ThreadEngine`] — the per-simulation-thread engine combining
//!   the above: optimistic batches, straggler rollbacks, anti-message
//!   cascades;
//! * [`sequential`] — a sequential reference executor used as a correctness
//!   oracle by both runtimes' test suites.
//!
//! Everything here is deterministic: RNG streams are per-LP and part of the
//! rolled-back state, event ordering is total, and no wall-clock or
//! hash-iteration order leaks into results.

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod event;
pub mod faults;
pub mod ids;
pub mod ingest;
pub mod lp;
pub mod mapping;
pub mod model;
pub mod pending;
pub mod rng;
pub mod sequential;
pub mod stats;
pub mod time;

pub use checkpoint::{Checkpoint, CheckpointError, CutSnapshot, LpCheckpoint, SupervisorConfig};
pub use config::{AdaptiveGvt, EngineConfig, GvtBackoff};
pub use engine::{BatchOutcome, DeliverOutcome, Outbound, ThreadEngine};
pub use event::{Event, EventKey, Msg};
pub use faults::{
    batch_has_uid_pairs, BackpressureFault, DelayFault, FaultCounts, FaultCursor, FaultInjector,
    FaultKind, FaultPlan, LinkAction, LinkDelayFault, LinkDropFault, LinkDupFault, LinkFaultPlan,
    LinkFaults, ReorderFault, RoundDump, StallDump, StragglerFault, ThreadDump, WakeupFault,
};
pub use ids::{EventUid, LpId, SimThreadId};
pub use ingest::{
    IngestConfig, IngestError, IngestGate, IngestJournal, IngestReply, IngestRequest, IngestStats,
    JournalRecord, PumpOutcome, ReplySlot, INGEST_SRC,
};
pub use mapping::{LpMap, MapKind, ShardMap};
pub use model::{Model, SendCtx};
pub use rng::DetRng;
pub use sequential::{
    run_sequential, run_sequential_from, run_sequential_from_with, run_sequential_with,
    SequentialResult,
};
pub use stats::{RoundCounters, ThreadStats};
pub use time::VirtualTime;
