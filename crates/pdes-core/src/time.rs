//! Virtual (simulation) time.
//!
//! Time Warp correctness depends on a total order over event receive times,
//! including reproducible tie-breaking. Floating point timestamps (as used by
//! ROSS) introduce platform-dependent rounding and NaN hazards, so we use a
//! 64-bit fixed-point representation with [`FRAC_BITS`] fractional bits.
//! All model-facing APIs accept `f64` and convert through [`VirtualTime::from_f64`].

use serde::{Deserialize, Serialize};

/// Number of fractional bits in the fixed-point representation.
///
/// 20 bits gives a resolution of ~1e-6 time units and an upper range of
/// ~1.7e13 time units, far beyond any end time used by the paper's models.
pub const FRAC_BITS: u32 = 20;

/// Fixed-point virtual time. Wraps a `u64`: `value = ticks / 2^FRAC_BITS`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(pub u64);

impl VirtualTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: VirtualTime = VirtualTime(0);
    /// The greatest representable time; used as the identity for `min` folds.
    pub const INFINITY: VirtualTime = VirtualTime(u64::MAX);

    /// Construct from raw fixed-point ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        VirtualTime(ticks)
    }

    /// Raw fixed-point ticks.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Convert a non-negative, finite `f64` to fixed point (saturating).
    ///
    /// # Panics
    /// Panics if `t` is negative or NaN — model bugs should fail loudly.
    #[inline]
    pub fn from_f64(t: f64) -> Self {
        assert!(t >= 0.0, "virtual time must be non-negative, got {t}");
        let scaled = t * (1u64 << FRAC_BITS) as f64;
        if scaled >= u64::MAX as f64 {
            VirtualTime::INFINITY
        } else {
            VirtualTime(scaled as u64)
        }
    }

    /// Convert back to `f64` (lossy for very large values).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / (1u64 << FRAC_BITS) as f64
    }

    /// Saturating addition of a delay.
    #[inline]
    pub fn saturating_add(self, delay: VirtualTime) -> Self {
        VirtualTime(self.0.saturating_add(delay.0))
    }

    /// `true` if this is the `INFINITY` sentinel.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }
}

impl std::ops::Add for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(
            self.0
                .checked_add(rhs.0)
                .expect("virtual time addition overflow"),
        )
    }
}

impl std::ops::Sub for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(
            self.0
                .checked_sub(rhs.0)
                .expect("virtual time subtraction underflow"),
        )
    }
}

impl std::fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{:.6}", self.as_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        for &t in &[0.0, 0.5, 1.0, 123.456, 1e6] {
            let vt = VirtualTime::from_f64(t);
            assert!((vt.as_f64() - t).abs() < 1e-5, "roundtrip {t}");
        }
    }

    #[test]
    fn ordering_matches_f64() {
        let a = VirtualTime::from_f64(1.25);
        let b = VirtualTime::from_f64(1.250001);
        assert!(a < b);
        assert!(VirtualTime::ZERO < a);
        assert!(b < VirtualTime::INFINITY);
    }

    #[test]
    fn add_sub() {
        let a = VirtualTime::from_f64(2.0);
        let b = VirtualTime::from_f64(3.0);
        assert_eq!((a + b).as_f64(), 5.0);
        assert_eq!((b - a).as_f64(), 1.0);
    }

    #[test]
    fn saturating_add_caps_at_infinity() {
        assert_eq!(
            VirtualTime::INFINITY.saturating_add(VirtualTime::from_f64(1.0)),
            VirtualTime::INFINITY
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let _ = VirtualTime::from_f64(-1.0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", VirtualTime::INFINITY), "∞");
        assert_eq!(format!("{}", VirtualTime::from_f64(1.5)), "1.500000");
    }
}
