//! External-event ingest: admission control, backpressure, and a
//! crash-durable journal.
//!
//! The gate is the runtime-side half of the ingest plane (`crates/ingest`
//! holds the client half). Externally-sourced, timestamped events enter a
//! *running* simulation through an [`IngestGate`]:
//!
//! * **Admission.** GVT is the irrevocable commit floor, so an external
//!   event is only admissible strictly above the last published GVT (plus a
//!   configurable lookahead guard band). Anything at or below the floor is
//!   refused with [`IngestReply::Rejected`] carrying the floor it was judged
//!   against — the client re-stamps and retries. Admission happens under the
//!   same mutex that fences GVT publication ([`IngestGate::fence_gvt`]), so
//!   an admitted event is either visible to a GVT computation (its receive
//!   time bounds the new GVT from below) or was judged against the *new*
//!   floor — the published GVT can never overshoot an admitted timestamp.
//! * **Backpressure.** Per-source queue occupancy is bounded: an over-quota
//!   source gets [`IngestReply::Busy`] with a retry hint. Above a global
//!   high-watermark the gate sheds the newest arrivals
//!   ([`IngestReply::Shed`]) instead of letting the backlog stall GVT
//!   rounds — admission work per round is capped by `max_per_pump`.
//! * **Durability.** Accepted events are appended to a JSONL journal
//!   (flushed per record, compacted with the same temp-file + rename
//!   discipline as [`crate::checkpoint`]) keyed by the client-supplied
//!   idempotency id, *before* they are injected. An admitted event is
//!   stamped `send_time = floor`; a checkpoint cut at GVT `G` includes
//!   exactly the pending events with `send_time < G`, so after a restore the
//!   journal suffix with `send_time ≥ G` is the exact complement — replaying
//!   it re-injects every accepted-but-uncommitted event exactly once.
//!   Duplicate submissions (client retries after a lost reply) are dropped
//!   against the journal-backed idempotency map.

use crate::event::{Event, EventKey};
use crate::ids::{EventUid, LpId};
use crate::time::VirtualTime;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The reserved source LP for ingest event uids: no model LP can be
/// `u32::MAX` (maps are dense from 0), so ingest uids never collide with
/// model-generated ones.
pub const INGEST_SRC: LpId = LpId(u32::MAX);

/// Per-shard uid namespace width: the shard id occupies the top 16 bits of
/// the 64-bit sequence, so shards mint disjoint ingest uids.
const SHARD_SHIFT: u32 = 48;

/// One externally-sourced event submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestRequest<P> {
    /// Client/source identifier (scopes the idempotency id and the
    /// per-source backpressure quota).
    pub source: u32,
    /// Client-supplied idempotency id, unique per source. Retries reuse it;
    /// the gate admits each `(source, id)` at most once.
    pub id: u64,
    /// Requested receive (virtual) time.
    pub at: VirtualTime,
    /// Destination LP.
    pub dst: LpId,
    pub payload: P,
}

/// Structured verdict on one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestReply {
    /// Journaled and injected; will commit exactly once.
    Accepted,
    /// Timestamp at or below the admission floor (GVT + guard band) it was
    /// judged against — re-stamp above `floor_ticks` and retry.
    Rejected { floor_ticks: u64 },
    /// The source is over its queue quota; retry after the hint.
    Busy { retry_after_ms: u64 },
    /// Global high-watermark reached; the newest arrival is shed.
    Shed,
    /// This `(source, id)` was already accepted (or is already queued).
    Duplicate,
    /// The gate is closed (simulation finished or shutting down).
    Closed,
}

impl IngestReply {
    pub fn is_accepted(self) -> bool {
        matches!(self, IngestReply::Accepted)
    }
}

/// Gate tuning knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestConfig {
    /// Lookahead guard band in ticks above the floor: admissible means
    /// `at > floor + guard_ticks`.
    pub guard_ticks: u64,
    /// Per-source queued-submission cap (`Busy` beyond it).
    pub source_capacity: usize,
    /// Global queued-submission cap (`Shed` beyond it).
    pub high_watermark: usize,
    /// Admissions processed per pump, so one flooded round cannot stall GVT.
    pub max_per_pump: usize,
    /// Retry hint returned with `Busy`.
    pub retry_after_ms: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            guard_ticks: 0,
            source_capacity: 64,
            high_watermark: 256,
            max_per_pump: 64,
            retry_after_ms: 1,
        }
    }
}

/// Gate counters (cumulative; snapshotted into telemetry round records).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    pub submitted: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub busy: u64,
    pub shed: u64,
    pub duplicate: u64,
    /// Journal records re-injected after a restore.
    pub replayed: u64,
}

/// Why a journal operation failed (mirrors [`crate::CheckpointError`]).
#[derive(Debug)]
pub enum IngestError {
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    Corrupt {
        path: PathBuf,
        detail: String,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io { path, source } => {
                write!(f, "ingest journal {}: {source}", path.display())
            }
            IngestError::Corrupt { path, detail } => {
                write!(
                    f,
                    "ingest journal {}: not a valid journal ({detail})",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io { source, .. } => Some(source),
            IngestError::Corrupt { .. } => None,
        }
    }
}

/// One journal line: the idempotency key plus the exact admitted event
/// (uid and send stamp included, so a replay reconstructs it bit-identical).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord<P> {
    pub source: u32,
    pub id: u64,
    pub event: Event<P>,
}

/// Append-only JSONL journal of accepted events. Appends are flushed per
/// record; a torn final line (crash mid-append) is tolerated on read;
/// compaction rewrites through a temp file + rename.
pub struct IngestJournal {
    path: PathBuf,
    file: std::fs::File,
}

impl IngestJournal {
    /// Open (creating if absent) for appending.
    pub fn open(path: &Path) -> Result<Self, IngestError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|source| IngestError::Io {
                path: path.to_path_buf(),
                source,
            })?;
        Ok(IngestJournal {
            path: path.to_path_buf(),
            file,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record and flush it to the OS.
    pub fn append<P: Serialize>(&mut self, rec: &JournalRecord<P>) -> Result<(), IngestError> {
        let io_err = |source| IngestError::Io {
            path: self.path.clone(),
            source,
        };
        let mut line = serde_json::to_string(rec).expect("journal serialization is infallible");
        line.push('\n');
        self.file.write_all(line.as_bytes()).map_err(io_err)?;
        self.file.flush().map_err(io_err)
    }

    /// Read every record from `path`. A missing file reads as empty (a run
    /// that never accepted anything has no journal); an unparsable *final*
    /// line is a torn append and is dropped; an unparsable interior line is
    /// `Corrupt`.
    pub fn read_all<P: Deserialize>(path: &Path) -> Result<Vec<JournalRecord<P>>, IngestError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(source) => {
                return Err(IngestError::Io {
                    path: path.to_path_buf(),
                    source,
                })
            }
        };
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut out = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            match serde_json::from_str::<JournalRecord<P>>(line) {
                Ok(rec) => out.push(rec),
                Err(_) if i + 1 == lines.len() => break, // torn tail
                Err(e) => {
                    return Err(IngestError::Corrupt {
                        path: path.to_path_buf(),
                        detail: format!("line {}: {e}", i + 1),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Rewrite `path` to exactly `keep`, atomically (temp file + rename —
    /// the same discipline as `Checkpoint::write_atomic`).
    pub fn compact<P: Serialize>(
        path: &Path,
        keep: &[JournalRecord<P>],
    ) -> Result<(), IngestError> {
        let io_err = |source| IngestError::Io {
            path: path.to_path_buf(),
            source,
        };
        let mut text = String::new();
        for rec in keep {
            text.push_str(&serde_json::to_string(rec).expect("journal serialization"));
            text.push('\n');
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, text).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }
}

/// Where an eventual verdict for a queued submission goes.
pub enum ReplySlot {
    /// Fire-and-forget (feeders that don't track outcomes).
    None,
    /// Local callback, invoked exactly once when the verdict is known.
    Local(Box<dyn FnOnce(IngestReply) + Send>),
    /// The submission was forwarded from another shard: the verdict must be
    /// sent back to `peer` tagged with the origin's `key`.
    Remote { peer: u64, key: u64 },
}

/// A queued submission awaiting a pump.
pub struct PendingEntry<P> {
    pub req: IngestRequest<P>,
    pub slot: ReplySlot,
}

/// What one [`IngestGate::pump`] produced beyond locally injected events.
#[derive(Default)]
pub struct PumpOutcome<P> {
    /// Events handed to the sink (already injected).
    pub injected: u64,
    /// Submissions for LPs this gate's runtime does not own — the caller
    /// routes them to the owning shard (empty outside `dist-rt`).
    pub forward: Vec<PendingEntry<P>>,
    /// Verdicts for forwarded submissions: `(peer, key, reply)`.
    pub remote_replies: Vec<(u64, u64, IngestReply)>,
}

impl<P> PumpOutcome<P> {
    fn new() -> Self {
        PumpOutcome {
            injected: 0,
            forward: Vec::new(),
            remote_replies: Vec::new(),
        }
    }
}

struct GateInner<P> {
    cfg: IngestConfig,
    /// Admission floor in ticks: the last GVT this gate was fenced with
    /// (monotone — never lowered, not even by a restore).
    floor_ticks: u64,
    closed: bool,
    queue: VecDeque<PendingEntry<P>>,
    queued_ids: HashSet<(u32, u64)>,
    per_source: HashMap<u32, usize>,
    /// Idempotency map: every admitted `(source, id)` with its exact event.
    accepted: HashMap<(u32, u64), Event<P>>,
    /// Cross-process replay suffix staged by [`IngestGate::stage_replay`];
    /// the next pump drains it straight to the sink ahead of the queue.
    staged_replay: Vec<Event<P>>,
    journal: Option<IngestJournal>,
    next_seq: u64,
    uid_base: u64,
    stats: IngestStats,
    /// Test hook: simulate a crash in the window between the journal append
    /// and the engine injection — the next admission journals its record,
    /// then the pump returns without injecting or replying.
    fail_after_append: bool,
}

/// The runtime-side ingest gate. One mutex serializes submission triage,
/// admission pumping, and GVT fencing — see the module docs for why that
/// mutual exclusion is the admission-safety argument.
pub struct IngestGate<P> {
    inner: Mutex<GateInner<P>>,
}

impl<P> IngestGate<P> {
    /// A gate with no journal (events are not durable across a process
    /// crash; in-process recovery still replays from the accepted map).
    pub fn new(cfg: IngestConfig, shard: u64) -> Self {
        IngestGate {
            inner: Mutex::new(GateInner {
                cfg,
                floor_ticks: 0,
                closed: false,
                queue: VecDeque::new(),
                queued_ids: HashSet::new(),
                per_source: HashMap::new(),
                accepted: HashMap::new(),
                staged_replay: Vec::new(),
                journal: None,
                next_seq: 0,
                uid_base: shard << SHARD_SHIFT,
                stats: IngestStats::default(),
                fail_after_append: false,
            }),
        }
    }

    /// A gate journaling to `path` (fresh run: an existing journal is left
    /// in place and appended to; use [`Self::recover`] to replay one).
    pub fn with_journal(cfg: IngestConfig, shard: u64, path: &Path) -> Result<Self, IngestError> {
        let gate = Self::new(cfg, shard);
        gate.lock().journal = Some(IngestJournal::open(path)?);
        Ok(gate)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateInner<P>> {
        // A panic while holding the gate lock (worker kill chaos) must not
        // wedge every later submission: the inner state is consistent at
        // every await-free step, so poisoning is survivable.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Submit one request. `Some(reply)` is an immediate verdict (the slot
    /// is dropped unused); `None` means the request is queued and `slot`
    /// will receive the verdict at a later pump.
    pub fn submit(&self, req: IngestRequest<P>, slot: ReplySlot) -> Option<IngestReply> {
        let mut g = self.lock();
        g.stats.submitted += 1;
        if g.closed {
            return Some(IngestReply::Closed);
        }
        let key = (req.source, req.id);
        if g.accepted.contains_key(&key) || g.queued_ids.contains(&key) {
            g.stats.duplicate += 1;
            return Some(IngestReply::Duplicate);
        }
        // The floor is monotone, so a timestamp inadmissible now can never
        // become admissible: reject at the door with the current floor.
        if req.at.ticks() <= g.floor_ticks.saturating_add(g.cfg.guard_ticks) {
            g.stats.rejected += 1;
            return Some(IngestReply::Rejected {
                floor_ticks: g.floor_ticks,
            });
        }
        if g.queue.len() >= g.cfg.high_watermark {
            g.stats.shed += 1;
            return Some(IngestReply::Shed);
        }
        let used = g.per_source.get(&req.source).copied().unwrap_or(0);
        if used >= g.cfg.source_capacity {
            g.stats.busy += 1;
            return Some(IngestReply::Busy {
                retry_after_ms: g.cfg.retry_after_ms,
            });
        }
        g.per_source.insert(req.source, used + 1);
        g.queued_ids.insert(key);
        g.queue.push_back(PendingEntry { req, slot });
        None
    }

    /// Record a newly published GVT as the admission floor, computed *under
    /// the gate lock* so no admission can interleave with it.
    pub fn fence_gvt(&self, compute: impl FnOnce() -> VirtualTime) -> VirtualTime {
        let mut g = self.lock();
        let gvt = compute();
        g.floor_ticks = g.floor_ticks.max(gvt.ticks());
        gvt
    }

    /// Raise the admission floor (single-threaded runtimes where GVT
    /// adoption and admission cannot race).
    pub fn set_floor(&self, gvt: VirtualTime) {
        let mut g = self.lock();
        g.floor_ticks = g.floor_ticks.max(gvt.ticks());
    }

    /// Current admission floor in ticks.
    pub fn floor_ticks(&self) -> u64 {
        self.lock().floor_ticks
    }

    fn resolve(out: &mut PumpOutcome<P>, slot: ReplySlot, reply: IngestReply) {
        match slot {
            ReplySlot::None => {}
            ReplySlot::Local(f) => f(reply),
            ReplySlot::Remote { peer, key } => out.remote_replies.push((peer, key, reply)),
        }
    }

    /// Number of distinct accepted idempotency ids.
    pub fn accepted_count(&self) -> usize {
        self.lock().accepted.len()
    }

    /// Whether `(source, id)` was admitted.
    pub fn was_accepted(&self, source: u32, id: u64) -> bool {
        self.lock().accepted.contains_key(&(source, id))
    }

    /// Queued submissions right now (bounded by `high_watermark`).
    pub fn queued_len(&self) -> usize {
        self.lock().queue.len()
    }

    pub fn stats(&self) -> IngestStats {
        self.lock().stats
    }

    /// Refuse all future submissions and fail the queued ones with `Closed`.
    pub fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        let mut out = PumpOutcome::new();
        while let Some(entry) = g.queue.pop_front() {
            let key = (entry.req.source, entry.req.id);
            g.queued_ids.remove(&key);
            Self::resolve(&mut out, entry.slot, IngestReply::Closed);
        }
        g.per_source.clear();
        // Remote slots have no transport here; the dist node drains its
        // forward map on shutdown instead.
    }

    /// Arm the crash-window test hook (see `GateInner::fail_after_append`).
    pub fn set_fail_after_append(&self, on: bool) {
        self.lock().fail_after_append = on;
    }

    /// Stage the replay suffix returned by [`IngestGate::recover`] for
    /// injection at the next pump of a **fresh** run. The events are
    /// already journaled and in the accepted map, so they bypass admission
    /// and go straight to the sink — exactly once, ahead of any new
    /// admission. (Per-shard journals only ever hold locally-owned events —
    /// forwarding happens before admission — so staged events never need
    /// re-routing under an unchanged LP map.)
    pub fn stage_replay(&self, replay: Vec<Event<P>>) {
        self.lock().staged_replay.extend(replay);
    }
}

impl<P: Clone + Serialize> IngestGate<P> {
    /// Admit queued submissions against the current floor. `owned` says
    /// whether this runtime hosts the destination LP (always true outside
    /// `dist-rt`); `sink` receives each admitted event *while the gate lock
    /// is held*, so no GVT fence can interleave between the admission check
    /// and the injection. At most `max_per_pump` entries are processed.
    pub fn pump(
        &self,
        mut owned: impl FnMut(LpId) -> bool,
        sink: &mut dyn FnMut(Event<P>),
    ) -> Result<PumpOutcome<P>, IngestError> {
        let mut g = self.lock();
        let mut out = PumpOutcome::new();
        // Staged cross-process replay first: pre-admitted, pre-journaled,
        // not charged against `max_per_pump` (a one-time, journal-bounded
        // burst that must land before any fresh admission can outrun it).
        for ev in std::mem::take(&mut g.staged_replay) {
            out.injected += 1;
            sink(ev);
        }
        for _ in 0..g.cfg.max_per_pump {
            let Some(entry) = g.queue.pop_front() else {
                break;
            };
            let key = (entry.req.source, entry.req.id);
            g.queued_ids.remove(&key);
            if let Some(n) = g.per_source.get_mut(&entry.req.source) {
                *n = n.saturating_sub(1);
            }
            let admissible = entry.req.at.ticks() > g.floor_ticks.saturating_add(g.cfg.guard_ticks);
            if !admissible {
                g.stats.rejected += 1;
                let floor = g.floor_ticks;
                Self::resolve(
                    &mut out,
                    entry.slot,
                    IngestReply::Rejected { floor_ticks: floor },
                );
                continue;
            }
            if !owned(entry.req.dst) {
                out.forward.push(entry);
                continue;
            }
            let seq = g.next_seq;
            g.next_seq += 1;
            let ev = Event {
                key: EventKey {
                    recv_time: entry.req.at,
                    dst: entry.req.dst,
                    uid: EventUid::new(INGEST_SRC, g.uid_base | seq),
                },
                send_time: VirtualTime::from_ticks(g.floor_ticks),
                payload: entry.req.payload.clone(),
            };
            if let Some(journal) = &mut g.journal {
                journal.append(&JournalRecord {
                    source: entry.req.source,
                    id: entry.req.id,
                    event: ev.clone(),
                })?;
            }
            g.accepted.insert(key, ev.clone());
            g.stats.admitted += 1;
            if g.fail_after_append {
                // Crash-window simulation: journaled, never injected, no
                // reply — exactly what a kill between append and injection
                // leaves behind.
                return Ok(out);
            }
            out.injected += 1;
            sink(ev);
            Self::resolve(&mut out, entry.slot, IngestReply::Accepted);
        }
        Ok(out)
    }

    /// Every admitted event so far, in key order — feeds the merged-stream
    /// sequential oracle.
    pub fn accepted_events(&self) -> Vec<Event<P>> {
        let g = self.lock();
        let mut evs: Vec<Event<P>> = g.accepted.values().cloned().collect();
        evs.sort_by_key(|e| e.key);
        evs
    }

    /// Re-inject after an **in-process** restore from a cut at `cut_gvt`:
    /// the cut holds every accepted event with `send_time < cut_gvt`, so the
    /// complement (`send_time ≥ cut_gvt`) is handed back to `sink` — exactly
    /// once, from the accepted map the surviving gate still holds. A restart
    /// from genesis passes `cut_gvt = 0` and gets everything ever accepted.
    /// Any staged cross-process replay suffix is discarded: it is a subset
    /// of what `sink` receives here, and letting the next pump inject it
    /// too would commit those ids twice.
    pub fn reinject_after_restore(&self, cut_gvt: VirtualTime, sink: &mut dyn FnMut(Event<P>)) {
        let mut g = self.lock();
        // `recover` pre-charged `stats.replayed` for the staged suffix; the
        // discard hands those events to `sink` below instead, so drop the
        // pre-charge rather than count them twice.
        let discarded = g.staged_replay.len() as u64;
        g.staged_replay.clear();
        g.stats.replayed = g.stats.replayed.saturating_sub(discarded);
        g.floor_ticks = g.floor_ticks.max(cut_gvt.ticks());
        let mut evs: Vec<Event<P>> = g
            .accepted
            .values()
            .filter(|e| e.send_time >= cut_gvt)
            .cloned()
            .collect();
        evs.sort_by_key(|e| e.key);
        g.stats.replayed += evs.len() as u64;
        for ev in evs {
            sink(ev);
        }
    }
}

impl<P: Clone + Serialize + Deserialize> IngestGate<P> {
    /// Rebuild a gate from its journal after a **cross-process** restore
    /// from a cut at `cut_gvt`. The accepted map is reloaded from every
    /// journal record (so client retries still dedup), the floor starts at
    /// the cut, and the returned events — the journal suffix with
    /// `send_time ≥ cut_gvt` — must be re-injected by the caller, exactly
    /// once, in the returned (key) order.
    pub fn recover(
        cfg: IngestConfig,
        shard: u64,
        path: &Path,
        cut_gvt: VirtualTime,
    ) -> Result<(Self, Vec<Event<P>>), IngestError> {
        let records = IngestJournal::read_all::<P>(path)?;
        let gate = Self::new(cfg, shard);
        let mut replay = Vec::new();
        {
            let mut g = gate.lock();
            g.floor_ticks = cut_gvt.ticks();
            for rec in records {
                // Resume the uid sequence past every minted seq so new
                // admissions never collide with journaled ones.
                let seq = rec.event.key.uid.seq & !(u64::MAX << SHARD_SHIFT);
                g.next_seq = g.next_seq.max(seq + 1);
                if rec.event.send_time >= cut_gvt {
                    replay.push(rec.event.clone());
                }
                g.accepted.insert((rec.source, rec.id), rec.event);
            }
            g.stats.replayed = replay.len() as u64;
            g.journal = Some(IngestJournal::open(path)?);
        }
        replay.sort_by_key(|e| e.key);
        Ok((gate, replay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(source: u32, id: u64, at: f64) -> IngestRequest<u32> {
        IngestRequest {
            source,
            id,
            at: VirtualTime::from_f64(at),
            dst: LpId(0),
            payload: id as u32,
        }
    }

    fn pump_all(gate: &IngestGate<u32>) -> Vec<Event<u32>> {
        let mut got = Vec::new();
        gate.pump(|_| true, &mut |ev| got.push(ev)).expect("pump");
        got
    }

    #[test]
    fn staged_replay_drains_once_ahead_of_fresh_admissions() {
        let dir = std::env::temp_dir().join(format!("ggpdes-ingest-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("stage-replay.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let gate: IngestGate<u32> =
                IngestGate::with_journal(IngestConfig::default(), 0, &path).expect("journal");
            gate.submit(req(1, 1, 2.0), ReplySlot::None);
            gate.submit(req(1, 2, 3.0), ReplySlot::None);
            assert_eq!(pump_all(&gate).len(), 2);
        }
        let (gate, replay) =
            IngestGate::<u32>::recover(IngestConfig::default(), 0, &path, VirtualTime::ZERO)
                .expect("recover");
        assert_eq!(replay.len(), 2);
        gate.stage_replay(replay);
        // A fresh admission queued behind the staged suffix.
        gate.submit(req(1, 3, 4.0), ReplySlot::None);
        let got = pump_all(&gate);
        assert_eq!(got.len(), 3, "staged pair + fresh admission in one pump");
        assert_eq!(got[2].key.recv_time, VirtualTime::from_f64(4.0));
        // Drained exactly once.
        assert!(pump_all(&gate).is_empty());
        // Retries of replayed ids still dedup against the recovered map.
        assert_eq!(
            gate.submit(req(1, 2, 3.0), ReplySlot::None),
            Some(IngestReply::Duplicate)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejection_carries_the_floor_it_was_judged_against() {
        let gate: IngestGate<u32> = IngestGate::new(IngestConfig::default(), 0);
        gate.set_floor(VirtualTime::from_f64(10.0));
        let r = gate.submit(req(1, 1, 5.0), ReplySlot::None);
        assert_eq!(
            r,
            Some(IngestReply::Rejected {
                floor_ticks: VirtualTime::from_f64(10.0).ticks()
            })
        );
    }

    #[test]
    fn admission_is_strictly_above_floor_plus_guard() {
        let cfg = IngestConfig {
            guard_ticks: VirtualTime::from_f64(1.0).ticks(),
            ..Default::default()
        };
        let gate: IngestGate<u32> = IngestGate::new(cfg, 0);
        gate.set_floor(VirtualTime::from_f64(10.0));
        assert!(matches!(
            gate.submit(req(1, 1, 11.0), ReplySlot::None),
            Some(IngestReply::Rejected { .. })
        ));
        assert_eq!(gate.submit(req(1, 2, 11.5), ReplySlot::None), None);
        let got = pump_all(&gate);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].key.recv_time, VirtualTime::from_f64(11.5));
        assert_eq!(got[0].send_time, VirtualTime::from_f64(10.0));
        assert_eq!(got[0].key.uid.src, INGEST_SRC);
    }

    #[test]
    fn duplicate_ids_admit_once() {
        let gate: IngestGate<u32> = IngestGate::new(IngestConfig::default(), 0);
        assert_eq!(gate.submit(req(1, 7, 5.0), ReplySlot::None), None);
        assert_eq!(
            gate.submit(req(1, 7, 6.0), ReplySlot::None),
            Some(IngestReply::Duplicate)
        );
        pump_all(&gate);
        assert_eq!(
            gate.submit(req(1, 7, 8.0), ReplySlot::None),
            Some(IngestReply::Duplicate)
        );
        assert_eq!(gate.accepted_count(), 1);
        // A different source may reuse the id.
        assert_eq!(gate.submit(req(2, 7, 8.0), ReplySlot::None), None);
    }

    #[test]
    fn per_source_quota_yields_busy_and_watermark_sheds() {
        let cfg = IngestConfig {
            source_capacity: 2,
            high_watermark: 3,
            ..Default::default()
        };
        let gate: IngestGate<u32> = IngestGate::new(cfg, 0);
        assert_eq!(gate.submit(req(1, 1, 5.0), ReplySlot::None), None);
        assert_eq!(gate.submit(req(1, 2, 5.0), ReplySlot::None), None);
        assert_eq!(
            gate.submit(req(1, 3, 5.0), ReplySlot::None),
            Some(IngestReply::Busy { retry_after_ms: 1 })
        );
        assert_eq!(gate.submit(req(2, 1, 5.0), ReplySlot::None), None);
        assert_eq!(
            gate.submit(req(3, 1, 5.0), ReplySlot::None),
            Some(IngestReply::Shed),
            "high watermark sheds the newest arrival"
        );
        assert_eq!(gate.queued_len(), 3);
        let s = gate.stats();
        assert_eq!((s.busy, s.shed), (1, 1));
    }

    #[test]
    fn pump_rejects_entries_the_floor_overtook() {
        let gate: IngestGate<u32> = IngestGate::new(IngestConfig::default(), 0);
        let got_reply = std::sync::Arc::new(Mutex::new(None));
        let gr = std::sync::Arc::clone(&got_reply);
        assert_eq!(
            gate.submit(
                req(1, 1, 5.0),
                ReplySlot::Local(Box::new(move |r| *gr.lock().unwrap() = Some(r)))
            ),
            None
        );
        // The floor advances past the queued timestamp before the pump.
        gate.set_floor(VirtualTime::from_f64(9.0));
        let got = pump_all(&gate);
        assert!(got.is_empty());
        assert_eq!(
            *got_reply.lock().unwrap(),
            Some(IngestReply::Rejected {
                floor_ticks: VirtualTime::from_f64(9.0).ticks()
            })
        );
        // The id is free again for a re-stamped retry.
        assert_eq!(gate.submit(req(1, 1, 12.0), ReplySlot::None), None);
    }

    #[test]
    fn non_owned_destinations_are_forwarded() {
        let gate: IngestGate<u32> = IngestGate::new(IngestConfig::default(), 0);
        let mut r = req(1, 1, 5.0);
        r.dst = LpId(3);
        gate.submit(r, ReplySlot::None);
        let out = gate
            .pump(|lp| lp != LpId(3), &mut |_| panic!("must not inject"))
            .expect("pump");
        assert_eq!(out.forward.len(), 1);
        assert_eq!(out.forward[0].req.dst, LpId(3));
        assert_eq!(gate.accepted_count(), 0);
    }

    #[test]
    fn journal_roundtrip_and_recovery_replays_suffix_exactly() {
        let dir = std::env::temp_dir().join(format!("ingest-j-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal-roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let gate: IngestGate<u32> =
                IngestGate::with_journal(IngestConfig::default(), 0, &path).expect("open");
            gate.submit(req(1, 1, 5.0), ReplySlot::None);
            pump_all(&gate); // send_time = 0 (< cut)
            gate.set_floor(VirtualTime::from_f64(8.0));
            gate.submit(req(1, 2, 9.0), ReplySlot::None);
            pump_all(&gate); // send_time = 8 (≥ cut)
        }
        let cut = VirtualTime::from_f64(8.0);
        let (gate2, replay) =
            IngestGate::<u32>::recover(IngestConfig::default(), 0, &path, cut).expect("recover");
        assert_eq!(replay.len(), 1, "only the suffix above the cut replays");
        assert_eq!(replay[0].key.recv_time, VirtualTime::from_f64(9.0));
        // The idempotency map survives for both records.
        assert!(gate2.was_accepted(1, 1));
        assert!(gate2.was_accepted(1, 2));
        assert_eq!(
            gate2.submit(req(1, 2, 20.0), ReplySlot::None),
            Some(IngestReply::Duplicate)
        );
        // New admissions mint fresh uids past the journaled ones.
        gate2.submit(req(1, 3, 20.0), ReplySlot::None);
        let got = pump_all(&gate2);
        assert!(got[0].key.uid.seq > replay[0].key.uid.seq);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_tolerated_interior_corruption_is_not() {
        let dir = std::env::temp_dir().join(format!("ingest-j-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal-torn.jsonl");
        let rec = JournalRecord {
            source: 1,
            id: 1,
            event: Event {
                key: EventKey {
                    recv_time: VirtualTime::from_f64(5.0),
                    dst: LpId(0),
                    uid: EventUid::new(INGEST_SRC, 0),
                },
                send_time: VirtualTime::ZERO,
                payload: 1u32,
            },
        };
        let line = serde_json::to_string(&rec).unwrap();
        std::fs::write(&path, format!("{line}\n{line}\n{{\"torn")).unwrap();
        let back = IngestJournal::read_all::<u32>(&path).expect("torn tail tolerated");
        assert_eq!(back.len(), 2);
        std::fs::write(&path, format!("{line}\n{{broken}}\n{line}\n")).unwrap();
        assert!(matches!(
            IngestJournal::read_all::<u32>(&path),
            Err(IngestError::Corrupt { .. })
        ));
        IngestJournal::compact(&path, std::slice::from_ref(&rec)).expect("compact");
        let back = IngestJournal::read_all::<u32>(&path).expect("compacted");
        assert_eq!(back, vec![rec]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_between_append_and_inject_replays_exactly_once() {
        let dir = std::env::temp_dir().join(format!("ingest-j-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal-crashwin.jsonl");
        let _ = std::fs::remove_file(&path);
        let cut;
        {
            let gate: IngestGate<u32> =
                IngestGate::with_journal(IngestConfig::default(), 0, &path).expect("open");
            gate.set_floor(VirtualTime::from_f64(3.0));
            cut = VirtualTime::from_f64(3.0);
            gate.set_fail_after_append(true);
            gate.submit(req(1, 1, 5.0), ReplySlot::None);
            let got = pump_all(&gate);
            assert!(got.is_empty(), "crashed before injection");
        }
        // The newest cut G precedes the append (no publish ran in between),
        // so send_time = floor-at-append ≥ G and the record replays.
        let (_, replay) =
            IngestGate::<u32>::recover(IngestConfig::default(), 0, &path, cut).expect("recover");
        assert_eq!(replay.len(), 1);
        // …and only once: a second recovery from a later cut *above* the
        // send stamp means the event committed before that cut.
        let (_, replay2) = IngestGate::<u32>::recover(
            IngestConfig::default(),
            0,
            &path,
            VirtualTime::from_f64(4.0),
        )
        .expect("recover");
        assert!(replay2.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn close_fails_queued_submissions() {
        let gate: IngestGate<u32> = IngestGate::new(IngestConfig::default(), 0);
        let got = std::sync::Arc::new(Mutex::new(None));
        let g2 = std::sync::Arc::clone(&got);
        gate.submit(
            req(1, 1, 5.0),
            ReplySlot::Local(Box::new(move |r| *g2.lock().unwrap() = Some(r))),
        );
        gate.close();
        assert_eq!(*got.lock().unwrap(), Some(IngestReply::Closed));
        assert_eq!(
            gate.submit(req(1, 2, 5.0), ReplySlot::None),
            Some(IngestReply::Closed)
        );
    }
}
