//! Per-LP Time Warp bookkeeping: state snapshots, the processed-event list,
//! rollback, and fossil collection.

// `drop(ctx)` ends multi-field borrows at a visible point before the
// borrowed fields are read again; the contexts carry no destructor.
#![allow(clippy::drop_non_drop)]

use crate::event::{BufPool, Event, EventKey};
use crate::ids::LpId;
use crate::model::{Model, SendCtx};
use crate::rng::DetRng;
use crate::time::VirtualTime;
use std::collections::VecDeque;

/// Everything that must be restored on rollback: the model state plus the
/// LP's RNG stream and send-sequence counter (so re-executed handlers draw
/// the same random numbers and re-issue the same [`crate::ids::EventUid`]s).
#[derive(Debug, Clone)]
pub struct Snapshot<S> {
    pub state: S,
    pub rng: DetRng,
    pub send_seq: u64,
}

/// One processed event together with the keys of every event it sent, and —
/// depending on the snapshot policy — the state snapshot taken *before* it
/// executed.
///
/// Under *sparse* (periodic) state saving only every k-th entry carries a
/// snapshot; rollback restores the nearest earlier snapshot and
/// *coast-forwards*: it re-executes the intervening events with their sends
/// suppressed (determinism guarantees the replayed execution is identical,
/// so the original in-flight events stay valid).
#[derive(Debug, Clone)]
pub struct ProcessedEntry<M: Model> {
    pub event: Event<M::Payload>,
    pub pre: Option<Snapshot<M::State>>,
    pub sent: Vec<EventKey>,
}

/// Result of a rollback.
#[derive(Debug)]
pub struct Rollback<M: Model> {
    /// Undone events to be re-inserted into the thread's pending set
    /// (in ascending key order).
    pub reinserted: Vec<Event<M::Payload>>,
    /// Anti-messages to send, one per event sent by an undone entry.
    pub antis: Vec<EventKey>,
    /// Number of processed events undone.
    pub undone: usize,
}

/// A logical process under optimistic (Time Warp) execution.
pub struct Lp<M: Model> {
    pub id: LpId,
    pub state: M::State,
    pub rng: DetRng,
    pub send_seq: u64,
    /// Processed-but-uncommitted events in ascending key order.
    pub processed: VecDeque<ProcessedEntry<M>>,
    /// Number of events committed (fossil-collected) so far.
    pub committed: u64,
    /// XOR-fold of key digests of committed events (order-independent trace
    /// digest; compared against the sequential oracle).
    pub commit_digest: u64,
    /// Receive time of the last committed event (the LP's position on the
    /// committed side of the GVT cut; what a checkpoint records as its LVT).
    pub committed_lvt: VirtualTime,
    /// Snapshot every k-th processed event (1 = copy state saving, the
    /// classical Time Warp default).
    snapshot_every: u32,
    /// Entries processed since the last snapshot-bearing entry.
    since_snapshot: u32,
    /// Recycled sent-key buffers: every [`ProcessedEntry::sent`] list comes
    /// from here and goes back on commit/rollback, so steady-state
    /// processing allocates no per-event list.
    key_pool: BufPool<EventKey>,
    /// Scratch send buffer for coast-forward replay (sends are suppressed,
    /// so the buffer only exists to be compared against the recorded keys).
    replay_buf: Vec<Event<M::Payload>>,
}

/// Order-independent 64-bit digest of an event key.
pub fn key_digest(key: &EventKey) -> u64 {
    let mut s = key.recv_time.ticks().wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ((key.dst.0 as u64) << 32)
        ^ (key.uid.src.0 as u64)
        ^ key.uid.seq.rotate_left(17);
    crate::rng::splitmix64(&mut s)
}

impl<M: Model> Lp<M> {
    /// Create the LP with its initial state and private RNG stream, saving
    /// state before every event (classical copy state saving).
    pub fn new(model: &M, id: LpId, seed: u64) -> Self {
        Lp::with_snapshot_period(model, id, seed, 1)
    }

    /// Create the LP with sparse state saving: a snapshot before every
    /// `period`-th event only.
    pub fn with_snapshot_period(model: &M, id: LpId, seed: u64, period: u32) -> Self {
        assert!(period >= 1, "snapshot period must be at least 1");
        Lp {
            id,
            state: model.init_state(id),
            rng: DetRng::for_lp(seed, id),
            send_seq: 0,
            processed: VecDeque::new(),
            committed: 0,
            commit_digest: 0,
            committed_lvt: VirtualTime::ZERO,
            snapshot_every: period,
            since_snapshot: 0,
            key_pool: BufPool::new(),
            replay_buf: Vec::new(),
        }
    }

    /// Run the model's initial-event hook; returns the scheduled events.
    pub fn init_events(&mut self, model: &M) -> Vec<Event<M::Payload>> {
        let mut out = Vec::new();
        let mut ctx = SendCtx::new(
            self.id,
            VirtualTime::ZERO,
            &mut self.rng,
            &mut self.send_seq,
            &mut out,
        );
        model.init_events(self.id, &mut self.state, &mut ctx);
        out
    }

    /// Local virtual time: receive time of the last processed event.
    #[inline]
    pub fn lvt(&self) -> VirtualTime {
        self.processed
            .back()
            .map(|e| e.event.key.recv_time)
            .unwrap_or(VirtualTime::ZERO)
    }

    /// Key of the last processed event, if any.
    #[inline]
    pub fn last_processed_key(&self) -> Option<EventKey> {
        self.processed.back().map(|e| e.event.key)
    }

    /// `true` if `key` orders before an already-processed event — i.e.
    /// processing it now would violate causality and a rollback is needed.
    #[inline]
    pub fn is_straggler(&self, key: &EventKey) -> bool {
        match self.last_processed_key() {
            Some(last) => *key < last,
            None => false,
        }
    }

    /// `true` if an event with exactly this key has been processed and not
    /// yet committed or rolled back. O(log n) — the processed list is sorted
    /// by key.
    pub fn has_processed(&self, key: &EventKey) -> bool {
        self.processed
            .binary_search_by(|e| e.event.key.cmp(key))
            .is_ok()
    }

    /// Optimistically process `event`: snapshot (per the sparse-saving
    /// policy), execute the handler, record the entry. The handler's sends
    /// are **appended** to `out`; the number appended is returned.
    ///
    /// This is the zero-allocation hot path: the caller owns and reuses
    /// `out`, the sent-key list comes from the LP's buffer pool, and a
    /// snapshot is only taken every `snapshot_period`-th event (cheap for
    /// heap-free model states, skipped entirely in between).
    ///
    /// # Panics
    /// Debug-asserts that `event` is not a straggler — callers must roll back
    /// first.
    pub fn process_into(
        &mut self,
        model: &M,
        event: Event<M::Payload>,
        out: &mut Vec<Event<M::Payload>>,
    ) -> usize {
        debug_assert!(
            !self.is_straggler(&event.key),
            "process() called with straggler {:?} (last {:?})",
            event.key,
            self.last_processed_key()
        );
        // The first retained entry must carry a snapshot (it is the replay
        // base); later entries snapshot once per period.
        let take_snap = self.processed.is_empty() || self.since_snapshot + 1 >= self.snapshot_every;
        let pre = take_snap.then(|| Snapshot {
            state: self.state.clone(),
            rng: self.rng.clone(),
            send_seq: self.send_seq,
        });
        self.since_snapshot = if take_snap {
            0
        } else {
            self.since_snapshot + 1
        };
        let start = out.len();
        let mut ctx = SendCtx::new(
            self.id,
            event.key.recv_time,
            &mut self.rng,
            &mut self.send_seq,
            out,
        );
        model.handle_event(self.id, &mut self.state, &event.payload, &mut ctx);
        drop(ctx);
        let mut sent = self.key_pool.get();
        sent.extend(out[start..].iter().map(|e| e.key));
        self.processed
            .push_back(ProcessedEntry { sent, event, pre });
        out.len() - start
    }

    /// [`Self::process_into`] returning the sends as a fresh `Vec`
    /// (convenience for tests and cold paths).
    pub fn process(&mut self, model: &M, event: Event<M::Payload>) -> Vec<Event<M::Payload>> {
        let mut out = Vec::new();
        self.process_into(model, event, &mut out);
        out
    }

    /// Re-execute the processed entries `[from..]` starting from the current
    /// (just-restored) state, with sends suppressed: the original sends are
    /// already in flight, and deterministic handlers reproduce them exactly
    /// (debug builds verify this). Split-borrows `self` so no entry is
    /// cloned; the replay sends land in the reused scratch buffer.
    fn coast_forward(&mut self, model: &M, from: usize) {
        let Lp {
            id,
            state,
            rng,
            send_seq,
            processed,
            replay_buf,
            ..
        } = self;
        for entry in processed.iter().skip(from) {
            replay_buf.clear();
            let mut ctx = SendCtx::new(*id, entry.event.key.recv_time, rng, send_seq, replay_buf);
            model.handle_event(*id, state, &entry.event.payload, &mut ctx);
            drop(ctx);
            debug_assert_eq!(
                replay_buf.iter().map(|e| e.key).collect::<Vec<_>>(),
                entry.sent,
                "non-deterministic model: replay of {:?} sent different events",
                entry.event.key
            );
        }
    }

    /// Reconstruct the pre-state of entry `at` into a fresh snapshot using
    /// the nearest earlier snapshot plus replay.
    fn materialize_snapshot(&self, model: &M, at: usize) -> Snapshot<M::State> {
        let base = self
            .processed
            .iter()
            .take(at + 1)
            .rposition(|e| e.pre.is_some())
            .expect("the first retained entry always carries a snapshot");
        let snap = self.processed[base].pre.as_ref().expect("checked").clone();
        let mut state = snap.state;
        let mut rng = snap.rng;
        let mut send_seq = snap.send_seq;
        let mut out = Vec::new();
        for entry in self.processed.iter().take(at).skip(base) {
            out.clear();
            let mut ctx = SendCtx::new(
                self.id,
                entry.event.key.recv_time,
                &mut rng,
                &mut send_seq,
                &mut out,
            );
            model.handle_event(self.id, &mut state, &entry.event.payload, &mut ctx);
        }
        Snapshot {
            state,
            rng,
            send_seq,
        }
    }

    /// Recompute the snapshot-period counter after the tail changed.
    fn refresh_since_snapshot(&mut self) {
        self.since_snapshot = match self.processed.iter().rposition(|e| e.pre.is_some()) {
            Some(i) => (self.processed.len() - 1 - i) as u32,
            None => 0, // empty history: the next entry snapshots regardless
        };
    }

    /// Roll back every processed entry whose key is `> key` (or `>= key` if
    /// `inclusive`). Restores the snapshot of the earliest undone entry —
    /// or, under sparse state saving, the nearest earlier snapshot followed
    /// by a coast-forward replay.
    ///
    /// `inclusive` rollback is used for anti-messages (the cancelled event
    /// itself must be undone and is *not* re-inserted — the caller filters it
    /// out via the returned events).
    pub fn rollback(&mut self, model: &M, key: &EventKey, inclusive: bool) -> Rollback<M> {
        let mut rb = Rollback {
            reinserted: Vec::new(),
            antis: Vec::new(),
            undone: 0,
        };
        let mut earliest_pre: Option<Snapshot<M::State>> = None;
        while let Some(last) = self.processed.back() {
            let undo = if inclusive {
                last.event.key >= *key
            } else {
                last.event.key > *key
            };
            if !undo {
                break;
            }
            let entry = self.processed.pop_back().expect("non-empty");
            rb.antis.extend(entry.sent.iter().copied());
            self.key_pool.put(entry.sent);
            rb.reinserted.push(entry.event);
            earliest_pre = entry.pre;
            rb.undone += 1;
        }
        if rb.undone > 0 {
            match earliest_pre {
                Some(pre) => {
                    // The earliest undone entry carried its pre-state.
                    self.state = pre.state;
                    self.rng = pre.rng;
                    self.send_seq = pre.send_seq;
                }
                None => {
                    // Sparse saving: restore the nearest earlier snapshot
                    // and coast-forward through the retained tail.
                    let base = self
                        .processed
                        .iter()
                        .rposition(|e| e.pre.is_some())
                        .expect("the first retained entry always carries a snapshot");
                    let snap = self.processed[base].pre.as_ref().expect("checked").clone();
                    self.state = snap.state;
                    self.rng = snap.rng;
                    self.send_seq = snap.send_seq;
                    self.coast_forward(model, base);
                }
            }
            self.refresh_since_snapshot();
        }
        // Ascending key order for determinism (entries were popped newest
        // first).
        rb.reinserted.reverse();
        rb.antis.reverse();
        rb
    }

    /// Commit (drop) all processed entries with receive time strictly below
    /// `gvt`; returns how many were committed.
    ///
    /// Entries at or above the GVT are retained because a rollback may still
    /// target them; under sparse state saving the new first retained entry
    /// gets a materialized snapshot so it remains a valid replay base.
    pub fn fossil_collect(&mut self, model: &M, gvt: VirtualTime) -> u64 {
        let cut = self
            .processed
            .iter()
            .take_while(|e| e.event.key.recv_time < gvt)
            .count();
        if cut == 0 {
            return 0;
        }
        if cut < self.processed.len() && self.processed[cut].pre.is_none() {
            let snap = self.materialize_snapshot(model, cut);
            self.processed[cut].pre = Some(snap);
        }
        for _ in 0..cut {
            let entry = self.processed.pop_front().expect("cut <= len");
            self.commit_digest ^= key_digest(&entry.event.key);
            self.committed_lvt = entry.event.key.recv_time;
            self.key_pool.put(entry.sent);
        }
        self.committed += cut as u64;
        cut as u64
    }

    /// Commit everything still uncommitted (simulation has ended: GVT passed
    /// the end time, so all processed events are final).
    pub fn commit_all(&mut self, model: &M) -> u64 {
        self.fossil_collect(model, VirtualTime::INFINITY)
    }

    /// The LP's state on the *committed* side of the GVT cut: the snapshot
    /// immediately after its last committed event.
    ///
    /// Valid right after `fossil_collect(gvt)`: if any uncommitted entries
    /// remain, the first one carries a (possibly just materialized) snapshot
    /// whose pre-state is exactly the committed state; with no uncommitted
    /// history the current state *is* the committed state.
    pub fn committed_snapshot(&self) -> Snapshot<M::State> {
        match self.processed.front() {
            Some(first) => first
                .pre
                .clone()
                .expect("the first retained entry always carries a snapshot"),
            None => Snapshot {
                state: self.state.clone(),
                rng: self.rng.clone(),
                send_seq: self.send_seq,
            },
        }
    }

    /// Reset the LP to a checkpointed committed state: no speculative
    /// history, counters and digests continuing from the cut.
    pub fn restore_from(
        &mut self,
        snap: Snapshot<M::State>,
        committed: u64,
        commit_digest: u64,
        committed_lvt: VirtualTime,
    ) {
        self.state = snap.state;
        self.rng = snap.rng;
        self.send_seq = snap.send_seq;
        self.processed.clear();
        self.since_snapshot = 0;
        self.committed = committed;
        self.commit_digest = commit_digest;
        self.committed_lvt = committed_lvt;
    }

    /// Digest of the LP's current model state.
    pub fn state_digest(&self, model: &M) -> u64 {
        model.state_digest(&self.state)
    }

    /// Bytes of uncommitted history (rough estimate for memory accounting).
    pub fn history_len(&self) -> usize {
        self.processed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EventUid;

    /// Counter model: each event adds its payload to the state and sends one
    /// follow-up event to LP 0 with delay 1.
    struct Counter;
    impl Model for Counter {
        type State = u64;
        type Payload = u64;
        fn num_lps(&self) -> usize {
            4
        }
        fn init_state(&self, _lp: LpId) -> u64 {
            0
        }
        fn init_events(&self, _lp: LpId, _s: &mut u64, _ctx: &mut SendCtx<'_, u64>) {}
        fn handle_event(&self, _lp: LpId, s: &mut u64, p: &u64, ctx: &mut SendCtx<'_, u64>) {
            *s = s.wrapping_add(*p).wrapping_add(ctx.rng().next_below(3));
            ctx.send(LpId(0), 1.0, *p + 1);
        }
        fn state_digest(&self, s: &u64) -> u64 {
            *s
        }
    }

    fn ev(t: f64, dst: u32, src: u32, seq: u64, p: u64) -> Event<u64> {
        Event {
            key: EventKey {
                recv_time: VirtualTime::from_f64(t),
                dst: LpId(dst),
                uid: EventUid::new(LpId(src), seq),
            },
            send_time: VirtualTime::ZERO,
            payload: p,
        }
    }

    #[test]
    fn process_records_history_and_sends() {
        let m = Counter;
        let mut lp = Lp::new(&m, LpId(1), 7);
        let out = lp.process(&m, ev(1.0, 1, 0, 0, 10));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key.recv_time, VirtualTime::from_f64(2.0));
        assert_eq!(lp.processed.len(), 1);
        assert_eq!(lp.lvt(), VirtualTime::from_f64(1.0));
        assert_eq!(lp.processed[0].sent, vec![out[0].key]);
    }

    #[test]
    fn rollback_restores_state_rng_and_seq() {
        let m = Counter;
        let mut lp = Lp::new(&m, LpId(1), 7);
        let before_digest = lp.state;
        let before_rng = lp.rng.clone();
        let e1 = ev(1.0, 1, 0, 0, 10);
        let out1 = lp.process(&m, e1.clone());
        let e2 = ev(2.0, 1, 0, 1, 20);
        let out2 = lp.process(&m, e2.clone());

        // Straggler at t=0.5 rolls back both.
        let straggler_key = ev(0.5, 1, 9, 0, 0).key;
        let rb = lp.rollback(&m, &straggler_key, false);
        assert_eq!(rb.undone, 2);
        assert_eq!(rb.reinserted, vec![e1.clone(), e2.clone()]);
        assert_eq!(rb.antis, vec![out1[0].key, out2[0].key]);
        assert_eq!(lp.state, before_digest);
        assert_eq!(lp.rng, before_rng);
        assert_eq!(lp.send_seq, 0);
        assert_eq!(lp.lvt(), VirtualTime::ZERO);

        // Re-execution reproduces the same sends (same uid, time, payload).
        let out1b = lp.process(&m, e1);
        assert_eq!(out1b, out1);
    }

    #[test]
    fn partial_rollback_keeps_earlier_entries() {
        let m = Counter;
        let mut lp = Lp::new(&m, LpId(1), 7);
        lp.process(&m, ev(1.0, 1, 0, 0, 1));
        let state_after_1 = lp.state;
        lp.process(&m, ev(2.0, 1, 0, 1, 2));
        lp.process(&m, ev(3.0, 1, 0, 2, 3));
        let rb = lp.rollback(&m, &ev(1.5, 1, 9, 0, 0).key, false);
        assert_eq!(rb.undone, 2);
        assert_eq!(lp.processed.len(), 1);
        assert_eq!(lp.state, state_after_1);
        assert_eq!(lp.lvt(), VirtualTime::from_f64(1.0));
    }

    #[test]
    fn inclusive_rollback_undoes_equal_key() {
        let m = Counter;
        let mut lp = Lp::new(&m, LpId(1), 7);
        let e1 = ev(1.0, 1, 0, 0, 1);
        lp.process(&m, e1.clone());
        let rb = lp.rollback(&m, &e1.key, true);
        assert_eq!(rb.undone, 1);
        let rb2 = lp.rollback(&m, &e1.key, false);
        assert_eq!(rb2.undone, 0);
    }

    #[test]
    fn straggler_detection_uses_full_key_order() {
        let m = Counter;
        let mut lp = Lp::new(&m, LpId(1), 7);
        let e = ev(1.0, 1, 2, 5, 1);
        lp.process(&m, e);
        // Same time, smaller uid → straggler.
        assert!(lp.is_straggler(&ev(1.0, 1, 2, 4, 0).key));
        // Same time, larger uid → not a straggler.
        assert!(!lp.is_straggler(&ev(1.0, 1, 2, 6, 0).key));
        assert!(!lp.is_straggler(&ev(2.0, 1, 0, 0, 0).key));
        assert!(lp.is_straggler(&ev(0.5, 1, 0, 0, 0).key));
    }

    #[test]
    fn fossil_collect_commits_below_gvt_only() {
        let m = Counter;
        let mut lp = Lp::new(&m, LpId(1), 7);
        lp.process(&m, ev(1.0, 1, 0, 0, 1));
        lp.process(&m, ev(2.0, 1, 0, 1, 1));
        lp.process(&m, ev(3.0, 1, 0, 2, 1));
        assert_eq!(lp.fossil_collect(&m, VirtualTime::from_f64(2.0)), 1);
        assert_eq!(lp.committed, 1);
        assert_eq!(lp.processed.len(), 2);
        // Equal-to-GVT entries retained.
        assert_eq!(lp.fossil_collect(&m, VirtualTime::from_f64(2.0)), 0);
        assert_eq!(lp.commit_all(&m), 2);
        assert_eq!(lp.committed, 3);
        assert_eq!(lp.history_len(), 0);
    }

    #[test]
    fn committed_snapshot_and_restore_resume_identically() {
        let m = Counter;
        let mut lp = Lp::new(&m, LpId(1), 7);
        let e1 = ev(1.0, 1, 0, 0, 1);
        let e2 = ev(2.0, 1, 0, 1, 2);
        let e3 = ev(3.0, 1, 0, 2, 3);
        lp.process(&m, e1);
        let committed_state = lp.state;
        let out2 = lp.process(&m, e2.clone());
        let out3 = lp.process(&m, e3.clone());
        lp.fossil_collect(&m, VirtualTime::from_f64(1.5));
        assert_eq!(lp.committed_lvt, VirtualTime::from_f64(1.0));

        // The committed snapshot is the state right after e1...
        let snap = lp.committed_snapshot();
        assert_eq!(snap.state, committed_state);

        // ...and a fresh LP restored from it replays e2/e3 bit-for-bit.
        let mut fresh = Lp::new(&m, LpId(1), 999); // wrong seed, overwritten
        fresh.restore_from(snap, lp.committed, lp.commit_digest, lp.committed_lvt);
        assert_eq!(fresh.committed, 1);
        assert_eq!(fresh.history_len(), 0);
        assert_eq!(fresh.process(&m, e2), out2);
        assert_eq!(fresh.process(&m, e3), out3);
        lp.commit_all(&m);
        fresh.commit_all(&m);
        assert_eq!(fresh.state, lp.state);
        assert_eq!(fresh.commit_digest, lp.commit_digest);
        assert_eq!(fresh.committed, lp.committed);
    }

    #[test]
    fn committed_snapshot_with_empty_history_is_current_state() {
        let m = Counter;
        let mut lp = Lp::new(&m, LpId(1), 7);
        lp.process(&m, ev(1.0, 1, 0, 0, 1));
        lp.commit_all(&m);
        let snap = lp.committed_snapshot();
        assert_eq!(snap.state, lp.state);
        assert_eq!(snap.send_seq, lp.send_seq);
    }

    #[test]
    fn commit_digest_is_order_independent() {
        let m = Counter;
        let e1 = ev(1.0, 1, 0, 0, 1);
        let e2 = ev(2.0, 1, 0, 1, 1);
        let mut a = Lp::new(&m, LpId(1), 7);
        a.process(&m, e1.clone());
        a.process(&m, e2.clone());
        a.commit_all(&m);
        let mut b = Lp::new(&m, LpId(1), 7);
        b.process(&m, e1);
        b.fossil_collect(&m, VirtualTime::from_f64(1.5));
        b.process(&m, e2);
        b.commit_all(&m);
        assert_eq!(a.commit_digest, b.commit_digest);
        assert_ne!(a.commit_digest, 0);
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;
    use crate::ids::EventUid;
    use crate::model::{Model, SendCtx};
    use crate::LpId;

    /// Model with RNG-dependent state and sends (exercises replay fidelity).
    struct Mixer;
    impl Model for Mixer {
        type State = u64;
        type Payload = u32;
        fn num_lps(&self) -> usize {
            2
        }
        fn init_state(&self, _lp: LpId) -> u64 {
            1
        }
        fn init_events(&self, _lp: LpId, _s: &mut u64, _ctx: &mut SendCtx<'_, u32>) {}
        fn handle_event(&self, _lp: LpId, s: &mut u64, p: &u32, ctx: &mut SendCtx<'_, u32>) {
            *s = s
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(*p as u64)
                .wrapping_add(ctx.rng().next_below(1 << 20));
            let d = 0.1 + ctx.rng().next_f64();
            ctx.send(LpId(0), d, p + 1);
        }
        fn state_digest(&self, s: &u64) -> u64 {
            *s
        }
    }

    fn ev(t: f64, seq: u64) -> Event<u32> {
        Event {
            key: EventKey {
                recv_time: VirtualTime::from_f64(t),
                dst: LpId(1),
                uid: EventUid::new(LpId(0), seq),
            },
            send_time: VirtualTime::ZERO,
            payload: seq as u32,
        }
    }

    /// Run the same process/rollback/fossil scenario under dense (k=1) and
    /// sparse (k) saving; all observable outputs must agree.
    fn run_scenario(k: u32) -> (u64, Vec<EventKey>, u64) {
        let m = Mixer;
        let mut lp = Lp::with_snapshot_period(&m, LpId(1), 42, k);
        for i in 0..10 {
            lp.process(&m, ev(i as f64 + 1.0, i));
        }
        // Fossil part of the history (forces snapshot materialization).
        lp.fossil_collect(&m, VirtualTime::from_f64(4.5));
        // Roll back into the un-snapshotted middle.
        let rb = lp.rollback(&m, &ev(7.5, 99).key, false);
        let antis = rb.antis.clone();
        // Replay the undone events.
        for e in rb.reinserted {
            lp.process(&m, e);
        }
        lp.commit_all(&m);
        (m.state_digest(&lp.state), antis, lp.commit_digest)
    }

    #[test]
    fn sparse_saving_is_observationally_identical() {
        let dense = run_scenario(1);
        for k in [2, 3, 5, 16] {
            let sparse = run_scenario(k);
            assert_eq!(dense, sparse, "period {k}");
        }
    }

    #[test]
    fn only_every_kth_entry_carries_a_snapshot() {
        let m = Mixer;
        let mut lp = Lp::with_snapshot_period(&m, LpId(1), 7, 4);
        for i in 0..9 {
            lp.process(&m, ev(i as f64 + 1.0, i));
        }
        let snaps: Vec<bool> = lp.processed.iter().map(|e| e.pre.is_some()).collect();
        assert_eq!(
            snaps,
            vec![true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn fossil_materializes_replay_base() {
        let m = Mixer;
        let mut lp = Lp::with_snapshot_period(&m, LpId(1), 7, 4);
        for i in 0..8 {
            lp.process(&m, ev(i as f64 + 1.0, i));
        }
        // Cut mid-gap: entries 0..6 committed (recv < 6.5), entry 6 had no
        // snapshot and must get one.
        lp.fossil_collect(&m, VirtualTime::from_f64(6.5));
        assert!(lp.processed[0].pre.is_some(), "replay base materialized");
        // A rollback into the remaining tail still works.
        let rb = lp.rollback(&m, &ev(7.5, 99).key, false);
        assert_eq!(rb.undone, 1);
    }

    #[test]
    fn rollback_to_snapshotless_suffix_coast_forwards() {
        let m = Mixer;
        let mut lp = Lp::with_snapshot_period(&m, LpId(1), 7, 8);
        let mut states = Vec::new();
        for i in 0..6 {
            lp.process(&m, ev(i as f64 + 1.0, i));
            states.push(lp.state);
        }
        // Undo events 4 and 5 → state must equal post-event-3 state.
        let rb = lp.rollback(&m, &ev(4.5, 99).key, false);
        assert_eq!(rb.undone, 2);
        assert_eq!(lp.state, states[3]);
        // Re-execution reproduces the same states.
        for e in rb.reinserted {
            lp.process(&m, e);
        }
        assert_eq!(lp.state, states[5]);
    }
}
