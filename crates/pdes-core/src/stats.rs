//! Per-thread Time Warp statistics.

use serde::{Deserialize, Serialize};

/// Counters maintained by one simulation thread.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Events executed (including ones later rolled back).
    pub processed: u64,
    /// Events committed (fossil-collected below GVT or at shutdown).
    pub committed: u64,
    /// Events undone by rollbacks.
    pub rolled_back: u64,
    /// Rollback episodes (a straggler or anti-message may undo many events).
    pub rollbacks: u64,
    /// Straggler messages received.
    pub stragglers: u64,
    /// Anti-messages sent.
    pub antis_sent: u64,
    /// Anti-messages received.
    pub antis_received: u64,
    /// Positive events sent to other LPs.
    pub events_sent: u64,
    /// Pending/orphan annihilations performed.
    pub annihilations: u64,
    /// Externally-sourced events injected through the ingest plane.
    pub ingested: u64,
    /// XOR-fold of committed event-key digests (order independent).
    pub commit_digest: u64,
}

/// One GVT round's worth of progress, snapshotted at the round's End phase.
///
/// Deltas are **since the previous snapshot**, so a stream of
/// `RoundCounters` is a per-round time series: where events were committed,
/// where rollbacks clustered, which threads' LVTs lagged, and how deep the
/// inboxes ran when the round closed. All runtimes emit the same record
/// (`sim-rt` with virtual `ts_ns`, `thread-rt`/`dist-rt` with monotonic wall
/// nanoseconds), so rounds are directly comparable across runtimes and
/// shards.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundCounters {
    /// Round id (thread-rt/sim-rt: membership round; dist-rt: publish round).
    pub round: u64,
    /// Shard that produced the snapshot (0 outside `dist-rt`).
    pub shard: u64,
    /// The GVT published by this round, in [`crate::VirtualTime`] ticks.
    pub gvt_ticks: u64,
    /// When the round closed: nanoseconds on the producer's clock
    /// (virtual for `sim-rt`, monotonic wall for the others).
    pub ts_ns: u64,
    /// Events committed since the previous snapshot.
    pub committed_delta: u64,
    /// Events processed since the previous snapshot.
    pub processed_delta: u64,
    /// Events rolled back since the previous snapshot.
    pub rolled_back_delta: u64,
    /// Threads scheduled-in when the round closed.
    pub active_threads: usize,
    /// Cluster membership size when the round closed: live shards for
    /// `dist-rt` (so elastic join/leave/recovery shows up in the round
    /// stream), participating threads elsewhere. 0 in legacy producers.
    pub members: u64,
    /// Per-thread LVT in ticks at the round's fold (`u64::MAX` = idle/∞).
    pub lvt_ticks: Vec<u64>,
    /// Per-thread inbox depth when the round closed.
    pub queue_depths: Vec<usize>,
    /// Ingest admissions since the previous snapshot.
    pub ingest_admitted_delta: u64,
    /// Ingest rejections (below the admission floor) since the previous
    /// snapshot.
    pub ingest_rejected_delta: u64,
    /// Ingest submissions shed above the high-watermark since the previous
    /// snapshot.
    pub ingest_shed_delta: u64,
    /// Ingest `Busy` backpressure verdicts since the previous snapshot.
    pub ingest_busy_delta: u64,
}

impl ThreadStats {
    /// Merge another thread's counters into this one (for totals).
    pub fn merge(&mut self, other: &ThreadStats) {
        self.processed += other.processed;
        self.committed += other.committed;
        self.rolled_back += other.rolled_back;
        self.rollbacks += other.rollbacks;
        self.stragglers += other.stragglers;
        self.antis_sent += other.antis_sent;
        self.antis_received += other.antis_received;
        self.events_sent += other.events_sent;
        self.annihilations += other.annihilations;
        self.ingested += other.ingested;
        self.commit_digest ^= other.commit_digest;
    }

    /// Committed / processed — the efficiency that, divided by wall time,
    /// yields the paper's committed event rate.
    pub fn efficiency(&self) -> f64 {
        if self.processed == 0 {
            return 1.0;
        }
        self.committed as f64 / self.processed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_xors() {
        let mut a = ThreadStats {
            processed: 10,
            committed: 8,
            rolled_back: 2,
            rollbacks: 1,
            stragglers: 1,
            antis_sent: 2,
            antis_received: 0,
            events_sent: 9,
            annihilations: 0,
            ingested: 0,
            commit_digest: 0b1010,
        };
        let b = ThreadStats {
            processed: 5,
            committed: 5,
            commit_digest: 0b0110,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.processed, 15);
        assert_eq!(a.committed, 13);
        assert_eq!(a.commit_digest, 0b1100);
    }

    #[test]
    fn efficiency_bounds() {
        let s = ThreadStats::default();
        assert_eq!(s.efficiency(), 1.0);
        let s = ThreadStats {
            processed: 10,
            committed: 5,
            ..Default::default()
        };
        assert_eq!(s.efficiency(), 0.5);
    }
}
