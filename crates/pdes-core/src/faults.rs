//! Deterministic fault injection and stall diagnostics.
//!
//! A [`FaultPlan`] describes a set of adversarial behaviours to superimpose
//! on a runtime's message plane and scheduling primitives:
//!
//! * **delay** — straggler delivery: messages are held back (kept
//!   queue-resident) for extra drain cycles before the engine sees them;
//! * **reorder** — drained batches are permuted before delivery, so events
//!   reach the engine out of timestamp order;
//! * **straggler** — the *minimum*-timestamp message of a drain is held back
//!   while later ones deliver, manufacturing the low-timestamp stragglers
//!   that trigger rollback storms;
//! * **wakeup** — scheduling wake-ups are lost (an activation's `sem_post`
//!   is skipped) or spuriously duplicated (a parked thread is posted without
//!   being activated);
//! * **backpressure** — input queues behave as bounded: a sender whose
//!   destination queue is over capacity retries with backoff before pushing
//!   (messages are never dropped);
//! * **kills** — scripted worker death ([`FaultKind::WorkerKill`]): a named
//!   thread dies at a given work-cycle count, exercising the checkpoint /
//!   restore / supervision path end to end.
//!
//! The first three perturb only *delivery order and timing*; Time Warp must
//! absorb them and still commit exactly the sequential oracle's trace. Lost
//! wake-ups break liveness by design — they exist to exercise the GVT
//! liveness watchdog, which must convert the resulting hang into a
//! structured [`StallDump`] instead of a frozen process.
//!
//! Every decision is derived from a seeded counter stream (splitmix64 over
//! `(seed, site, sequence-number)`), so a plan replays identically on the
//! deterministic virtual machine and draws from fixed per-site streams on
//! real threads. A default (empty) plan is completely inert: the injector
//! holds no state and every hook reduces to one branch on a `None`.

use crate::event::Msg;
use crate::ids::EventUid;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// `true` when two messages in `batch` share an [`EventUid`] — i.e. the
/// batch carries a causally ordered pair such as an anti-message and its
/// re-sent positive twin (cancel-then-resend travels the same sender→receiver
/// channel, so their relative order is part of the delivery contract even
/// under network chaos). Fault filters must never reorder such a pair:
/// shuffling skips these batches, and deferral holds back the whole
/// same-uid suffix together.
pub fn batch_has_uid_pairs<P>(batch: &[Msg<P>]) -> bool {
    if batch.len() < 2 {
        return false;
    }
    let mut uids: Vec<EventUid> = batch.iter().map(|m| m.key().uid).collect();
    uids.sort_unstable();
    uids.windows(2).any(|w| w[0] == w[1])
}

/// Straggler delivery delay: each drained message is independently held
/// back (re-queued) with probability `prob`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayFault {
    pub prob: f64,
}

/// Adversarial reordering: each drained batch is shuffled with probability
/// `prob` before delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReorderFault {
    pub prob: f64,
}

/// Forced low-timestamp stragglers: with probability `prob` per drain, the
/// minimum-timestamp message is held back while its batch delivers, up to
/// `max_storms` times per run (bounded so runs still terminate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerFault {
    pub prob: f64,
    pub max_storms: u64,
}

/// Lost / spurious thread wake-ups at the scheduling semaphores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WakeupFault {
    /// Probability that an activation's wake-up post is skipped.
    pub lose_prob: f64,
    /// Probability of posting a parked thread that was *not* activated.
    pub spurious_prob: f64,
    /// Upper bound on lost wake-ups per run.
    pub max_lost: u64,
}

/// Bounded-queue backpressure on send.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackpressureFault {
    /// Queue depth above which a sender backs off.
    pub capacity: usize,
    /// Retries (with escalating backoff) before pushing anyway.
    pub max_retries: u32,
}

/// Per-link frame delay: an outgoing frame is held in the sender's pump
/// buffer for `1..=max_pumps` pump cycles before transmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDelayFault {
    pub prob: f64,
    pub max_pumps: u32,
}

/// Per-link frame drop. The reliable layer's retransmission recovers the
/// frame (drop-with-retransmit), so `max_drops` bounds how long an unlucky
/// frame can stay lost and keeps runs live.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDropFault {
    pub prob: f64,
    pub max_drops: u64,
}

/// Per-link frame duplication: the frame is transmitted twice back to back
/// (the receiver's sequence numbers discard the twin).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDupFault {
    pub prob: f64,
    pub max_dups: u64,
}

/// Network chaos for the distributed runtime's links. Applied on the
/// *sender* side of each directed link, below the reliable seq/ack layer, so
/// every fault is invisible to the engines: frames may arrive late, twice,
/// or only after a retransmission, but the receiver delivers each exactly
/// once and in order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultPlan {
    pub seed: u64,
    pub delay: Option<LinkDelayFault>,
    pub drop: Option<LinkDropFault>,
    pub duplicate: Option<LinkDupFault>,
}

impl LinkFaultPlan {
    pub fn is_active(&self) -> bool {
        self.delay.is_some() || self.drop.is_some() || self.duplicate.is_some()
    }

    /// A moderate all-three plan — what the dist chaos tests enable.
    pub fn chaos(seed: u64) -> Self {
        LinkFaultPlan {
            seed,
            delay: Some(LinkDelayFault {
                prob: 0.10,
                max_pumps: 4,
            }),
            drop: Some(LinkDropFault {
                prob: 0.05,
                max_drops: 512,
            }),
            duplicate: Some(LinkDupFault {
                prob: 0.05,
                max_dups: 512,
            }),
        }
    }
}

/// What to do with one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkAction {
    Deliver,
    /// Skip the transmit; the reliable layer retransmits later.
    Drop,
    /// Transmit twice.
    Duplicate,
    /// Hold for this many pump cycles, then transmit.
    Delay(u32),
}

/// Per-directed-link fault decider. Owned by one link (one sender thread),
/// so unlike [`FaultInjector`] it needs no atomics; the decision stream is
/// seeded from `(plan.seed, src, dst)` so every link draws independently and
/// a plan replays identically across runs.
#[derive(Debug, Clone)]
pub struct LinkFaults {
    plan: LinkFaultPlan,
    base: u64,
    n: u64,
    drops_left: u64,
    dups_left: u64,
    /// Frames dropped / duplicated / delayed so far (observability).
    pub dropped: u64,
    pub duplicated: u64,
    pub delayed: u64,
}

impl LinkFaults {
    /// An inert decider: every frame is `Deliver`.
    pub fn disabled() -> Self {
        Self::new(&LinkFaultPlan::default(), 0, 0)
    }

    pub fn new(plan: &LinkFaultPlan, src: usize, dst: usize) -> Self {
        LinkFaults {
            plan: *plan,
            base: splitmix64(
                plan.seed
                    .wrapping_add((src as u64 + 1).wrapping_mul(0x9E6D_41D9_4B0E_3C8D))
                    .wrapping_add((dst as u64 + 1).wrapping_mul(0x2545_F491_4F6C_DD1D)),
            ),
            n: 0,
            drops_left: plan.drop.map_or(0, |d| d.max_drops),
            dups_left: plan.duplicate.map_or(0, |d| d.max_dups),
            dropped: 0,
            duplicated: 0,
            delayed: 0,
        }
    }

    fn roll(&mut self) -> u64 {
        let r = splitmix64(self.base.wrapping_add(self.n));
        self.n += 1;
        r
    }

    /// Decide the fate of the next outgoing frame.
    pub fn decide(&mut self) -> LinkAction {
        if !self.plan.is_active() {
            return LinkAction::Deliver;
        }
        if let Some(d) = self.plan.drop {
            let hit = unit_f64(self.roll()) < d.prob;
            if hit && self.drops_left > 0 {
                self.drops_left -= 1;
                self.dropped += 1;
                return LinkAction::Drop;
            }
        }
        if let Some(d) = self.plan.duplicate {
            let hit = unit_f64(self.roll()) < d.prob;
            if hit && self.dups_left > 0 {
                self.dups_left -= 1;
                self.duplicated += 1;
                return LinkAction::Duplicate;
            }
        }
        if let Some(d) = self.plan.delay {
            if unit_f64(self.roll()) < d.prob && d.max_pumps > 0 {
                let pumps = 1 + (self.roll() % u64::from(d.max_pumps)) as u32;
                self.delayed += 1;
                return LinkAction::Delay(pumps);
            }
        }
        LinkAction::Deliver
    }
}

/// A scripted catastrophic fault. Unlike the probabilistic faults these are
/// *scheduled*: each entry fires exactly once per injector lifetime, which
/// keeps kill-and-recover runs fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Worker `thread` dies once it has executed `at_cycle` work cycles
    /// (on real threads: a panic in the worker loop; on the virtual machine:
    /// a simulated task death). Fires at most once.
    WorkerKill { thread: usize, at_cycle: u64 },
    /// The link `from → to` silently drops every frame (data, acks, and
    /// retransmissions alike) until `from` has run `for_rounds` GVT rounds'
    /// worth of cycles, then heals. A transient partition: the reliable
    /// link's retransmission recovers everything once it lifts, so a
    /// partition shorter than the failure detector's lease causes no
    /// recovery. Interpreted by `dist-rt`; the shared-memory runtimes
    /// ignore it.
    LinkPartition {
        from: usize,
        to: usize,
        for_rounds: u64,
    },
}

/// A complete, serde-configurable chaos plan. The default plan is empty and
/// injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub seed: u64,
    pub delay: Option<DelayFault>,
    pub reorder: Option<ReorderFault>,
    pub straggler: Option<StragglerFault>,
    pub wakeup: Option<WakeupFault>,
    pub backpressure: Option<BackpressureFault>,
    /// Scripted catastrophic faults (worker kills). `None` ≡ empty.
    pub kills: Option<Vec<FaultKind>>,
    /// Network chaos for the distributed runtime's links (ignored by the
    /// shared-memory runtimes). `None` ≡ no link faults.
    pub link: Option<LinkFaultPlan>,
}

impl FaultPlan {
    /// Does this plan inject anything at all?
    pub fn is_active(&self) -> bool {
        self.delay.is_some()
            || self.reorder.is_some()
            || self.straggler.is_some()
            || self.wakeup.is_some()
            || self.backpressure.is_some()
            || self.kills.as_ref().is_some_and(|k| !k.is_empty())
            || self.link.is_some_and(|l| l.is_active())
    }

    /// A moderate all-safe plan (delay + reorder + straggler storms, no
    /// liveness faults) — what `--chaos-seed` enables.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay: Some(DelayFault { prob: 0.05 }),
            reorder: Some(ReorderFault { prob: 0.25 }),
            straggler: Some(StragglerFault {
                prob: 0.02,
                max_storms: 64,
            }),
            wakeup: None,
            backpressure: Some(BackpressureFault {
                capacity: 4096,
                max_retries: 8,
            }),
            kills: None,
            link: None,
        }
    }

    /// Add a scripted worker kill to the plan.
    pub fn with_kill(mut self, thread: usize, at_cycle: u64) -> Self {
        self.kills
            .get_or_insert_with(Vec::new)
            .push(FaultKind::WorkerKill { thread, at_cycle });
        self
    }

    /// Add a scripted transient link partition to the plan.
    pub fn with_link_partition(mut self, from: usize, to: usize, for_rounds: u64) -> Self {
        self.kills
            .get_or_insert_with(Vec::new)
            .push(FaultKind::LinkPartition {
                from,
                to,
                for_rounds,
            });
        self
    }

    /// All scripted link partitions as `(from, to, for_rounds)` triples.
    pub fn link_partitions(&self) -> Vec<(usize, usize, u64)> {
        self.kills
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .filter_map(|k| match *k {
                FaultKind::LinkPartition {
                    from,
                    to,
                    for_rounds,
                } => Some((from, to, for_rounds)),
                _ => None,
            })
            .collect()
    }
}

/// Decision sites; each draws from its own counter stream so adding a hook
/// never shifts another site's sequence.
#[derive(Debug, Clone, Copy)]
#[repr(usize)]
enum Site {
    Delay = 0,
    Reorder = 1,
    Straggler = 2,
    Lose = 3,
    Spurious = 4,
}
const NUM_SITES: usize = 5;

/// Counts of injections actually performed (observability for tests and the
/// CLI's chaos report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    pub delayed: u64,
    pub reordered: u64,
    pub stragglers: u64,
    pub lost_wakeups: u64,
    pub spurious_wakeups: u64,
    pub backpressure_retries: u64,
    /// Scripted worker kills fired.
    pub kills: u64,
}

/// Resumable position of an injector's decision state: per-site stream
/// positions, remaining budgets, and which scripted kills already fired.
/// Stored inside a [`crate::checkpoint::Checkpoint`] so a restored run
/// replays the *remaining* chaos rather than starting the plan over (which
/// would, e.g., re-fire a kill forever).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCursor {
    /// Per-site decision-stream positions, indexed by `Site`.
    pub seq: Vec<u64>,
    pub storms_left: u64,
    pub lost_left: u64,
    /// `fired` flag per entry of the plan's `kills` list.
    pub kills_fired: Vec<bool>,
}

struct FaultState {
    plan: FaultPlan,
    seq: [AtomicU64; NUM_SITES],
    storms_left: AtomicU64,
    lost_left: AtomicU64,
    kills: Vec<FaultKind>,
    kills_fired: Vec<AtomicU64>,
    counts: [AtomicU64; 7],
}

/// The runtime hook object built from a [`FaultPlan`]. Shareable across
/// threads; all decision state is atomic. When built from an empty plan it
/// carries no state and every hook is a single `None` branch.
pub struct FaultInjector {
    state: Option<Box<FaultState>>,
}

/// splitmix64: the decision hash (also used to seed the engine's xoshiro).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn unit_f64(r: u64) -> f64 {
    (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultInjector {
    /// An inert injector (every hook is a no-op).
    pub fn disabled() -> Self {
        FaultInjector { state: None }
    }

    /// Build the injector for `plan`; an empty plan yields a disabled one.
    pub fn new(plan: FaultPlan) -> Self {
        if !plan.is_active() {
            return Self::disabled();
        }
        let storms = plan.straggler.map_or(0, |s| s.max_storms);
        let lost = plan.wakeup.map_or(0, |w| w.max_lost);
        let kills = plan.kills.clone().unwrap_or_default();
        let kills_fired = kills.iter().map(|_| AtomicU64::new(0)).collect();
        FaultInjector {
            state: Some(Box::new(FaultState {
                plan,
                seq: Default::default(),
                storms_left: AtomicU64::new(storms),
                lost_left: AtomicU64::new(lost),
                kills,
                kills_fired,
                counts: Default::default(),
            })),
        }
    }

    /// Build the injector for `plan` resumed at `cursor` (from a
    /// checkpoint): decision streams continue where they left off, budgets
    /// keep their remaining allowance, and already-fired kills stay fired.
    pub fn with_cursor(plan: FaultPlan, cursor: &FaultCursor) -> Self {
        let inj = Self::new(plan);
        if let Some(st) = &inj.state {
            for (i, s) in st.seq.iter().enumerate() {
                s.store(cursor.seq.get(i).copied().unwrap_or(0), Ordering::Relaxed);
            }
            st.storms_left.store(cursor.storms_left, Ordering::Relaxed);
            st.lost_left.store(cursor.lost_left, Ordering::Relaxed);
            for (i, fired) in st.kills_fired.iter().enumerate() {
                if cursor.kills_fired.get(i).copied().unwrap_or(false) {
                    fired.store(1, Ordering::Relaxed);
                }
            }
        }
        inj
    }

    /// Snapshot the injector's resumable position (for a checkpoint).
    /// `None` when the injector is disabled.
    pub fn cursor(&self) -> Option<FaultCursor> {
        let st = self.state.as_ref()?;
        Some(FaultCursor {
            seq: st.seq.iter().map(|s| s.load(Ordering::Relaxed)).collect(),
            storms_left: st.storms_left.load(Ordering::Relaxed),
            lost_left: st.lost_left.load(Ordering::Relaxed),
            kills_fired: st
                .kills_fired
                .iter()
                .map(|f| f.load(Ordering::Relaxed) != 0)
                .collect(),
        })
    }

    /// Mark the first unconsumed kill targeting `thread` as fired, so a
    /// supervised restart does not re-trigger the same scripted death.
    /// Returns whether an entry was consumed.
    pub fn consume_kill(&self, thread: usize) -> bool {
        let Some(st) = &self.state else { return false };
        for (k, fired) in st.kills.iter().zip(&st.kills_fired) {
            let FaultKind::WorkerKill { thread: t, .. } = *k else {
                continue;
            };
            if t == thread && fired.swap(1, Ordering::Relaxed) == 0 {
                return true;
            }
        }
        false
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Next value of `site`'s decision stream.
    fn roll(st: &FaultState, site: Site) -> u64 {
        let n = st.seq[site as usize].fetch_add(1, Ordering::Relaxed);
        splitmix64(
            st.plan
                .seed
                .wrapping_add((site as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F))
                .wrapping_add(n),
        )
    }

    fn bump(st: &FaultState, idx: usize, by: u64) {
        st.counts[idx].fetch_add(by, Ordering::Relaxed);
    }

    /// Should this drained message be held back for a later drain?
    #[inline]
    pub fn defer_delivery(&self) -> bool {
        let Some(st) = &self.state else { return false };
        let Some(d) = st.plan.delay else { return false };
        let hit = unit_f64(Self::roll(st, Site::Delay)) < d.prob;
        if hit {
            Self::bump(st, 0, 1);
        }
        hit
    }

    /// Should the minimum-timestamp message of this drain be held back
    /// (straggler storm)? Bounded by the plan's `max_storms`.
    #[inline]
    pub fn straggler_hold(&self) -> bool {
        let Some(st) = &self.state else { return false };
        let Some(s) = st.plan.straggler else {
            return false;
        };
        if unit_f64(Self::roll(st, Site::Straggler)) >= s.prob {
            return false;
        }
        // Claim one unit of the storm budget.
        let mut left = st.storms_left.load(Ordering::Relaxed);
        while left > 0 {
            match st.storms_left.compare_exchange_weak(
                left,
                left - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    Self::bump(st, 2, 1);
                    return true;
                }
                Err(cur) => left = cur,
            }
        }
        false
    }

    /// Adversarially permute a drained batch (Fisher–Yates from the reorder
    /// stream) with the plan's probability. Returns whether it shuffled.
    #[inline]
    pub fn shuffle_batch<T>(&self, batch: &mut [T]) -> bool {
        let Some(st) = &self.state else { return false };
        let Some(r) = st.plan.reorder else {
            return false;
        };
        if batch.len() < 2 || unit_f64(Self::roll(st, Site::Reorder)) >= r.prob {
            return false;
        }
        for i in (1..batch.len()).rev() {
            let j = (Self::roll(st, Site::Reorder) % (i as u64 + 1)) as usize;
            batch.swap(i, j);
        }
        Self::bump(st, 1, 1);
        true
    }

    /// Should this activation wake-up post be dropped? Bounded by
    /// `max_lost`.
    #[inline]
    pub fn lose_wakeup(&self) -> bool {
        let Some(st) = &self.state else { return false };
        let Some(w) = st.plan.wakeup else {
            return false;
        };
        if unit_f64(Self::roll(st, Site::Lose)) >= w.lose_prob {
            return false;
        }
        let mut left = st.lost_left.load(Ordering::Relaxed);
        while left > 0 {
            match st.lost_left.compare_exchange_weak(
                left,
                left - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    Self::bump(st, 3, 1);
                    return true;
                }
                Err(cur) => left = cur,
            }
        }
        false
    }

    /// Should a parked-but-not-activated thread receive a spurious post?
    #[inline]
    pub fn spurious_wakeup(&self) -> bool {
        let Some(st) = &self.state else { return false };
        let Some(w) = st.plan.wakeup else {
            return false;
        };
        let hit = unit_f64(Self::roll(st, Site::Spurious)) < w.spurious_prob;
        if hit {
            Self::bump(st, 4, 1);
        }
        hit
    }

    /// Should worker `thread` die now, having completed `cycle` work
    /// cycles? Each scripted kill fires at most once per injector lifetime
    /// (restores carry the fired flags forward via [`FaultCursor`]).
    #[inline]
    pub fn should_kill(&self, thread: usize, cycle: u64) -> bool {
        let Some(st) = &self.state else { return false };
        if st.kills.is_empty() {
            return false;
        }
        for (k, fired) in st.kills.iter().zip(&st.kills_fired) {
            let FaultKind::WorkerKill {
                thread: t,
                at_cycle,
            } = *k
            else {
                continue;
            };
            if t == thread && cycle >= at_cycle && fired.swap(1, Ordering::Relaxed) == 0 {
                Self::bump(st, 6, 1);
                return true;
            }
        }
        false
    }

    /// The bounded-queue parameters, if backpressure is configured.
    #[inline]
    pub fn backpressure(&self) -> Option<BackpressureFault> {
        self.state.as_ref()?.plan.backpressure
    }

    /// Record `n` backpressure retry waits (the send loop performs the
    /// actual backoff; the injector only keeps the tally).
    #[inline]
    pub fn note_backpressure_retries(&self, n: u64) {
        if let Some(st) = &self.state {
            Self::bump(st, 5, n);
        }
    }

    /// Injections performed so far.
    pub fn counts(&self) -> FaultCounts {
        match &self.state {
            None => FaultCounts::default(),
            Some(st) => FaultCounts {
                delayed: st.counts[0].load(Ordering::Relaxed),
                reordered: st.counts[1].load(Ordering::Relaxed),
                stragglers: st.counts[2].load(Ordering::Relaxed),
                lost_wakeups: st.counts[3].load(Ordering::Relaxed),
                spurious_wakeups: st.counts[4].load(Ordering::Relaxed),
                backpressure_retries: st.counts[5].load(Ordering::Relaxed),
                kills: st.counts[6].load(Ordering::Relaxed),
            },
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.state {
            None => f.write_str("FaultInjector(disabled)"),
            Some(st) => f
                .debug_struct("FaultInjector")
                .field("plan", &st.plan)
                .field("counts", &self.counts())
                .finish(),
        }
    }
}

// ---------------------------------------------------------------------------
// Stall diagnostics
// ---------------------------------------------------------------------------

/// GVT round state at the moment of a stall.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RoundDump {
    pub open: bool,
    pub id: u64,
    pub participants: usize,
    pub a_done: usize,
    pub b_done: usize,
    pub end_done: usize,
    pub aware_claimed: bool,
}

/// Per-thread state at the moment of a stall.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadDump {
    pub thread: usize,
    /// Last control-loop phase the thread reported.
    pub phase: String,
    /// Round id the thread last folded into (`None` before its first round).
    pub joined_round: Option<u64>,
    pub queue_len: usize,
    pub active: bool,
    pub subscribed: bool,
    /// Wake tokens currently held by the thread's scheduling semaphore.
    pub sem_tokens: u32,
    /// Residual send-window minimum (rendered; `"inf"` when clear).
    pub window_min: String,
    /// Queue minimum (rendered; `"inf"` when empty).
    pub queue_min: String,
}

/// The structured diagnostic a liveness watchdog emits instead of hanging:
/// who was where, what the GVT round looked like, and which queues still
/// held work.
#[derive(Debug, Clone, Serialize)]
pub struct StallDump {
    /// Human-readable trigger, e.g. `"no GVT progress for 2.0s"`.
    pub reason: String,
    pub system: String,
    pub gvt: String,
    pub gvt_rounds: u64,
    pub num_active: usize,
    pub terminated: bool,
    pub round: RoundDump,
    pub threads: Vec<ThreadDump>,
    /// Fault injections performed up to the stall.
    pub fault_counts: FaultCounts,
    /// The last GVT round the telemetry subsystem saw complete (per-round
    /// deltas + per-thread LVTs), when tracing was enabled. A stalled run
    /// thus reports *where progress stopped*, not just that it stopped.
    pub last_round: Option<crate::stats::RoundCounters>,
}

impl std::fmt::Display for StallDump {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== liveness watchdog: {} ===", self.reason)?;
        writeln!(
            f,
            "system={} gvt={} rounds={} active={} terminated={}",
            self.system, self.gvt, self.gvt_rounds, self.num_active, self.terminated
        )?;
        writeln!(
            f,
            "round: open={} id={} participants={} a={} b={} end={} aware={}",
            self.round.open,
            self.round.id,
            self.round.participants,
            self.round.a_done,
            self.round.b_done,
            self.round.end_done,
            self.round.aware_claimed
        )?;
        for t in &self.threads {
            writeln!(
                f,
                "  t{}: phase={} joined={} qlen={} active={} subscribed={} sem={} window={} qmin={}",
                t.thread,
                t.phase,
                t.joined_round
                    .map_or_else(|| "-".into(), |r| r.to_string()),
                t.queue_len,
                t.active,
                t.subscribed,
                t.sem_tokens,
                t.window_min,
                t.queue_min
            )?;
        }
        if let Some(r) = &self.last_round {
            let lvts: Vec<String> = r
                .lvt_ticks
                .iter()
                .map(|&t| {
                    if t == u64::MAX {
                        "inf".into()
                    } else {
                        t.to_string()
                    }
                })
                .collect();
            writeln!(
                f,
                "last completed round: id={} gvt_ticks={} committed+={} processed+={} \
                 rolled_back+={} active={} lvt=[{}]",
                r.round,
                r.gvt_ticks,
                r.committed_delta,
                r.processed_delta,
                r.rolled_back_delta,
                r.active_threads,
                lvts.join(",")
            )?;
        }
        write!(
            f,
            "faults: delayed={} reordered={} stragglers={} lost={} spurious={} bp_retries={} kills={}",
            self.fault_counts.delayed,
            self.fault_counts.reordered,
            self.fault_counts.stragglers,
            self.fault_counts.lost_wakeups,
            self.fault_counts.spurious_wakeups,
            self.fault_counts.backpressure_retries,
            self.fault_counts.kills
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay: Some(DelayFault { prob: 0.5 }),
            reorder: Some(ReorderFault { prob: 0.5 }),
            straggler: Some(StragglerFault {
                prob: 0.5,
                max_storms: 10,
            }),
            wakeup: Some(WakeupFault {
                lose_prob: 0.5,
                spurious_prob: 0.5,
                max_lost: 7,
            }),
            backpressure: Some(BackpressureFault {
                capacity: 8,
                max_retries: 3,
            }),
            kills: Some(vec![
                FaultKind::WorkerKill {
                    thread: 1,
                    at_cycle: 50,
                },
                FaultKind::LinkPartition {
                    from: 0,
                    to: 1,
                    for_rounds: 4,
                },
            ]),
            link: Some(LinkFaultPlan::chaos(seed)),
        }
    }

    #[test]
    fn link_partitions_are_extracted_and_ignored_by_kill_paths() {
        let plan = FaultPlan::default()
            .with_link_partition(2, 0, 3)
            .with_kill(1, 10)
            .with_link_partition(0, 2, 5);
        assert_eq!(plan.link_partitions(), vec![(2, 0, 3), (0, 2, 5)]);
        let inj = FaultInjector::new(plan);
        // Partitions never satisfy worker-kill queries, even for matching ids.
        assert!(!inj.should_kill(2, 1_000));
        assert!(!inj.should_kill(0, 1_000));
        assert!(inj.should_kill(1, 10));
        assert!(!inj.consume_kill(2));
    }

    #[test]
    fn disabled_injector_is_inert() {
        let inj = FaultInjector::new(FaultPlan::default());
        assert!(!inj.is_enabled());
        assert!(!inj.defer_delivery());
        assert!(!inj.straggler_hold());
        assert!(!inj.lose_wakeup());
        assert!(!inj.spurious_wakeup());
        let mut v = vec![3, 1, 2];
        assert!(!inj.shuffle_batch(&mut v));
        assert_eq!(v, vec![3, 1, 2]);
        assert!(inj.backpressure().is_none());
        assert_eq!(inj.counts(), FaultCounts::default());
    }

    #[test]
    fn decision_streams_are_deterministic() {
        let a = FaultInjector::new(full_plan(42));
        let b = FaultInjector::new(full_plan(42));
        for _ in 0..200 {
            assert_eq!(a.defer_delivery(), b.defer_delivery());
            assert_eq!(a.lose_wakeup(), b.lose_wakeup());
            assert_eq!(a.spurious_wakeup(), b.spurious_wakeup());
            let mut va: Vec<u32> = (0..8).collect();
            let mut vb: Vec<u32> = (0..8).collect();
            a.shuffle_batch(&mut va);
            b.shuffle_batch(&mut vb);
            assert_eq!(va, vb);
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(full_plan(1));
        let b = FaultInjector::new(full_plan(2));
        let da: Vec<bool> = (0..64).map(|_| a.defer_delivery()).collect();
        let db: Vec<bool> = (0..64).map(|_| b.defer_delivery()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn budgets_are_bounded() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 3,
            straggler: Some(StragglerFault {
                prob: 1.0,
                max_storms: 5,
            }),
            wakeup: Some(WakeupFault {
                lose_prob: 1.0,
                spurious_prob: 0.0,
                max_lost: 4,
            }),
            ..FaultPlan::default()
        });
        let storms = (0..100).filter(|_| inj.straggler_hold()).count();
        let lost = (0..100).filter(|_| inj.lose_wakeup()).count();
        assert_eq!(storms, 5);
        assert_eq!(lost, 4);
        let c = inj.counts();
        assert_eq!(c.stragglers, 5);
        assert_eq!(c.lost_wakeups, 4);
    }

    #[test]
    fn probabilities_roughly_hold() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 99,
            delay: Some(DelayFault { prob: 0.3 }),
            ..FaultPlan::default()
        });
        let hits = (0..10_000).filter(|_| inj.defer_delivery()).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn plan_serde_round_trips() {
        let p = full_plan(0xC0FFEE);
        let j = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&j).unwrap();
        assert_eq!(back, p);
        // Missing optional sections deserialize to None.
        let sparse: FaultPlan =
            serde_json::from_str(r#"{"seed": 7, "delay": {"prob": 0.1}}"#).unwrap();
        assert_eq!(sparse.seed, 7);
        assert!(sparse.delay.is_some());
        assert!(sparse.wakeup.is_none());
        assert!(sparse.is_active());
    }

    #[test]
    fn scripted_kill_fires_once_at_cycle() {
        let plan = FaultPlan::default().with_kill(2, 100);
        assert!(plan.is_active());
        let inj = FaultInjector::new(plan);
        assert!(!inj.should_kill(2, 99), "not yet due");
        assert!(!inj.should_kill(1, 500), "wrong thread");
        assert!(inj.should_kill(2, 100), "due now");
        assert!(!inj.should_kill(2, 101), "fires at most once");
        assert_eq!(inj.counts().kills, 1);
    }

    #[test]
    fn cursor_resumes_streams_budgets_and_kills() {
        let plan = full_plan(0xFEED);
        let a = FaultInjector::new(plan.clone());
        // Burn some decisions and budget, and fire the kill.
        for _ in 0..37 {
            a.defer_delivery();
            a.straggler_hold();
            a.lose_wakeup();
        }
        assert!(a.should_kill(1, 50));
        let cur = a.cursor().expect("enabled injector has a cursor");

        // A resumed twin must continue exactly where `a` is...
        let b = FaultInjector::with_cursor(plan.clone(), &cur);
        for _ in 0..64 {
            assert_eq!(a.defer_delivery(), b.defer_delivery());
            assert_eq!(a.straggler_hold(), b.straggler_hold());
            assert_eq!(a.lose_wakeup(), b.lose_wakeup());
        }
        // ...and the already-fired kill stays fired.
        assert!(!b.should_kill(1, 500));

        // A fresh injector from the same plan, by contrast, re-fires it.
        let fresh = FaultInjector::new(plan);
        assert!(fresh.should_kill(1, 500));
    }

    #[test]
    fn consume_kill_marks_first_matching_entry() {
        let plan = FaultPlan::default().with_kill(0, 10).with_kill(0, 10);
        let inj = FaultInjector::new(plan);
        assert!(inj.consume_kill(0), "first entry consumed");
        assert!(inj.should_kill(0, 10), "second entry still live");
        assert!(!inj.should_kill(0, 10), "both spent");
        assert!(!inj.consume_kill(0), "nothing left to consume");
        assert!(!inj.consume_kill(3), "no such thread in the plan");
    }

    #[test]
    fn cursor_serde_round_trips() {
        let plan = full_plan(11);
        let inj = FaultInjector::new(plan);
        for _ in 0..13 {
            inj.defer_delivery();
        }
        inj.should_kill(1, 64);
        let cur = inj.cursor().unwrap();
        let j = serde_json::to_string(&cur).unwrap();
        let back: FaultCursor = serde_json::from_str(&j).unwrap();
        assert_eq!(back, cur);
        // One flag per scripted entry; only the fired WorkerKill is set
        // (the LinkPartition entry never consumes a kill slot).
        assert_eq!(back.kills_fired, vec![true, false]);
    }

    #[test]
    fn link_faults_are_deterministic_per_link() {
        let plan = LinkFaultPlan::chaos(7);
        let mut a = LinkFaults::new(&plan, 0, 1);
        let mut b = LinkFaults::new(&plan, 0, 1);
        let da: Vec<LinkAction> = (0..256).map(|_| a.decide()).collect();
        let db: Vec<LinkAction> = (0..256).map(|_| b.decide()).collect();
        assert_eq!(da, db);
        // The reverse direction draws a different stream.
        let mut c = LinkFaults::new(&plan, 1, 0);
        let dc: Vec<LinkAction> = (0..256).map(|_| c.decide()).collect();
        assert_ne!(da, dc);
        // Something actually fired.
        assert!(da.iter().any(|x| *x != LinkAction::Deliver));
    }

    #[test]
    fn link_fault_budgets_bound_drops_and_dups() {
        let plan = LinkFaultPlan {
            seed: 5,
            delay: None,
            drop: Some(LinkDropFault {
                prob: 1.0,
                max_drops: 3,
            }),
            duplicate: Some(LinkDupFault {
                prob: 1.0,
                max_dups: 2,
            }),
        };
        let mut lf = LinkFaults::new(&plan, 0, 1);
        let acts: Vec<LinkAction> = (0..100).map(|_| lf.decide()).collect();
        assert_eq!(acts.iter().filter(|a| **a == LinkAction::Drop).count(), 3);
        assert_eq!(
            acts.iter().filter(|a| **a == LinkAction::Duplicate).count(),
            2
        );
        assert_eq!(lf.dropped, 3);
        assert_eq!(lf.duplicated, 2);
    }

    #[test]
    fn link_delay_is_bounded_by_max_pumps() {
        let plan = LinkFaultPlan {
            seed: 9,
            delay: Some(LinkDelayFault {
                prob: 1.0,
                max_pumps: 4,
            }),
            drop: None,
            duplicate: None,
        };
        let mut lf = LinkFaults::new(&plan, 2, 3);
        for _ in 0..100 {
            match lf.decide() {
                LinkAction::Delay(p) => assert!((1..=4).contains(&p)),
                other => panic!("expected Delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn disabled_link_faults_always_deliver() {
        let mut lf = LinkFaults::disabled();
        assert!((0..64).all(|_| lf.decide() == LinkAction::Deliver));
    }

    #[test]
    fn fault_plan_link_section_round_trips_and_defaults_to_none() {
        let p = full_plan(3);
        let j = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&j).unwrap();
        assert_eq!(back, p);
        // Plans written before the link section existed still parse.
        let old: FaultPlan = serde_json::from_str(r#"{"seed": 7}"#).unwrap();
        assert!(old.link.is_none());
        let link_only: FaultPlan = serde_json::from_str(
            r#"{"seed": 1, "link": {"seed": 2, "drop": {"prob": 0.5, "max_drops": 9}}}"#,
        )
        .unwrap();
        assert!(link_only.is_active());
        assert_eq!(link_only.link.unwrap().drop.unwrap().max_drops, 9);
    }

    #[test]
    fn stall_dump_renders_every_section() {
        let dump = StallDump {
            reason: "no GVT progress for 2.0s".into(),
            system: "GG-PDES-Async".into(),
            gvt: "1.25".into(),
            gvt_rounds: 17,
            num_active: 3,
            terminated: false,
            round: RoundDump {
                open: true,
                id: 18,
                participants: 4,
                a_done: 3,
                b_done: 0,
                end_done: 0,
                aware_claimed: false,
            },
            threads: vec![ThreadDump {
                thread: 2,
                phase: "parked".into(),
                joined_round: Some(17),
                queue_len: 5,
                active: true,
                subscribed: true,
                sem_tokens: 0,
                window_min: "inf".into(),
                queue_min: "1.5".into(),
            }],
            fault_counts: FaultCounts {
                lost_wakeups: 1,
                ..FaultCounts::default()
            },
            last_round: Some(crate::stats::RoundCounters {
                round: 17,
                gvt_ticks: 1250,
                committed_delta: 40,
                active_threads: 3,
                lvt_ticks: vec![1300, u64::MAX],
                ..Default::default()
            }),
        };
        let s = dump.to_string();
        assert!(s.contains("liveness watchdog"));
        assert!(s.contains("t2: phase=parked joined=17 qlen=5"));
        assert!(s.contains("lost=1"));
        assert!(s.contains("participants=4 a=3"));
        assert!(s.contains("last completed round: id=17 gvt_ticks=1250"));
        assert!(s.contains("lvt=[1300,inf]"));
    }
}
