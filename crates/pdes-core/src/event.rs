//! Time-stamped event messages and their total order.

use crate::ids::{EventUid, LpId};
use crate::time::VirtualTime;
use serde::{Deserialize, Serialize};

/// Total order key for events.
///
/// Time Warp requires a *total* order over events so that every execution
/// (sequential oracle, virtual-machine runtime, real-thread runtime) commits
/// the same trace. Ties on receive time are broken by destination LP, then by
/// the globally unique [`EventUid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventKey {
    /// Receive (execution) timestamp.
    pub recv_time: VirtualTime,
    /// Destination LP.
    pub dst: LpId,
    /// Unique identity of the event.
    pub uid: EventUid,
}

/// A positive event message.
///
/// Anti-messages are not represented as a variant here: they carry no payload
/// and only need the [`EventKey`] to find their positive twin, so the
/// runtimes ship them as [`Msg::Anti`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event<P> {
    /// Total-order key (receive time, destination, uid).
    pub key: EventKey,
    /// Timestamp at which the sender scheduled this event (≤ `recv_time`);
    /// used for GVT transient-message accounting and sanity checks.
    pub send_time: VirtualTime,
    /// Model-specific payload.
    pub payload: P,
}

impl<P> Event<P> {
    #[inline]
    pub fn recv_time(&self) -> VirtualTime {
        self.key.recv_time
    }
    #[inline]
    pub fn dst(&self) -> LpId {
        self.key.dst
    }
    #[inline]
    pub fn uid(&self) -> EventUid {
        self.key.uid
    }
}

/// A message travelling between simulation threads: either a positive event
/// or an anti-message cancelling one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Msg<P> {
    /// A positive event to be inserted into the destination's pending set.
    Event(Event<P>),
    /// An anti-message: annihilates the pending event with the same key, or
    /// rolls the destination LP back if the event was already processed.
    Anti(EventKey),
}

impl<P> Msg<P> {
    /// Key of the (positive or anti) message.
    #[inline]
    pub fn key(&self) -> EventKey {
        match self {
            Msg::Event(e) => e.key,
            Msg::Anti(k) => *k,
        }
    }

    /// Receive timestamp of the message.
    #[inline]
    pub fn recv_time(&self) -> VirtualTime {
        self.key().recv_time
    }

    /// Destination LP.
    #[inline]
    pub fn dst(&self) -> LpId {
        self.key().dst
    }

    /// `true` for anti-messages.
    #[inline]
    pub fn is_anti(&self) -> bool {
        matches!(self, Msg::Anti(_))
    }
}

/// A free-list of reusable `Vec<T>` buffers — the event-storage pool of the
/// zero-allocation hot path.
///
/// Events themselves are plain values (`Event<P>` moves between the pending
/// set, the processed list, and the wire without boxing), so what the hot
/// path allocates per event is *buffers*: the per-process send list, the
/// per-entry sent-key list, the deliver worklist. `BufPool` recycles those:
/// `get` hands back a cleared buffer with its old capacity, `put` returns it.
/// After warmup every buffer cycle is allocation-free.
///
/// The pool is bounded (`MAX_POOLED` buffers) so a rollback storm cannot
/// turn it into a leak; excess buffers are simply dropped.
#[derive(Debug)]
pub struct BufPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for BufPool<T> {
    fn default() -> Self {
        BufPool { free: Vec::new() }
    }
}

impl<T> BufPool<T> {
    const MAX_POOLED: usize = 256;

    pub fn new() -> Self {
        Self::default()
    }

    /// Take a buffer from the pool (empty, capacity retained) or a fresh one.
    #[inline]
    pub fn get(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool; contents are dropped here.
    #[inline]
    pub fn put(&mut self, mut buf: Vec<T>) {
        if self.free.len() < Self::MAX_POOLED && buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Buffers currently pooled (diagnostics).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: f64, dst: u32, src: u32, seq: u64) -> EventKey {
        EventKey {
            recv_time: VirtualTime::from_f64(t),
            dst: LpId(dst),
            uid: EventUid::new(LpId(src), seq),
        }
    }

    #[test]
    fn order_by_time_first() {
        assert!(key(1.0, 9, 9, 9) < key(2.0, 0, 0, 0));
    }

    #[test]
    fn ties_broken_by_dst_then_uid() {
        assert!(key(1.0, 1, 5, 5) < key(1.0, 2, 0, 0));
        assert!(key(1.0, 1, 1, 0) < key(1.0, 1, 1, 1));
        assert!(key(1.0, 1, 1, 7) < key(1.0, 1, 2, 0));
    }

    #[test]
    fn buf_pool_recycles_capacity() {
        let mut pool: BufPool<u64> = BufPool::new();
        let mut v = pool.get();
        v.extend(0..100);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.pooled(), 1);
        let v2 = pool.get();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.pooled(), 0);
        // Zero-capacity buffers are not worth pooling.
        pool.put(Vec::new());
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn msg_accessors() {
        let k = key(3.0, 4, 5, 6);
        let m: Msg<u8> = Msg::Anti(k);
        assert!(m.is_anti());
        assert_eq!(m.key(), k);
        assert_eq!(m.dst(), LpId(4));
        assert_eq!(m.recv_time(), VirtualTime::from_f64(3.0));
        let e = Msg::Event(Event {
            key: k,
            send_time: VirtualTime::ZERO,
            payload: 1u8,
        });
        assert!(!e.is_anti());
        assert_eq!(e.key(), k);
    }
}
