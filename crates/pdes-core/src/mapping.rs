//! LP-to-thread mapping.
//!
//! ROSS maps LPs to simulation threads round-robin (`lp % num_threads`);
//! a block mapping (`lp / lps_per_thread`) is provided for experiments that
//! need contiguous LP blocks per thread. The mapping is immutable for the
//! lifetime of a simulation *run* — the engines under study do
//! *demand-driven scheduling of threads onto cores*, not LP migration.
//! Recovery is the one exception: when a worker dies, the supervisor
//! restarts the run from a checkpoint under a new map built by
//! [`LpMap::rebalanced_without`], which folds the dead thread's LPs onto the
//! survivors via an explicit assignment table.

use crate::ids::{LpId, SimThreadId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Mapping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MapKind {
    /// `thread = lp % num_threads` (ROSS default; paper §2.2).
    #[default]
    RoundRobin,
    /// `thread = lp / ceil(num_lps / num_threads)`.
    Block,
}

/// Immutable LP → thread map.
///
/// Normally a pure function of `(num_lps, num_threads, kind)`. After a
/// recovery the map instead carries an explicit per-LP assignment table
/// (`assign`), which overrides `kind` — this is how a dead worker's LPs are
/// folded onto the survivors without disturbing the formula-based fast path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LpMap {
    pub num_lps: u32,
    pub num_threads: u32,
    pub kind: MapKind,
    /// Explicit owner per LP (`assign[lp] = thread`); `None` for the
    /// formula-based maps. Shared so clones handed to every engine stay
    /// cheap.
    pub assign: Option<Arc<Vec<u32>>>,
}

impl LpMap {
    pub fn new(num_lps: usize, num_threads: usize, kind: MapKind) -> Self {
        assert!(num_lps > 0, "need at least one LP");
        assert!(num_threads > 0, "need at least one thread");
        assert!(
            num_lps >= num_threads,
            "fewer LPs ({num_lps}) than threads ({num_threads})"
        );
        LpMap {
            num_lps: num_lps as u32,
            num_threads: num_threads as u32,
            kind,
            assign: None,
        }
    }

    /// Build a map from an explicit per-LP owner table. Every thread in
    /// `0..num_threads` must own at least one LP.
    pub fn with_assignment(num_threads: usize, assign: Vec<u32>) -> Self {
        assert!(!assign.is_empty(), "need at least one LP");
        assert!(num_threads > 0, "need at least one thread");
        let mut owned = vec![false; num_threads];
        for (lp, &t) in assign.iter().enumerate() {
            assert!(
                (t as usize) < num_threads,
                "LP {lp} assigned to out-of-range thread {t}"
            );
            owned[t as usize] = true;
        }
        assert!(
            owned.iter().all(|&o| o),
            "every thread must own at least one LP"
        );
        LpMap {
            num_lps: assign.len() as u32,
            num_threads: num_threads as u32,
            kind: MapKind::RoundRobin,
            assign: Some(Arc::new(assign)),
        }
    }

    /// Derive the map a recovered run uses after thread `dead` is removed:
    /// survivors keep their LPs (re-indexed past the gap) and the dead
    /// thread's LPs go greedily to the least-loaded survivor. `load[t]` is a
    /// relative work estimate per *old* thread id (e.g. committed-event
    /// counts); zeros are fine.
    ///
    /// # Panics
    /// Panics if this map has fewer than two threads — there is no survivor
    /// to remap onto.
    pub fn rebalanced_without(&self, dead: SimThreadId, load: &[u64]) -> LpMap {
        let old_n = self.num_threads as usize;
        assert!(old_n >= 2, "cannot remap with no surviving thread");
        assert!(dead.index() < old_n, "dead thread {dead} out of range");
        let new_id = |old: u32| -> u32 {
            if old > dead.0 {
                old - 1
            } else {
                old
            }
        };
        let mut assign = vec![0u32; self.num_lps as usize];
        let mut moved = Vec::new();
        for lp in (0..self.num_lps).map(LpId) {
            let owner = self.thread_of(lp);
            if owner == dead {
                moved.push(lp);
            } else {
                assign[lp.index()] = new_id(owner.0);
            }
        }
        // Greedy least-loaded placement of the orphaned LPs. Each placed LP
        // adds the dead thread's mean per-LP load (at least 1) so a burst of
        // orphans spreads out instead of piling onto one survivor.
        let mut running: Vec<u64> = (0..old_n as u32)
            .filter(|&t| t != dead.0)
            .map(|t| load.get(t as usize).copied().unwrap_or(0))
            .collect();
        let per_lp = load
            .get(dead.index())
            .copied()
            .unwrap_or(0)
            .checked_div(moved.len() as u64)
            .unwrap_or(0)
            .max(1);
        for lp in moved {
            let (tgt, _) = running
                .iter()
                .enumerate()
                .min_by_key(|&(t, &l)| (l, t))
                .expect("at least one survivor");
            assign[lp.index()] = tgt as u32;
            running[tgt] += per_lp;
        }
        LpMap::with_assignment(old_n - 1, assign)
    }

    /// Derive the map an elastic cluster uses after a new thread joins: the
    /// joiner becomes thread `num_threads` and takes LPs from the most
    /// loaded donors until it holds roughly `total_load / (n + 1)`, with
    /// every donor keeping at least one LP. `load[t]` is a relative work
    /// estimate per existing thread; per-LP load is spread evenly over each
    /// donor's LPs (at least 1 per LP so empty estimates still move LPs).
    /// Fully deterministic: ties break toward the lower thread / lower LP.
    pub fn rebalanced_with_joiner(&self, load: &[u64]) -> LpMap {
        let old_n = self.num_threads as usize;
        let joiner = old_n as u32;
        let mut assign: Vec<u32> = (0..self.num_lps)
            .map(|lp| self.thread_of(LpId(lp)).0)
            .collect();
        let mut owned: Vec<Vec<LpId>> = (0..old_n)
            .map(|t| self.lps_of(SimThreadId(t as u32)))
            .collect();
        let per_lp: Vec<u64> = owned
            .iter()
            .enumerate()
            .map(|(t, lps)| (load.get(t).copied().unwrap_or(0) / lps.len().max(1) as u64).max(1))
            .collect();
        let mut running: Vec<u64> = owned
            .iter()
            .enumerate()
            .map(|(t, lps)| per_lp[t] * lps.len() as u64)
            .collect();
        let target = running.iter().sum::<u64>() / (old_n as u64 + 1);
        let mut taken = 0u64;
        loop {
            // Most loaded donor that can still spare an LP.
            let donor = running
                .iter()
                .enumerate()
                .filter(|&(t, _)| owned[t].len() > 1)
                .max_by_key(|&(t, &l)| (l, usize::MAX - t))
                .map(|(t, _)| t);
            let Some(t) = donor else { break };
            if taken + per_lp[t] > target {
                break;
            }
            // Highest LP of the donor moves (keeps its low LPs in place).
            let lp = owned[t].pop().expect("donor has an LP");
            assign[lp.index()] = joiner;
            running[t] -= per_lp[t];
            taken += per_lp[t];
        }
        if taken == 0 {
            // The joiner must own at least one LP: take one from the most
            // loaded donor regardless of the load target.
            let (t, _) = running
                .iter()
                .enumerate()
                .filter(|&(t, _)| owned[t].len() > 1)
                .max_by_key(|&(t, &l)| (l, usize::MAX - t))
                .expect("some thread owns more than one LP");
            let lp = owned[t].pop().expect("donor has an LP");
            assign[lp.index()] = joiner;
        }
        LpMap::with_assignment(old_n + 1, assign)
    }

    /// `true` when the map carries an explicit assignment table (recovery).
    #[inline]
    pub fn is_assigned(&self) -> bool {
        self.assign.is_some()
    }

    /// Owning thread of `lp`.
    #[inline]
    pub fn thread_of(&self, lp: LpId) -> SimThreadId {
        debug_assert!(lp.0 < self.num_lps, "LP {lp} out of range");
        if let Some(assign) = &self.assign {
            return SimThreadId(assign[lp.index()]);
        }
        match self.kind {
            MapKind::RoundRobin => SimThreadId(lp.0 % self.num_threads),
            MapKind::Block => {
                let per = self.num_lps.div_ceil(self.num_threads);
                SimThreadId((lp.0 / per).min(self.num_threads - 1))
            }
        }
    }

    /// All LPs owned by `thread`, ascending.
    pub fn lps_of(&self, thread: SimThreadId) -> Vec<LpId> {
        (0..self.num_lps)
            .map(LpId)
            .filter(|&lp| self.thread_of(lp) == thread)
            .collect()
    }

    /// Number of LPs per thread when evenly divisible.
    pub fn lps_per_thread(&self) -> usize {
        (self.num_lps / self.num_threads) as usize
    }
}

/// Two-level shard-aware map for the distributed runtime: LPs are first
/// partitioned across `num_shards` processes, then each shard's slice is
/// spread over its local worker threads. Both levels reuse [`LpMap`] so a
/// shard's slice and a thread's slice stay consistent by construction:
/// `shard_of` is the outer map's `thread_of`, and the global thread id of an
/// LP is `shard * threads_per_shard + local_thread`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// LP → shard (outer level).
    pub shards: LpMap,
    /// Worker threads per shard (inner level; ≥ 1).
    pub threads_per_shard: u32,
    /// Membership epoch: bumped every time the shard set changes (join,
    /// drain-and-leave, degrade after exhausted recovery). Epoch 0 is the
    /// launch membership. Lets checkpoints and telemetry state which
    /// membership a cut belongs to.
    pub epoch: u64,
}

impl ShardMap {
    pub fn new(num_lps: usize, num_shards: usize, threads_per_shard: usize, kind: MapKind) -> Self {
        assert!(threads_per_shard > 0, "need at least one thread per shard");
        assert!(
            num_lps >= num_shards * threads_per_shard,
            "fewer LPs ({num_lps}) than workers ({num_shards}x{threads_per_shard})"
        );
        ShardMap {
            shards: LpMap::new(num_lps, num_shards, kind),
            threads_per_shard: threads_per_shard as u32,
            epoch: 0,
        }
    }

    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.num_threads as usize
    }

    #[inline]
    pub fn num_lps(&self) -> usize {
        self.shards.num_lps as usize
    }

    /// Owning shard of `lp`.
    #[inline]
    pub fn shard_of(&self, lp: LpId) -> usize {
        self.shards.thread_of(lp).index()
    }

    /// All LPs owned by `shard`, ascending.
    pub fn lps_of_shard(&self, shard: usize) -> Vec<LpId> {
        self.shards.lps_of(SimThreadId(shard as u32))
    }

    /// Global thread id of `lp` (shard-major), the id the wire protocol
    /// routes on: `shard * threads_per_shard + local_thread`. The local
    /// thread is assigned by an inner per-shard map over the shard's slice.
    pub fn global_thread_of(&self, lp: LpId) -> SimThreadId {
        let shard = self.shard_of(lp);
        // Position of `lp` within its shard's ascending slice decides the
        // local thread (round-robin over the slice, matching the outer kind).
        let slice = self.lps_of_shard(shard);
        let pos = slice
            .iter()
            .position(|&x| x == lp)
            .expect("lp is in its own shard's slice");
        let local = pos as u32 % self.threads_per_shard;
        SimThreadId(shard as u32 * self.threads_per_shard + local)
    }

    /// Shard that owns global thread `t`.
    #[inline]
    pub fn shard_of_thread(&self, t: SimThreadId) -> usize {
        (t.0 / self.threads_per_shard) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_wraps() {
        let m = LpMap::new(8, 4, MapKind::RoundRobin);
        assert_eq!(m.thread_of(LpId(0)), SimThreadId(0));
        assert_eq!(m.thread_of(LpId(5)), SimThreadId(1));
        assert_eq!(m.lps_of(SimThreadId(1)), vec![LpId(1), LpId(5)]);
    }

    #[test]
    fn block_is_contiguous() {
        let m = LpMap::new(8, 4, MapKind::Block);
        assert_eq!(m.lps_of(SimThreadId(0)), vec![LpId(0), LpId(1)]);
        assert_eq!(m.lps_of(SimThreadId(3)), vec![LpId(6), LpId(7)]);
    }

    #[test]
    fn block_handles_uneven_division() {
        let m = LpMap::new(7, 3, MapKind::Block);
        // per = ceil(7/3) = 3 → blocks [0..3), [3..6), [6..7)
        let total: usize = (0..3).map(|t| m.lps_of(SimThreadId(t)).len()).sum();
        assert_eq!(total, 7);
        assert_eq!(m.thread_of(LpId(6)), SimThreadId(2));
    }

    #[test]
    fn every_lp_has_exactly_one_owner() {
        for kind in [MapKind::RoundRobin, MapKind::Block] {
            let m = LpMap::new(13, 5, kind);
            let mut owned = vec![0; 13];
            for t in 0..5 {
                for lp in m.lps_of(SimThreadId(t)) {
                    owned[lp.index()] += 1;
                    assert_eq!(m.thread_of(lp), SimThreadId(t));
                }
            }
            assert!(owned.iter().all(|&c| c == 1), "{kind:?}: {owned:?}");
        }
    }

    #[test]
    #[should_panic(expected = "fewer LPs")]
    fn more_threads_than_lps_rejected() {
        LpMap::new(2, 4, MapKind::RoundRobin);
    }

    #[test]
    fn assignment_table_overrides_formula() {
        let m = LpMap::with_assignment(2, vec![1, 1, 0, 1]);
        assert!(m.is_assigned());
        assert_eq!(m.thread_of(LpId(0)), SimThreadId(1));
        assert_eq!(m.thread_of(LpId(2)), SimThreadId(0));
        assert_eq!(m.lps_of(SimThreadId(1)), vec![LpId(0), LpId(1), LpId(3)]);
    }

    #[test]
    #[should_panic(expected = "at least one LP")]
    fn assignment_must_cover_every_thread() {
        // thread 2 owns nothing
        LpMap::with_assignment(3, vec![0, 1, 0, 1]);
    }

    #[test]
    fn rebalance_moves_dead_threads_lps_to_survivors() {
        let m = LpMap::new(8, 4, MapKind::RoundRobin);
        let load = [100, 10, 100, 100]; // thread 1 dies; thread 1's old load unused
        let r = m.rebalanced_without(SimThreadId(1), &load);
        assert_eq!(r.num_threads, 3);
        assert_eq!(r.num_lps, 8);
        // Survivors keep their LPs under re-indexed ids.
        assert_eq!(r.thread_of(LpId(0)), SimThreadId(0)); // was thread 0
        assert_eq!(r.thread_of(LpId(2)), SimThreadId(1)); // was thread 2
        assert_eq!(r.thread_of(LpId(3)), SimThreadId(2)); // was thread 3
                                                          // Every LP still has exactly one owner.
        let total: usize = (0..3).map(|t| r.lps_of(SimThreadId(t)).len()).sum();
        assert_eq!(total, 8);
        // The dead thread's LPs (1 and 5) landed on survivors.
        for lp in [LpId(1), LpId(5)] {
            assert!(r.thread_of(lp).index() < 3);
        }
    }

    #[test]
    fn rebalance_prefers_least_loaded_survivor() {
        let m = LpMap::new(4, 4, MapKind::RoundRobin);
        // Thread 3 dies; thread 2 is by far the least loaded survivor.
        let r = m.rebalanced_without(SimThreadId(3), &[1000, 1000, 1, 7]);
        assert_eq!(r.thread_of(LpId(3)), SimThreadId(2));
    }

    #[test]
    fn shard_map_partitions_every_lp_once() {
        for kind in [MapKind::RoundRobin, MapKind::Block] {
            let m = ShardMap::new(16, 4, 2, kind);
            let mut owned = vec![0; 16];
            for s in 0..4 {
                for lp in m.lps_of_shard(s) {
                    owned[lp.index()] += 1;
                    assert_eq!(m.shard_of(lp), s);
                }
            }
            assert!(owned.iter().all(|&c| c == 1), "{kind:?}: {owned:?}");
        }
    }

    #[test]
    fn shard_map_global_threads_are_shard_major() {
        let m = ShardMap::new(16, 4, 2, MapKind::Block);
        for lp in (0..16).map(LpId) {
            let t = m.global_thread_of(lp);
            assert_eq!(m.shard_of_thread(t), m.shard_of(lp));
            assert!((t.0 as usize) < 8);
        }
        // Within a shard both local threads get work.
        let threads: std::collections::BTreeSet<u32> = m
            .lps_of_shard(0)
            .into_iter()
            .map(|lp| m.global_thread_of(lp).0)
            .collect();
        assert_eq!(threads.len(), 2);
    }

    #[test]
    #[should_panic(expected = "fewer LPs")]
    fn shard_map_rejects_too_few_lps() {
        ShardMap::new(4, 4, 2, MapKind::RoundRobin);
    }

    #[test]
    fn joiner_rebalance_takes_load_from_the_heaviest_donors() {
        let m = LpMap::new(8, 2, MapKind::RoundRobin);
        // Thread 0 carries most of the load; the joiner should pull from it.
        let r = m.rebalanced_with_joiner(&[900, 100]);
        assert_eq!(r.num_threads, 3);
        assert_eq!(r.num_lps, 8);
        let j = r.lps_of(SimThreadId(2));
        assert!(!j.is_empty(), "joiner owns at least one LP");
        for &lp in &j {
            assert_eq!(
                m.thread_of(lp),
                SimThreadId(0),
                "pulled from the heavy donor"
            );
        }
        // Every LP still has exactly one owner and every thread owns one.
        let total: usize = (0..3).map(|t| r.lps_of(SimThreadId(t)).len()).sum();
        assert_eq!(total, 8);
        for t in 0..3 {
            assert!(!r.lps_of(SimThreadId(t)).is_empty());
        }
    }

    #[test]
    fn joiner_rebalance_is_deterministic_and_handles_zero_load() {
        let m = LpMap::new(9, 3, MapKind::Block);
        let a = m.rebalanced_with_joiner(&[0, 0, 0]);
        let b = m.rebalanced_with_joiner(&[0, 0, 0]);
        assert_eq!(a, b);
        assert!(!a.lps_of(SimThreadId(3)).is_empty());
        // Donors never give away their last LP.
        for t in 0..3 {
            assert!(!a.lps_of(SimThreadId(t)).is_empty());
        }
    }

    #[test]
    fn shard_map_epoch_starts_at_zero_and_round_trips() {
        let mut m = ShardMap::new(12, 3, 2, MapKind::RoundRobin);
        assert_eq!(m.epoch, 0);
        m.epoch = 5;
        let v = serde::Serialize::to_value(&m);
        let back: ShardMap = serde::Deserialize::from_value(&v).expect("round trip");
        assert_eq!(back.epoch, 5);
        assert_eq!(back, m);
    }

    #[test]
    fn shard_map_serde_round_trips() {
        let m = ShardMap::new(12, 3, 2, MapKind::RoundRobin);
        let v = serde::Serialize::to_value(&m);
        let back: ShardMap = serde::Deserialize::from_value(&v).expect("round trip");
        assert_eq!(back, m);
    }

    #[test]
    fn map_serde_round_trips_with_assignment() {
        for m in [
            LpMap::new(8, 4, MapKind::Block),
            LpMap::with_assignment(2, vec![0, 1, 1, 0]),
        ] {
            let v = serde::Serialize::to_value(&m);
            let back: LpMap = serde::Deserialize::from_value(&v).expect("round trip");
            assert_eq!(back, m);
        }
    }
}
