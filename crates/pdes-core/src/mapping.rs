//! LP-to-thread mapping.
//!
//! ROSS maps LPs to simulation threads round-robin (`lp % num_threads`);
//! a block mapping (`lp / lps_per_thread`) is provided for experiments that
//! need contiguous LP blocks per thread. The mapping is immutable for the
//! lifetime of a simulation — the engines under study do *demand-driven
//! scheduling of threads onto cores*, not LP migration.

use crate::ids::{LpId, SimThreadId};
use serde::{Deserialize, Serialize};

/// Mapping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MapKind {
    /// `thread = lp % num_threads` (ROSS default; paper §2.2).
    #[default]
    RoundRobin,
    /// `thread = lp / ceil(num_lps / num_threads)`.
    Block,
}

/// Immutable LP → thread map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LpMap {
    pub num_lps: u32,
    pub num_threads: u32,
    pub kind: MapKind,
}

impl LpMap {
    pub fn new(num_lps: usize, num_threads: usize, kind: MapKind) -> Self {
        assert!(num_lps > 0, "need at least one LP");
        assert!(num_threads > 0, "need at least one thread");
        assert!(
            num_lps >= num_threads,
            "fewer LPs ({num_lps}) than threads ({num_threads})"
        );
        LpMap {
            num_lps: num_lps as u32,
            num_threads: num_threads as u32,
            kind,
        }
    }

    /// Owning thread of `lp`.
    #[inline]
    pub fn thread_of(&self, lp: LpId) -> SimThreadId {
        debug_assert!(lp.0 < self.num_lps, "LP {lp} out of range");
        match self.kind {
            MapKind::RoundRobin => SimThreadId(lp.0 % self.num_threads),
            MapKind::Block => {
                let per = self.num_lps.div_ceil(self.num_threads);
                SimThreadId((lp.0 / per).min(self.num_threads - 1))
            }
        }
    }

    /// All LPs owned by `thread`, ascending.
    pub fn lps_of(&self, thread: SimThreadId) -> Vec<LpId> {
        (0..self.num_lps)
            .map(LpId)
            .filter(|&lp| self.thread_of(lp) == thread)
            .collect()
    }

    /// Number of LPs per thread when evenly divisible.
    pub fn lps_per_thread(&self) -> usize {
        (self.num_lps / self.num_threads) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_wraps() {
        let m = LpMap::new(8, 4, MapKind::RoundRobin);
        assert_eq!(m.thread_of(LpId(0)), SimThreadId(0));
        assert_eq!(m.thread_of(LpId(5)), SimThreadId(1));
        assert_eq!(m.lps_of(SimThreadId(1)), vec![LpId(1), LpId(5)]);
    }

    #[test]
    fn block_is_contiguous() {
        let m = LpMap::new(8, 4, MapKind::Block);
        assert_eq!(m.lps_of(SimThreadId(0)), vec![LpId(0), LpId(1)]);
        assert_eq!(m.lps_of(SimThreadId(3)), vec![LpId(6), LpId(7)]);
    }

    #[test]
    fn block_handles_uneven_division() {
        let m = LpMap::new(7, 3, MapKind::Block);
        // per = ceil(7/3) = 3 → blocks [0..3), [3..6), [6..7)
        let total: usize = (0..3).map(|t| m.lps_of(SimThreadId(t)).len()).sum();
        assert_eq!(total, 7);
        assert_eq!(m.thread_of(LpId(6)), SimThreadId(2));
    }

    #[test]
    fn every_lp_has_exactly_one_owner() {
        for kind in [MapKind::RoundRobin, MapKind::Block] {
            let m = LpMap::new(13, 5, kind);
            let mut owned = vec![0; 13];
            for t in 0..5 {
                for lp in m.lps_of(SimThreadId(t)) {
                    owned[lp.index()] += 1;
                    assert_eq!(m.thread_of(lp), SimThreadId(t));
                }
            }
            assert!(owned.iter().all(|&c| c == 1), "{kind:?}: {owned:?}");
        }
    }

    #[test]
    #[should_panic(expected = "fewer LPs")]
    fn more_threads_than_lps_rejected() {
        LpMap::new(2, 4, MapKind::RoundRobin);
    }
}
