//! Sequential reference engine — the correctness oracle.
//!
//! Processes every event in global key order with no speculation. Because
//! models are deterministic and the event order is total, *any* correct Time
//! Warp execution must commit exactly the same set of events and leave every
//! LP in the same final state. Integration tests compare the digests
//! produced here with those of `sim-rt` and `thread-rt` runs.

use crate::checkpoint::Checkpoint;
use crate::config::EngineConfig;
use crate::event::{Event, Msg};
use crate::ids::LpId;
use crate::lp::{key_digest, Lp, Snapshot};
use crate::mapping::LpMap;
use crate::model::Model;
use crate::time::VirtualTime;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Min-heap entry ordering events by full key.
///
/// The sequential oracle never sees an anti-message (nothing is ever rolled
/// back), so the engines' [`crate::pending::PendingSet`] — whose hash-map
/// index exists solely for O(1) cancellation — is pure overhead here. A
/// plain binary heap of events drops the per-event hash insert/remove from
/// the oracle's hot loop.
struct ByKey<P>(Event<P>);

impl<P> PartialEq for ByKey<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key == other.0.key
    }
}
impl<P> Eq for ByKey<P> {}
impl<P> PartialOrd for ByKey<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for ByKey<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest key.
        other.0.key.cmp(&self.0.key)
    }
}

/// Outcome of a sequential run: everything needed to validate a parallel run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequentialResult {
    /// Total events processed (== committed: nothing is ever rolled back).
    pub committed: u64,
    /// XOR-fold of committed event-key digests.
    pub commit_digest: u64,
    /// Final state digest per LP, in LP order.
    pub state_digests: Vec<u64>,
    /// XOR-fold of keys of events left unprocessed past the end time.
    pub pending_digest: u64,
    /// Receive time of the last committed event.
    pub final_lvt: VirtualTime,
}

/// Run `model` sequentially until `cfg.end_time`.
///
/// `max_events` caps the run as a safety valve against models that generate
/// unbounded zero-delay cascades; `None` means no cap.
pub fn run_sequential<M: Model>(
    model: &Arc<M>,
    cfg: &EngineConfig,
    max_events: Option<u64>,
) -> SequentialResult {
    run_sequential_with(model, cfg, &[], max_events)
}

/// [`run_sequential`] with `extra` events merged into the initial pending
/// set — the oracle for runs that accepted external events through the
/// ingest plane: feed it the gate's accepted events (exact uids and stamps)
/// and the merged-stream execution must match the live run's digests.
pub fn run_sequential_with<M: Model>(
    model: &Arc<M>,
    cfg: &EngineConfig,
    extra: &[crate::event::Event<M::Payload>],
    max_events: Option<u64>,
) -> SequentialResult {
    let num_lps = model.num_lps();
    // A single "thread" owning every LP reuses the LP bookkeeping as-is.
    let map = LpMap::new(num_lps, 1, cfg.mapping);
    let mut lps: Vec<Lp<M>> = (0..num_lps)
        .map(|i| {
            Lp::with_snapshot_period(
                model.as_ref(),
                LpId(i as u32),
                cfg.seed,
                cfg.snapshot_period,
            )
        })
        .collect();
    let mut pending: BinaryHeap<ByKey<M::Payload>> = BinaryHeap::new();

    for lp in &mut lps {
        for ev in lp.init_events(model.as_ref()) {
            pending.push(ByKey(ev));
        }
    }
    for ev in extra {
        pending.push(ByKey(ev.clone()));
    }
    let _ = map; // mapping does not matter sequentially; kept for symmetry
    finish_sequential(model, cfg, max_events, lps, pending)
}

/// Resume a sequential run from a GVT-aligned [`Checkpoint`] — the graceful
/// degradation path: when supervised parallel recovery is exhausted, the run
/// still completes from the last consistent cut with no speculation at all.
/// The committed totals continue from the cut, so the final result equals an
/// uninterrupted [`run_sequential`] of the same model and config.
pub fn run_sequential_from<M: Model>(
    model: &Arc<M>,
    cfg: &EngineConfig,
    ckpt: &Checkpoint<M::State, M::Payload>,
    max_events: Option<u64>,
) -> SequentialResult {
    run_sequential_from_with(model, cfg, ckpt, &[], max_events)
}

/// [`run_sequential_from`] with `extra` events merged into the pending set
/// restored from the cut. Used by the degraded-to-sequential recovery path
/// when the run had live ingest: pass the accepted events with
/// `send_time ≥ ckpt.gvt` (older ones are already inside the cut).
pub fn run_sequential_from_with<M: Model>(
    model: &Arc<M>,
    cfg: &EngineConfig,
    ckpt: &Checkpoint<M::State, M::Payload>,
    extra: &[crate::event::Event<M::Payload>],
    max_events: Option<u64>,
) -> SequentialResult {
    let num_lps = model.num_lps();
    assert_eq!(
        ckpt.lps.len(),
        num_lps,
        "checkpoint has {} LPs but the model has {num_lps}",
        ckpt.lps.len()
    );
    let mut lps: Vec<Lp<M>> = (0..num_lps)
        .map(|i| {
            Lp::with_snapshot_period(
                model.as_ref(),
                LpId(i as u32),
                cfg.seed,
                cfg.snapshot_period,
            )
        })
        .collect();
    for lck in &ckpt.lps {
        lps[lck.lp.index()].restore_from(
            Snapshot {
                state: lck.state.clone(),
                rng: lck.rng.clone(),
                send_seq: lck.send_seq,
            },
            lck.committed,
            lck.commit_digest,
            lck.lvt,
        );
    }
    let mut pending: BinaryHeap<ByKey<M::Payload>> = BinaryHeap::new();
    for ev in &ckpt.events {
        pending.push(ByKey(ev.clone()));
    }
    for ev in extra {
        pending.push(ByKey(ev.clone()));
    }
    finish_sequential(model, cfg, max_events, lps, pending)
}

/// The shared event loop: drain `pending` in key order until `cfg.end_time`,
/// starting from whatever committed position `lps` carry.
fn finish_sequential<M: Model>(
    model: &Arc<M>,
    cfg: &EngineConfig,
    max_events: Option<u64>,
    mut lps: Vec<Lp<M>>,
    mut pending: BinaryHeap<ByKey<M::Payload>>,
) -> SequentialResult {
    let mut committed: u64 = lps.iter().map(|lp| lp.committed).sum();
    let mut commit_digest: u64 = lps.iter().fold(0, |d, lp| d ^ lp.commit_digest);
    let mut final_lvt: VirtualTime = lps
        .iter()
        .map(|lp| lp.committed_lvt)
        .max()
        .unwrap_or(VirtualTime::ZERO);
    // One send buffer reused across the whole run: the loop below is
    // allocation-free per event after warmup (see tests/alloc_regression.rs).
    let mut sends = Vec::new();
    loop {
        if let Some(cap) = max_events {
            if committed >= cap {
                break;
            }
        }
        let Some(min) = pending.peek() else {
            break;
        };
        if min.0.key.recv_time > cfg.end_time {
            break;
        }
        let ByKey(ev) = pending.pop().expect("min exists");
        let key = ev.key;
        let lp = &mut lps[key.dst.index()];
        debug_assert!(!lp.is_straggler(&key), "sequential run cannot regress");
        sends.clear();
        lp.process_into(model.as_ref(), ev, &mut sends);
        for sent in sends.drain(..) {
            pending.push(ByKey(sent));
        }
        committed += 1;
        commit_digest ^= key_digest(&key);
        final_lvt = key.recv_time;
        // Sequential execution never rolls back, so history exists only to
        // be dropped — but dropping it *every* event forces a state
        // snapshot on the next one (an empty history always snapshots),
        // defeating sparse state saving. Collect lazily instead: history
        // stays short and the snapshot cadence follows `snapshot_period`.
        if lp.history_len() >= 32 {
            lp.fossil_collect(model.as_ref(), VirtualTime::INFINITY);
        }
    }

    let pending_digest = pending.iter().fold(0, |d, e| d ^ key_digest(&e.0.key));
    SequentialResult {
        committed,
        commit_digest,
        state_digests: lps
            .iter()
            .map(|lp| lp.state_digest(model.as_ref()))
            .collect(),
        pending_digest,
        final_lvt,
    }
}

/// Convenience: deliver a pre-built list of messages and return the digest
/// fold (used by tests that hand-craft schedules).
pub fn digest_msgs<P>(msgs: &[Msg<P>]) -> u64 {
    msgs.iter().fold(0, |d, m| d ^ key_digest(&m.key()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LpId;
    use crate::model::SendCtx;

    /// Ring model: LP i forwards to (i+1) % n with delay drawn from its RNG.
    struct Ring {
        n: usize,
    }
    impl Model for Ring {
        type State = u64;
        type Payload = ();
        fn num_lps(&self) -> usize {
            self.n
        }
        fn init_state(&self, _lp: LpId) -> u64 {
            0
        }
        fn init_events(&self, lp: LpId, _s: &mut u64, ctx: &mut SendCtx<'_, ()>) {
            let d = 0.5 + ctx.rng().next_f64();
            ctx.send(lp, d, ());
        }
        fn handle_event(&self, lp: LpId, s: &mut u64, _p: &(), ctx: &mut SendCtx<'_, ()>) {
            *s += 1;
            let d = 0.5 + ctx.rng().next_f64();
            ctx.send(LpId((lp.0 + 1) % self.n as u32), d, ());
        }
        fn state_digest(&self, s: &u64) -> u64 {
            *s
        }
    }

    #[test]
    fn sequential_is_deterministic() {
        let model = Arc::new(Ring { n: 8 });
        let cfg = EngineConfig::default().with_end_time(50.0).with_seed(11);
        let a = run_sequential(&model, &cfg, None);
        let b = run_sequential(&model, &cfg, None);
        assert_eq!(a, b);
        assert!(a.committed > 0);
    }

    #[test]
    fn different_seed_changes_trace() {
        let model = Arc::new(Ring { n: 8 });
        let a = run_sequential(
            &model,
            &EngineConfig::default().with_end_time(50.0).with_seed(1),
            None,
        );
        let b = run_sequential(
            &model,
            &EngineConfig::default().with_end_time(50.0).with_seed(2),
            None,
        );
        assert_ne!(a.commit_digest, b.commit_digest);
    }

    #[test]
    fn event_count_matches_population_dynamics() {
        // Ring keeps exactly `n` events in flight (each LP seeds one and each
        // processed event sends exactly one).
        let model = Arc::new(Ring { n: 4 });
        let cfg = EngineConfig::default().with_end_time(100.0).with_seed(3);
        let r = run_sequential(&model, &cfg, None);
        // Mean delay = 1.0 → ~100 hops per chain, 4 chains.
        assert!(r.committed > 200, "committed {}", r.committed);
        assert!(r.committed < 800, "committed {}", r.committed);
        // Exactly n events remain pending past the end time.
        assert_ne!(r.pending_digest, 0);
    }

    #[test]
    fn max_events_caps_run() {
        let model = Arc::new(Ring { n: 4 });
        let cfg = EngineConfig::default().with_end_time(1e6);
        let r = run_sequential(&model, &cfg, Some(100));
        assert_eq!(r.committed, 100);
    }

    #[test]
    fn resume_from_checkpoint_matches_uninterrupted_run() {
        use crate::engine::ThreadEngine;
        use crate::ids::SimThreadId;
        use crate::mapping::MapKind;

        let model = Arc::new(Ring { n: 8 });
        let cfg = EngineConfig::default().with_end_time(50.0).with_seed(11);
        let full = run_sequential(&model, &cfg, None);

        // Build a mid-run checkpoint with a single-thread engine.
        let map = LpMap::new(8, 1, MapKind::RoundRobin);
        let mut eng = ThreadEngine::new(Arc::clone(&model), map.clone(), SimThreadId(0), &cfg);
        let mut outbox = Vec::new();
        for (_, msg) in eng.take_init_events() {
            eng.deliver(msg, &mut outbox);
        }
        for _ in 0..5 {
            eng.process_batch(16, &mut outbox);
        }
        let gvt = eng.local_min();
        assert!(gvt < cfg.end_time, "checkpoint must be mid-run");
        eng.fossil_collect(gvt);
        let (lps, events) = eng.snapshot_at_gvt(gvt);
        let ckpt = Checkpoint {
            gvt,
            gvt_rounds: 1,
            lps,
            events,
            map,
            cursor: None,
        };
        assert!(ckpt.total_committed() > 0, "cut must not be at genesis");

        let resumed = run_sequential_from(&model, &cfg, &ckpt, None);
        assert_eq!(resumed, full);
    }

    #[test]
    fn state_sum_equals_committed() {
        // Each processed event increments exactly one LP state by 1.
        let model = Arc::new(Ring { n: 4 });
        let cfg = EngineConfig::default().with_end_time(30.0);
        let r = run_sequential(&model, &cfg, None);
        let sum: u64 = r.state_digests.iter().sum();
        assert_eq!(sum, r.committed);
    }
}
