//! The per-simulation-thread Time Warp engine.
//!
//! [`ThreadEngine`] owns a thread's LPs and pending set and implements the
//! platform-independent mechanics: optimistic processing, straggler
//! detection, rollback cascades, anti-message annihilation, and fossil
//! collection. The two runtimes (`sim-rt` on the virtual machine, `thread-rt`
//! on real threads) wrap it with queues, scheduling, GVT protocols, and cost
//! accounting — the *event semantics* live here and are identical in both.

use crate::checkpoint::{CutSnapshot, LpCheckpoint};
use crate::config::EngineConfig;
use crate::event::{Event, EventKey, Msg};
use crate::ids::{LpId, SimThreadId};
use crate::lp::{key_digest, Lp, Snapshot};
use crate::mapping::LpMap;
use crate::model::Model;
use crate::pending::{CancelOutcome, InsertOutcome, PendingSet};
use crate::stats::ThreadStats;
use crate::time::VirtualTime;
use std::sync::Arc;

/// A message addressed to another simulation thread.
pub type Outbound<P> = (SimThreadId, Msg<P>);

/// Result of one batch-processing step.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Events executed in this batch.
    pub processed: u32,
    /// Positive events sent (local + remote).
    pub sent: u32,
    /// Remote messages produced (positive + anti).
    pub remote_msgs: u32,
    /// Events undone by rollbacks triggered inside the batch
    /// (zero-delay self-straggler cascades).
    pub rolled_back: u32,
}

/// Result of delivering one incoming message.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DeliverOutcome {
    /// Events undone by the rollback this message triggered (0 if none).
    pub rolled_back: u32,
    /// Anti-messages emitted by the rollback.
    pub antis: u32,
    /// `true` if the message annihilated against its twin.
    pub annihilated: bool,
}

/// Per-thread Time Warp engine.
pub struct ThreadEngine<M: Model> {
    tid: SimThreadId,
    model: Arc<M>,
    map: LpMap,
    /// Owned LPs, indexed by [`LpMap`] local index.
    lps: Vec<Lp<M>>,
    /// LP ids in local-index order (parallel to `lps`).
    lp_ids: Vec<LpId>,
    pending: PendingSet<M::Payload>,
    stats: ThreadStats,
    end_time: VirtualTime,
    /// Bounded-optimism window (virtual-time ticks beyond the GVT hint).
    optimism_window: Option<VirtualTime>,
    /// Last GVT this engine saw (updated at fossil collection).
    gvt_hint: VirtualTime,
    /// Reused worklist for local anti-message cascades in [`Self::deliver`].
    work: Vec<Msg<M::Payload>>,
    /// Reused send buffer for the batch loops — handler sends land here and
    /// are routed out, so steady-state processing allocates nothing.
    send_buf: Vec<Event<M::Payload>>,
}

impl<M: Model> ThreadEngine<M> {
    /// Build the engine for `tid`, creating all of its LPs.
    pub fn new(model: Arc<M>, map: LpMap, tid: SimThreadId, cfg: &EngineConfig) -> Self {
        let lp_ids = map.lps_of(tid);
        let lps = lp_ids
            .iter()
            .map(|&lp| Lp::with_snapshot_period(model.as_ref(), lp, cfg.seed, cfg.snapshot_period))
            .collect();
        ThreadEngine {
            tid,
            model,
            map,
            lps,
            lp_ids,
            pending: PendingSet::new(),
            stats: ThreadStats::default(),
            end_time: cfg.end_time,
            optimism_window: cfg.optimism_window.map(VirtualTime::from_f64),
            gvt_hint: VirtualTime::ZERO,
            work: Vec::new(),
            send_buf: Vec::new(),
        }
    }

    #[inline]
    pub fn tid(&self) -> SimThreadId {
        self.tid
    }

    #[inline]
    pub fn stats(&self) -> &ThreadStats {
        &self.stats
    }

    #[inline]
    pub fn num_lps(&self) -> usize {
        self.lps.len()
    }

    /// Number of unprocessed events in the pending set.
    #[inline]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The thread's contribution to GVT: receive time of its lowest
    /// unprocessed event (input-queue contents are the runtime's business).
    #[inline]
    pub fn local_min(&self) -> VirtualTime {
        self.pending.min_time()
    }

    /// `true` while the thread still holds events at or below the end time —
    /// events it will actually process. A thread whose only pending events
    /// lie beyond the end time is as idle as an empty one (demand-driven
    /// deactivation condition).
    #[inline]
    pub fn has_live_pending(&self) -> bool {
        self.pending.min_time() <= self.end_time
    }

    /// Inject an externally-admitted event (ingest plane). The gate has
    /// already judged it against the published GVT floor; this is the
    /// defensive re-check at the engine boundary — an event *below* the
    /// engine's own GVT hint would land in irrevocably committed history, so
    /// it is refused (`false`) instead. Delivery goes through the normal
    /// straggler/rollback path, so a late-but-admissible event may roll
    /// back optimistic work like any remote message.
    pub fn inject_external(
        &mut self,
        ev: Event<M::Payload>,
        outbox: &mut Vec<Outbound<M::Payload>>,
    ) -> bool {
        if ev.key.recv_time < self.gvt_hint {
            return false;
        }
        self.stats.ingested += 1;
        self.deliver(Msg::Event(ev), outbox);
        true
    }

    fn lp_slot(&mut self, lp: LpId) -> &mut Lp<M> {
        debug_assert_eq!(
            self.map.thread_of(lp),
            self.tid,
            "{lp} not owned by {}",
            self.tid
        );
        let idx = self
            .lp_ids
            .binary_search(&lp)
            .unwrap_or_else(|_| panic!("{lp} not owned by thread {}", self.tid));
        &mut self.lps[idx]
    }

    /// Run every owned LP's initial-event hook. Returned messages must be
    /// routed by the caller (initial events may target any LP, including
    /// this thread's own — route them back through [`Self::deliver`]).
    pub fn take_init_events(&mut self) -> Vec<Outbound<M::Payload>> {
        let mut out = Vec::new();
        let model = Arc::clone(&self.model);
        for lp in &mut self.lps {
            for ev in lp.init_events(model.as_ref()) {
                out.push((self.map.thread_of(ev.dst()), Msg::Event(ev)));
            }
        }
        self.stats.events_sent += out.len() as u64;
        out
    }

    /// Deliver one incoming message, resolving any rollback it triggers.
    /// Anti-messages produced by the rollback are appended to `outbox`
    /// (local ones are applied recursively; only remote ones are emitted).
    pub fn deliver(
        &mut self,
        msg: Msg<M::Payload>,
        outbox: &mut Vec<Outbound<M::Payload>>,
    ) -> DeliverOutcome {
        let model = Arc::clone(&self.model);
        let mut outcome = DeliverOutcome::default();
        // Local anti-message cascades are resolved with a worklist; the
        // buffer is engine-owned and reused (empty again by loop exit).
        let mut work = std::mem::take(&mut self.work);
        work.push(msg);
        while let Some(m) = work.pop() {
            match m {
                Msg::Event(ev) => {
                    let key = ev.key;
                    if self.lp_slot(key.dst).is_straggler(&key) {
                        self.stats.stragglers += 1;
                        self.stats.rollbacks += 1;
                        let rb = self.lp_slot(key.dst).rollback(model.as_ref(), &key, false);
                        outcome.rolled_back += rb.undone as u32;
                        self.stats.rolled_back += rb.undone as u64;
                        outcome.antis += rb.antis.len() as u32;
                        self.route_antis(rb.antis, &mut work, outbox);
                        for undone in rb.reinserted {
                            // Re-inserted events cannot collide: they were
                            // just removed from "processed", not pending.
                            let r = self.pending.insert(undone);
                            debug_assert_eq!(r, InsertOutcome::Inserted);
                        }
                    }
                    match self.pending.insert(ev) {
                        InsertOutcome::Inserted => {}
                        InsertOutcome::Annihilated => {
                            outcome.annihilated = true;
                            self.stats.annihilations += 1;
                        }
                    }
                }
                Msg::Anti(key) => {
                    self.stats.antis_received += 1;
                    match self.pending.cancel(&key) {
                        CancelOutcome::Removed => {
                            outcome.annihilated = true;
                            self.stats.annihilations += 1;
                        }
                        CancelOutcome::Deferred => {
                            // Not pending: either already processed (roll it
                            // back, inclusive) or still in transit (the
                            // orphan anti just parked will annihilate it).
                            if self.lp_slot(key.dst).has_processed(&key) {
                                // Un-park the anti we just deferred — the
                                // rollback consumes the event instead.
                                let r = self.pending.unpark_anti(&key);
                                debug_assert!(r);
                                self.stats.rollbacks += 1;
                                let rb = self.lp_slot(key.dst).rollback(model.as_ref(), &key, true);
                                outcome.rolled_back += rb.undone as u32;
                                self.stats.rolled_back += rb.undone as u64;
                                outcome.antis += rb.antis.len() as u32;
                                self.route_antis(rb.antis, &mut work, outbox);
                                for undone in rb.reinserted {
                                    if undone.key == key {
                                        // The cancelled event: annihilated.
                                        self.stats.annihilations += 1;
                                        outcome.annihilated = true;
                                        continue;
                                    }
                                    let r = self.pending.insert(undone);
                                    debug_assert_eq!(r, InsertOutcome::Inserted);
                                }
                            }
                        }
                    }
                }
            }
        }
        self.work = work;
        outcome
    }

    /// Route rollback-generated anti-messages: local ones join the worklist,
    /// remote ones go to the outbox.
    fn route_antis(
        &mut self,
        antis: Vec<EventKey>,
        work: &mut Vec<Msg<M::Payload>>,
        outbox: &mut Vec<Outbound<M::Payload>>,
    ) {
        for key in antis {
            self.stats.antis_sent += 1;
            let dst_thread = self.map.thread_of(key.dst);
            if dst_thread == self.tid {
                work.push(Msg::Anti(key));
            } else {
                outbox.push((dst_thread, Msg::Anti(key)));
            }
        }
    }

    /// Process up to `max` pending events (one ROSS main-loop batch).
    /// Remote sends are appended to `outbox`; local sends are delivered
    /// immediately (and may extend the work available to this same batch).
    pub fn process_batch(
        &mut self,
        max: usize,
        outbox: &mut Vec<Outbound<M::Payload>>,
    ) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        let model = Arc::clone(&self.model);
        // Bounded optimism: never speculate past gvt + window.
        let horizon = match self.optimism_window {
            Some(w) => self.end_time.min(self.gvt_hint.saturating_add(w)),
            None => self.end_time,
        };
        let mut sends = std::mem::take(&mut self.send_buf);
        for _ in 0..max {
            let Some(min) = self.pending.min_key() else {
                break;
            };
            if min.recv_time > horizon {
                break;
            }
            let ev = self.pending.pop_min().expect("min exists");
            let lp = self.lp_slot(ev.dst());
            sends.clear();
            let n = lp.process_into(model.as_ref(), ev, &mut sends);
            self.stats.processed += 1;
            out.processed += 1;
            out.sent += n as u32;
            self.stats.events_sent += n as u64;
            for ev in sends.drain(..) {
                let dst_thread = self.map.thread_of(ev.dst());
                if dst_thread == self.tid {
                    let d = self.deliver(Msg::Event(ev), outbox);
                    out.rolled_back += d.rolled_back;
                } else {
                    outbox.push((dst_thread, Msg::Event(ev)));
                }
            }
        }
        self.send_buf = sends;
        out.remote_msgs = outbox.len() as u32;
        out
    }

    /// Conservative (Chandy–Misra–Bryant) batch: process up to `max`
    /// pending events whose receive time is **strictly below** `bound`
    /// (and at or below the end time). The caller guarantees no event
    /// below `bound` can still arrive, so — unlike [`process_batch`] —
    /// nothing here is speculative and nothing will ever roll back.
    /// Remote sends are appended to `outbox`; local sends are delivered
    /// immediately and may extend the work available to this same batch.
    pub fn process_conservative(
        &mut self,
        bound: VirtualTime,
        max: usize,
        outbox: &mut Vec<Outbound<M::Payload>>,
    ) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        let model = Arc::clone(&self.model);
        let mut sends = std::mem::take(&mut self.send_buf);
        for _ in 0..max {
            let Some(min) = self.pending.min_key() else {
                break;
            };
            if min.recv_time >= bound || min.recv_time > self.end_time {
                break;
            }
            let ev = self.pending.pop_min().expect("min exists");
            let lp = self.lp_slot(ev.dst());
            sends.clear();
            let n = lp.process_into(model.as_ref(), ev, &mut sends);
            self.stats.processed += 1;
            out.processed += 1;
            out.sent += n as u32;
            self.stats.events_sent += n as u64;
            for ev in sends.drain(..) {
                let dst_thread = self.map.thread_of(ev.dst());
                if dst_thread == self.tid {
                    let d = self.deliver(Msg::Event(ev), outbox);
                    out.rolled_back += d.rolled_back;
                } else {
                    outbox.push((dst_thread, Msg::Event(ev)));
                }
            }
        }
        self.send_buf = sends;
        out.remote_msgs = outbox.len() as u32;
        out
    }

    /// Fossil-collect every LP below `gvt`; returns newly committed events.
    pub fn fossil_collect(&mut self, gvt: VirtualTime) -> u64 {
        self.gvt_hint = self.gvt_hint.max(gvt.min(self.end_time));
        let mut n = 0;
        let model = Arc::clone(&self.model);
        for lp in &mut self.lps {
            n += lp.fossil_collect(model.as_ref(), gvt);
        }
        self.refresh_commit_stats(n);
        n
    }

    /// Commit all remaining history (simulation end).
    pub fn finalize(&mut self) -> u64 {
        let mut n = 0;
        let model = Arc::clone(&self.model);
        for lp in &mut self.lps {
            n += lp.commit_all(model.as_ref());
        }
        self.refresh_commit_stats(n);
        n
    }

    fn refresh_commit_stats(&mut self, newly: u64) {
        self.stats.committed += newly;
        self.stats.commit_digest = self.lps.iter().fold(0, |d, lp| d ^ lp.commit_digest);
    }

    /// This engine's contribution to a GVT-aligned checkpoint. **Must run
    /// right after `fossil_collect(gvt)`** so every LP's committed frontier
    /// sits exactly at the cut.
    ///
    /// Returns the committed snapshot of every owned LP plus all events
    /// crossing the cut (`send_time < gvt ≤ recv_time`): their senders are
    /// committed and will never re-send them. Events with `send_time ≥ gvt`
    /// are deliberately *excluded* — the restored run re-executes their
    /// senders and deterministically re-sends them with identical UIDs.
    ///
    /// Cut-crossing events are **copied**, not pooled or moved, and that is
    /// load-bearing: the checkpoint escapes the engine (serialized to disk /
    /// shipped to the assembler on another thread) while the live run keeps
    /// executing — the originals stay in the pending set to be processed and
    /// in the processed lists to back future rollbacks. A moved event would
    /// have to be re-inserted on the hot path after assembly, re-introducing
    /// per-event bookkeeping on every commit to pay for the rare checkpoint.
    /// `copies_cut_events_and_leaves_engine_untouched` pins this down. The
    /// copies are sorted by key: the underlying pending iteration is
    /// unordered (hash map), and a checkpoint's byte stream must be
    /// deterministic for digest comparison and replay.
    pub fn snapshot_at_gvt(&self, gvt: VirtualTime) -> CutSnapshot<M::State, M::Payload> {
        let mut lps = Vec::with_capacity(self.lps.len());
        let mut events = Vec::new();
        for lp in &self.lps {
            debug_assert!(
                lp.processed
                    .front()
                    .is_none_or(|e| e.event.key.recv_time >= gvt),
                "snapshot_at_gvt requires fossil_collect({gvt}) first"
            );
            let snap = lp.committed_snapshot();
            lps.push(LpCheckpoint {
                lp: lp.id,
                state: snap.state,
                rng: snap.rng,
                send_seq: snap.send_seq,
                committed: lp.committed,
                commit_digest: lp.commit_digest,
                lvt: lp.committed_lvt,
            });
            // Uncommitted-but-processed events whose senders are committed:
            // the restored run cannot regenerate them.
            for entry in &lp.processed {
                if entry.event.send_time < gvt {
                    events.push(entry.event.clone());
                }
            }
        }
        for ev in self.pending.iter() {
            if ev.send_time < gvt {
                events.push(ev.clone());
            }
        }
        events.sort_unstable_by_key(|e| e.key);
        (lps, events)
    }

    /// Reset this engine to a checkpointed cut at `gvt`: every owned LP is
    /// restored from its [`LpCheckpoint`] and the pending set is re-seeded
    /// with the cut-crossing events owned by this thread (`events` may hold
    /// the whole checkpoint's list — others are skipped). The engine's map
    /// decides ownership, so a recovery can restore under a *different*
    /// (rebalanced) map than the one the checkpoint was taken with.
    ///
    /// Commit counters and digests continue from the cut, so a recovered
    /// run's totals line up with an uninterrupted one.
    pub fn restore(
        &mut self,
        lps: &[LpCheckpoint<M::State>],
        events: &[Event<M::Payload>],
        gvt: VirtualTime,
    ) {
        for lck in lps {
            if self.map.thread_of(lck.lp) != self.tid {
                continue;
            }
            self.lp_slot(lck.lp).restore_from(
                Snapshot {
                    state: lck.state.clone(),
                    rng: lck.rng.clone(),
                    send_seq: lck.send_seq,
                },
                lck.committed,
                lck.commit_digest,
                lck.lvt,
            );
        }
        self.pending = PendingSet::new();
        for ev in events {
            if self.map.thread_of(ev.dst()) != self.tid {
                continue;
            }
            let r = self.pending.insert(ev.clone());
            debug_assert_eq!(r, InsertOutcome::Inserted);
        }
        self.gvt_hint = gvt.min(self.end_time);
        self.stats = ThreadStats::default();
        self.stats.committed = self.lps.iter().map(|lp| lp.committed).sum();
        self.stats.commit_digest = self.lps.iter().fold(0, |d, lp| d ^ lp.commit_digest);
    }

    /// Annihilate every *uncommitted* input that originated at one of
    /// `dead_lps` (sorted ascending) with `send_time ≥ since_send` and
    /// `recv_time ≥ floor_recv` — the events a partially recovered peer will
    /// deterministically regenerate and re-send from its restored cut, which
    /// would otherwise arrive as duplicates. Pending twins are removed;
    /// processed ones trigger ordinary rollbacks whose cascade antis land in
    /// `outbox`. Returns how many dead-origin events were purged.
    ///
    /// `since_send` is the cut's GVT (older sends are committed at the dead
    /// peer and never re-sent); `floor_recv` is this shard's current GVT
    /// (older receives are committed here, and the regenerated duplicates
    /// are dropped at the link instead).
    pub fn purge_inputs_from(
        &mut self,
        dead_lps: &[LpId],
        since_send: VirtualTime,
        floor_recv: VirtualTime,
        outbox: &mut Vec<Outbound<M::Payload>>,
    ) -> u64 {
        debug_assert!(dead_lps.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        let doomed = |src: LpId, send: VirtualTime, recv: VirtualTime| {
            dead_lps.binary_search(&src).is_ok() && send >= since_send && recv >= floor_recv
        };
        let mut keys: Vec<EventKey> = Vec::new();
        for ev in self.pending.iter() {
            if doomed(ev.key.uid.src, ev.send_time, ev.key.recv_time) {
                keys.push(ev.key);
            }
        }
        for lp in &self.lps {
            for entry in &lp.processed {
                let ev = &entry.event;
                if doomed(ev.key.uid.src, ev.send_time, ev.key.recv_time) {
                    keys.push(ev.key);
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();
        let purged = keys.len() as u64;
        for key in keys {
            // A later rollback may already have moved the twin back into
            // pending (or annihilated it); `deliver` handles every case.
            self.deliver(Msg::Anti(key), outbox);
        }
        purged
    }

    /// Total uncommitted history length across LPs (memory pressure metric).
    pub fn history_len(&self) -> usize {
        self.lps.iter().map(|lp| lp.history_len()).sum()
    }

    /// Digest of every owned LP's final state, in LP order.
    pub fn state_digests(&self) -> Vec<(LpId, u64)> {
        self.lp_ids
            .iter()
            .zip(&self.lps)
            .map(|(&id, lp)| (id, lp.state_digest(self.model.as_ref())))
            .collect()
    }

    /// Unprocessed-event digest — used by tests to confirm two executions
    /// left the same events unprocessed past the end time.
    pub fn pending_digest(&self) -> u64 {
        self.pending.iter().fold(0, |d, e| d ^ key_digest(&e.key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::model::SendCtx;

    /// Ping model: LP i forwards each event to (i+1) % n after delay 1, and
    /// accumulates the hop count in its state.
    struct Ping {
        n: usize,
    }
    impl Model for Ping {
        type State = u64;
        type Payload = u64;
        fn num_lps(&self) -> usize {
            self.n
        }
        fn init_state(&self, _lp: LpId) -> u64 {
            0
        }
        fn init_events(&self, lp: LpId, _s: &mut u64, ctx: &mut SendCtx<'_, u64>) {
            if lp == LpId(0) {
                ctx.send(LpId(0), 1.0, 0);
            }
        }
        fn handle_event(&self, lp: LpId, s: &mut u64, p: &u64, ctx: &mut SendCtx<'_, u64>) {
            *s += p + 1;
            let next = LpId((lp.0 + 1) % self.n as u32);
            ctx.send(next, 1.0, p + 1);
        }
        fn state_digest(&self, s: &u64) -> u64 {
            *s
        }
    }

    fn cfg(end: f64) -> EngineConfig {
        EngineConfig::default().with_end_time(end)
    }

    fn single_thread_run(n_lps: usize, end: f64) -> ThreadEngine<Ping> {
        let model = Arc::new(Ping { n: n_lps });
        let map = LpMap::new(n_lps, 1, crate::mapping::MapKind::RoundRobin);
        let c = cfg(end);
        let mut eng = ThreadEngine::new(model, map, SimThreadId(0), &c);
        let mut outbox = Vec::new();
        for (_, msg) in eng.take_init_events() {
            eng.deliver(msg, &mut outbox);
        }
        assert!(outbox.is_empty());
        loop {
            let b = eng.process_batch(8, &mut outbox);
            assert!(outbox.is_empty(), "single-thread run has no remote sends");
            if b.processed == 0 {
                break;
            }
        }
        eng.finalize();
        eng
    }

    #[test]
    fn single_thread_ping_processes_expected_events() {
        let eng = single_thread_run(4, 10.0);
        // One event per integer time 1..=10.
        assert_eq!(eng.stats().processed, 10);
        assert_eq!(eng.stats().committed, 10);
        assert_eq!(eng.stats().rolled_back, 0);
        // One event remains pending past the end time.
        assert_eq!(eng.pending_len(), 1);
        assert!(eng.local_min() > VirtualTime::from_f64(10.0));
    }

    #[test]
    fn deliver_straggler_rolls_back_and_emits_antis() {
        // Two threads: LPs 0,2 on T0 and 1,3 on T1 (round robin).
        let model = Arc::new(Ping { n: 4 });
        let map = LpMap::new(4, 2, crate::mapping::MapKind::RoundRobin);
        let c = cfg(100.0);
        let mut t0 = ThreadEngine::new(Arc::clone(&model), map, SimThreadId(0), &c);
        let mut outbox = Vec::new();

        // Feed LP0 an event at t=5 and let it process (sends to LP1 on T1).
        let mut seq = 1000u64;
        let mut mk = |t: f64, dst: u32| {
            seq += 1;
            Msg::Event(Event {
                key: EventKey {
                    recv_time: VirtualTime::from_f64(t),
                    dst: LpId(dst),
                    uid: crate::ids::EventUid::new(LpId(99), seq),
                },
                send_time: VirtualTime::ZERO,
                payload: 1,
            })
        };
        t0.deliver(mk(5.0, 0), &mut outbox);
        t0.process_batch(8, &mut outbox);
        assert_eq!(outbox.len(), 1, "LP0 sent to LP1 (remote)");
        outbox.clear();

        // Straggler at t=2 for LP0 → rollback of the t=5 execution, one anti.
        let d = t0.deliver(mk(2.0, 0), &mut outbox);
        assert_eq!(d.rolled_back, 1);
        assert_eq!(d.antis, 1);
        assert_eq!(outbox.len(), 1);
        assert!(matches!(outbox[0].1, Msg::Anti(_)));
        assert_eq!(t0.stats().stragglers, 1);
        // Both events (t=2 straggler and re-inserted t=5) now pending.
        assert_eq!(t0.pending_len(), 2);
    }

    #[test]
    fn anti_for_processed_event_causes_inclusive_rollback() {
        let model = Arc::new(Ping { n: 2 });
        let map = LpMap::new(2, 2, crate::mapping::MapKind::RoundRobin);
        let c = cfg(100.0);
        let mut t0 = ThreadEngine::new(Arc::clone(&model), map, SimThreadId(0), &c);
        let mut outbox = Vec::new();

        let ev = Event {
            key: EventKey {
                recv_time: VirtualTime::from_f64(3.0),
                dst: LpId(0),
                uid: crate::ids::EventUid::new(LpId(1), 7),
            },
            send_time: VirtualTime::ZERO,
            payload: 1,
        };
        t0.deliver(Msg::Event(ev.clone()), &mut outbox);
        t0.process_batch(8, &mut outbox);
        assert_eq!(t0.stats().processed, 1);
        outbox.clear();

        let d = t0.deliver(Msg::Anti(ev.key), &mut outbox);
        assert_eq!(d.rolled_back, 1);
        assert!(d.annihilated);
        // The rolled-back event was annihilated, not re-inserted.
        assert_eq!(t0.pending_len(), 0);
        // The anti for LP0→LP1's send goes out.
        assert_eq!(outbox.len(), 1);
    }

    #[test]
    fn anti_for_in_transit_event_parks_and_annihilates() {
        let model = Arc::new(Ping { n: 2 });
        let map = LpMap::new(2, 2, crate::mapping::MapKind::RoundRobin);
        let c = cfg(100.0);
        let mut t0 = ThreadEngine::new(model, map, SimThreadId(0), &c);
        let mut outbox = Vec::new();
        let ev = Event {
            key: EventKey {
                recv_time: VirtualTime::from_f64(3.0),
                dst: LpId(0),
                uid: crate::ids::EventUid::new(LpId(1), 7),
            },
            send_time: VirtualTime::ZERO,
            payload: 1,
        };
        let d = t0.deliver(Msg::Anti(ev.key), &mut outbox);
        assert!(!d.annihilated);
        let d = t0.deliver(Msg::Event(ev), &mut outbox);
        assert!(d.annihilated);
        assert_eq!(t0.pending_len(), 0);
        assert_eq!(t0.stats().annihilations, 1);
    }

    #[test]
    fn fossil_collect_then_finalize_commits_everything_once() {
        let model = Arc::new(Ping { n: 2 });
        let map = LpMap::new(2, 1, crate::mapping::MapKind::RoundRobin);
        let c = cfg(10.0);
        let mut eng = ThreadEngine::new(model, map, SimThreadId(0), &c);
        let mut outbox = Vec::new();
        for (_, msg) in eng.take_init_events() {
            eng.deliver(msg, &mut outbox);
        }
        loop {
            if eng.process_batch(8, &mut outbox).processed == 0 {
                break;
            }
        }
        let early = eng.fossil_collect(VirtualTime::from_f64(5.0));
        assert!(early > 0);
        let rest = eng.finalize();
        assert_eq!(early + rest, eng.stats().committed);
        assert_eq!(eng.stats().committed, eng.stats().processed);
        assert_eq!(eng.history_len(), 0);
    }

    #[test]
    fn snapshot_restore_resumes_identical_run() {
        let model = Arc::new(Ping { n: 4 });
        let map = LpMap::new(4, 1, crate::mapping::MapKind::RoundRobin);
        let c = cfg(10.0);

        // Uninterrupted reference run.
        let reference = single_thread_run(4, 10.0);

        // Interrupted run: process a few batches, checkpoint at GVT = the
        // pending minimum, then throw the engine away.
        let mut eng = ThreadEngine::new(Arc::clone(&model), map.clone(), SimThreadId(0), &c);
        let mut outbox = Vec::new();
        for (_, msg) in eng.take_init_events() {
            eng.deliver(msg, &mut outbox);
        }
        for _ in 0..2 {
            eng.process_batch(2, &mut outbox);
        }
        let gvt = eng.local_min();
        assert!(gvt > VirtualTime::ZERO && gvt < VirtualTime::from_f64(10.0));
        eng.fossil_collect(gvt);
        let (lcks, events) = eng.snapshot_at_gvt(gvt);
        assert_eq!(lcks.len(), 4);
        drop(eng);

        // A fresh engine restored from the checkpoint finishes the run and
        // matches the reference bit-for-bit.
        let mut eng = ThreadEngine::new(model, map, SimThreadId(0), &c);
        eng.restore(&lcks, &events, gvt);
        assert_eq!(
            eng.stats().committed,
            lcks.iter().map(|l| l.committed).sum::<u64>()
        );
        loop {
            if eng.process_batch(8, &mut outbox).processed == 0 {
                break;
            }
        }
        assert!(outbox.is_empty());
        eng.finalize();
        assert_eq!(eng.stats().committed, reference.stats().committed);
        assert_eq!(eng.stats().commit_digest, reference.stats().commit_digest);
        assert_eq!(eng.state_digests(), reference.state_digests());
        assert_eq!(eng.pending_digest(), reference.pending_digest());
    }

    #[test]
    fn copies_cut_events_and_leaves_engine_untouched() {
        // Checkpoint assembly must deep-copy cut-crossing events: the live
        // engine keeps running with the originals (pending events get
        // processed, processed entries back rollbacks), so the cut cannot
        // steal them — and the copies must come out key-sorted even though
        // the pending set iterates unordered.
        let model = Arc::new(Ping { n: 4 });
        let map = LpMap::new(4, 1, crate::mapping::MapKind::RoundRobin);
        let c = cfg(10.0);
        let mut eng = ThreadEngine::new(Arc::clone(&model), map, SimThreadId(0), &c);
        let mut outbox = Vec::new();
        for (_, msg) in eng.take_init_events() {
            eng.deliver(msg, &mut outbox);
        }
        for _ in 0..2 {
            eng.process_batch(2, &mut outbox);
        }
        let gvt = eng.local_min();
        eng.fossil_collect(gvt);
        let before_pending = eng.pending_len();
        let before_history = eng.history_len();
        let before_digest = eng.pending_digest();

        let (_, events) = eng.snapshot_at_gvt(gvt);
        assert!(
            events.windows(2).all(|w| w[0].key < w[1].key),
            "cut events must be key-sorted for a deterministic byte stream"
        );

        // The cut took copies: nothing moved out of the engine...
        assert_eq!(eng.pending_len(), before_pending);
        assert_eq!(eng.history_len(), before_history);
        assert_eq!(eng.pending_digest(), before_digest);

        // ...and the live run continues to completion as if no checkpoint
        // had been taken.
        let reference = single_thread_run(4, 10.0);
        loop {
            if eng.process_batch(8, &mut outbox).processed == 0 {
                break;
            }
        }
        eng.finalize();
        assert_eq!(eng.stats().commit_digest, reference.stats().commit_digest);
        assert_eq!(eng.state_digests(), reference.state_digests());
    }

    #[test]
    fn batch_respects_end_time() {
        let model = Arc::new(Ping { n: 2 });
        let map = LpMap::new(2, 1, crate::mapping::MapKind::RoundRobin);
        let c = cfg(0.5); // end before the first event at t=1
        let mut eng = ThreadEngine::new(model, map, SimThreadId(0), &c);
        let mut outbox = Vec::new();
        for (_, msg) in eng.take_init_events() {
            eng.deliver(msg, &mut outbox);
        }
        let b = eng.process_batch(8, &mut outbox);
        assert_eq!(b.processed, 0);
        assert_eq!(eng.pending_len(), 1);
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::mapping::MapKind;
    use crate::model::SendCtx;

    /// Chain model: one event at t sends the next at t+1 on the same LP.
    struct Chain;
    impl Model for Chain {
        type State = u64;
        type Payload = ();
        fn num_lps(&self) -> usize {
            1
        }
        fn init_state(&self, _lp: LpId) -> u64 {
            0
        }
        fn init_events(&self, lp: LpId, _s: &mut u64, ctx: &mut SendCtx<'_, ()>) {
            ctx.send(lp, 1.0, ());
        }
        fn handle_event(&self, lp: LpId, s: &mut u64, _p: &(), ctx: &mut SendCtx<'_, ()>) {
            *s += 1;
            ctx.send(lp, 1.0, ());
        }
        fn state_digest(&self, s: &u64) -> u64 {
            *s
        }
    }

    fn engine(window: Option<f64>) -> ThreadEngine<Chain> {
        let cfg = EngineConfig::default()
            .with_end_time(100.0)
            .with_optimism_window(window);
        let map = LpMap::new(1, 1, MapKind::RoundRobin);
        let mut eng = ThreadEngine::new(Arc::new(Chain), map, SimThreadId(0), &cfg);
        let mut outbox = Vec::new();
        for (_, msg) in eng.take_init_events() {
            eng.deliver(msg, &mut outbox);
        }
        eng
    }

    #[test]
    fn unbounded_engine_races_ahead() {
        let mut eng = engine(None);
        let mut outbox = Vec::new();
        for _ in 0..10 {
            eng.process_batch(8, &mut outbox);
        }
        assert_eq!(eng.stats().processed, 80, "no throttle: full batches");
    }

    #[test]
    fn window_throttles_past_gvt() {
        // Window of 3 time units, GVT at 0: only events at t ≤ 3 process.
        let mut eng = engine(Some(3.0));
        let mut outbox = Vec::new();
        for _ in 0..10 {
            eng.process_batch(8, &mut outbox);
        }
        assert_eq!(eng.stats().processed, 3, "t = 1, 2, 3 only");
        // GVT advances → the horizon moves.
        eng.fossil_collect(VirtualTime::from_f64(4.0));
        for _ in 0..10 {
            eng.process_batch(8, &mut outbox);
        }
        assert_eq!(eng.stats().processed, 7, "now up to t = 4 + 3");
    }

    #[test]
    fn window_never_blocks_the_gvt_frontier() {
        // Even with an absurdly small window the event *at* the horizon is
        // processable, so progress is guaranteed.
        let mut eng = engine(Some(1.0));
        let mut outbox = Vec::new();
        for round in 1..20u64 {
            eng.process_batch(8, &mut outbox);
            eng.fossil_collect(eng.local_min());
            assert!(
                eng.stats().processed >= round.min(19),
                "round {round}: {}",
                eng.stats().processed
            );
        }
    }
}
