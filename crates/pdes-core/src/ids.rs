//! Identifier newtypes for logical processes, simulation threads, and events.

use serde::{Deserialize, Serialize};

/// Identifier of a Logical Process (LP). LPs are numbered densely `0..num_lps`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LpId(pub u32);

impl LpId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LP{}", self.0)
    }
}

/// Identifier of a simulation thread. Threads are numbered densely
/// `0..num_threads`; each serves a fixed set of LPs (round-robin mapping).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimThreadId(pub u32);

impl SimThreadId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SimThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Globally unique event identity: the sending LP plus a per-LP sequence
/// number. The sequence counter is part of the LP's rolled-back state, so a
/// re-executed send after a rollback reuses the same `EventUid` — which is
/// exactly what makes anti-message matching work.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct EventUid {
    /// LP that sent (or scheduled) the event. Initial events use the
    /// destination LP as the "sender".
    pub src: LpId,
    /// Per-source-LP sequence number.
    pub seq: u64,
}

impl EventUid {
    #[inline]
    pub fn new(src: LpId, seq: u64) -> Self {
        EventUid { src, seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(LpId(3).to_string(), "LP3");
        assert_eq!(SimThreadId(7).to_string(), "T7");
    }

    #[test]
    fn uid_ordering_is_src_then_seq() {
        let a = EventUid::new(LpId(1), 9);
        let b = EventUid::new(LpId(2), 0);
        assert!(a < b);
        let c = EventUid::new(LpId(1), 10);
        assert!(a < c);
    }
}
