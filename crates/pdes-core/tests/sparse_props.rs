//! Property tests of sparse (periodic) state saving against the dense
//! copy-state-saving oracle.
//!
//! The contract under test: an LP running with `snapshot_period = k` is
//! *observationally indistinguishable* from one running with `k = 1` —
//! after any rollback the restored state, RNG stream, and send-sequence
//! counter are byte-identical, and the rollback itself reports the same
//! undone events and anti-messages. The schedule space includes the two
//! edge cases that historically break sparse saving implementations:
//! rollback all the way to the base snapshot (entry 0), and rollback to
//! the first retained entry right after a fossil cut (whose snapshot was
//! materialized by replay rather than recorded at process time).

use pdes_core::lp::Lp;
use pdes_core::{Event, EventKey, EventUid, LpId, Model, SendCtx, VirtualTime};
use proptest::prelude::*;

/// Handler with data-dependent RNG draws, state mutation, and fan-out
/// sends — any divergence between replayed and original execution shows
/// up in all three observables.
struct Churn;
impl Model for Churn {
    type State = Vec<u64>;
    type Payload = u32;
    fn num_lps(&self) -> usize {
        4
    }
    fn init_state(&self, _lp: LpId) -> Vec<u64> {
        vec![0xC0FFEE]
    }
    fn init_events(&self, _lp: LpId, _s: &mut Vec<u64>, _ctx: &mut SendCtx<'_, u32>) {}
    fn handle_event(&self, _lp: LpId, s: &mut Vec<u64>, p: &u32, ctx: &mut SendCtx<'_, u32>) {
        let draws = (ctx.rng().next_below(3) + 1) as usize;
        for _ in 0..draws {
            let x = ctx.rng().next_below(u32::MAX as u64);
            s.push(x ^ (*p as u64));
            let dst = LpId(ctx.rng().next_below(4) as u32);
            let d = 0.1 + ctx.rng().next_f64();
            ctx.send(dst, d, p + 1);
        }
        if s.len() > 8 {
            s.remove(0);
        }
    }
    fn state_digest(&self, s: &Vec<u64>) -> u64 {
        s.iter().fold(0u64, |a, &x| a.rotate_left(7) ^ x)
    }
}

fn ev(i: usize) -> Event<u32> {
    Event {
        key: EventKey {
            recv_time: VirtualTime::from_f64(i as f64 + 1.0),
            dst: LpId(1),
            uid: EventUid::new(LpId(0), i as u64),
        },
        send_time: VirtualTime::ZERO,
        payload: i as u32,
    }
}

proptest! {
    /// Dense (k=1) and sparse (k) LPs fed the same schedule — n events, an
    /// optional fossil cut, then a rollback to an arbitrary surviving depth
    /// — agree byte-for-byte on restored state, RNG, send counter, the
    /// rollback's reinserted events and antis, and the final committed
    /// digest after replaying the undone suffix.
    ///
    /// `fossil_at = 0` covers rollback-to-base-0 (no commit, restore from
    /// the very first snapshot); `target = fossil_at` covers
    /// rollback-across-the-fossil-boundary (the replay base is the
    /// snapshot `fossil_collect` materialized, not a recorded one).
    #[test]
    fn sparse_rollback_matches_dense_oracle(
        seed in any::<u64>(),
        n in 2usize..24,
        period in 2u32..9,
        fossil_frac in 0.0f64..1.0,
        target_frac in 0.0f64..1.0,
    ) {
        let m = Churn;
        // Fossil cut commits events [0, fossil_at); the rollback targets
        // events [target, n), which must survive the cut.
        let fossil_at = (fossil_frac * n as f64) as usize; // 0..n
        let target = fossil_at + (target_frac * (n - fossil_at) as f64) as usize;
        prop_assume!(target < n);

        let mut dense: Lp<Churn> = Lp::with_snapshot_period(&m, LpId(1), seed, 1);
        let mut sparse: Lp<Churn> = Lp::with_snapshot_period(&m, LpId(1), seed, period);

        let mut dense_sends = Vec::new();
        let mut sparse_sends = Vec::new();
        for i in 0..n {
            dense.process_into(&m, ev(i), &mut dense_sends);
            sparse.process_into(&m, ev(i), &mut sparse_sends);
        }
        prop_assert_eq!(&dense_sends, &sparse_sends, "forward sends diverge");

        if fossil_at > 0 {
            // Cut strictly below event `fossil_at`'s receive time.
            let gvt = ev(fossil_at).key.recv_time;
            let cd = dense.fossil_collect(&m, gvt);
            let cs = sparse.fossil_collect(&m, gvt);
            prop_assert_eq!(cd, cs, "commit counts diverge at the cut");
        }

        // Roll back events [target, n) — inclusive of `target` itself.
        let rb_d = dense.rollback(&m, &ev(target).key, true);
        let rb_s = sparse.rollback(&m, &ev(target).key, true);
        prop_assert_eq!(rb_d.undone, n - target);
        prop_assert_eq!(rb_s.undone, n - target);
        prop_assert_eq!(&rb_d.reinserted, &rb_s.reinserted, "reinserted events diverge");
        prop_assert_eq!(&rb_d.antis, &rb_s.antis, "anti-messages diverge");

        // Restored execution context is byte-identical.
        prop_assert_eq!(&dense.state, &sparse.state, "restored state diverges");
        prop_assert_eq!(&dense.rng, &sparse.rng, "restored RNG diverges");
        prop_assert_eq!(dense.send_seq, sparse.send_seq, "send counter diverges");

        // Replaying the undone suffix reconverges to the original run.
        let mut rd = Vec::new();
        let mut rs = Vec::new();
        for e in rb_d.reinserted {
            dense.process_into(&m, e, &mut rd);
        }
        for e in rb_s.reinserted {
            sparse.process_into(&m, e, &mut rs);
        }
        prop_assert_eq!(&rd, &rs, "replayed sends diverge");
        dense.commit_all(&m);
        sparse.commit_all(&m);
        prop_assert_eq!(&dense.state, &sparse.state, "final state diverges");
        prop_assert_eq!(dense.commit_digest, sparse.commit_digest);
        prop_assert_eq!(dense.committed, sparse.committed);
    }

    /// Interleaved rollback storms: several rollback/replay cycles at
    /// decreasing-then-increasing depths with fossil cuts between them,
    /// sparse vs dense, each cycle checked for byte-identity.
    #[test]
    fn repeated_rollbacks_stay_byte_identical(
        seed in any::<u64>(),
        period in 2u32..9,
        depths in prop::collection::vec((0usize..12, any::<bool>()), 1..6),
    ) {
        let m = Churn;
        let n = 12usize;
        let mut dense: Lp<Churn> = Lp::with_snapshot_period(&m, LpId(1), seed, 1);
        let mut sparse: Lp<Churn> = Lp::with_snapshot_period(&m, LpId(1), seed, period);
        let mut buf_d = Vec::new();
        let mut buf_s = Vec::new();
        for i in 0..n {
            dense.process_into(&m, ev(i), &mut buf_d);
            sparse.process_into(&m, ev(i), &mut buf_s);
        }

        let mut committed_below = 0usize;
        for (raw, fossil_first) in depths {
            if fossil_first && committed_below + 1 < n {
                committed_below += 1;
                let gvt = ev(committed_below).key.recv_time;
                let cd = dense.fossil_collect(&m, gvt);
                prop_assert_eq!(cd, sparse.fossil_collect(&m, gvt));
            }
            // Rollback depth clamped to the uncommitted tail.
            let target = committed_below + raw % (n - committed_below);
            let rb_d = dense.rollback(&m, &ev(target).key, true);
            let rb_s = sparse.rollback(&m, &ev(target).key, true);
            prop_assert_eq!(&rb_d.antis, &rb_s.antis);
            prop_assert_eq!(&dense.state, &sparse.state);
            prop_assert_eq!(&dense.rng, &sparse.rng);
            prop_assert_eq!(dense.send_seq, sparse.send_seq);
            for e in rb_d.reinserted {
                dense.process_into(&m, e, &mut buf_d);
            }
            for e in rb_s.reinserted {
                sparse.process_into(&m, e, &mut buf_s);
            }
            buf_d.clear();
            buf_s.clear();
        }
        dense.commit_all(&m);
        sparse.commit_all(&m);
        prop_assert_eq!(&dense.state, &sparse.state);
        prop_assert_eq!(dense.commit_digest, sparse.commit_digest);
    }
}
