//! Property-based tests of the Time Warp core data structures.

use pdes_core::pending::{CancelOutcome, InsertOutcome, PendingSet};
use pdes_core::{
    Event, EventKey, EventUid, LpId, LpMap, MapKind, Model, SendCtx, SimThreadId, VirtualTime,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_key() -> impl Strategy<Value = EventKey> {
    (0u64..1000, 0u32..8, 0u32..8, 0u64..64).prop_map(|(t, dst, src, seq)| EventKey {
        recv_time: VirtualTime::from_ticks(t),
        dst: LpId(dst),
        uid: EventUid::new(LpId(src), seq),
    })
}

#[derive(Debug, Clone)]
enum PendingOp {
    Insert(EventKey),
    Cancel(EventKey),
    PopMin,
}

fn arb_ops() -> impl Strategy<Value = Vec<PendingOp>> {
    prop::collection::vec(
        prop_oneof![
            arb_key().prop_map(PendingOp::Insert),
            arb_key().prop_map(PendingOp::Cancel),
            Just(PendingOp::PopMin),
        ],
        0..200,
    )
}

proptest! {
    /// The pending set behaves exactly like a reference model built on a
    /// `BTreeMap` plus an orphan-anti set, under arbitrary operation
    /// sequences (duplicate inserts/cancels are skipped, as the engine
    /// never produces them).
    #[test]
    fn pending_set_matches_reference_model(ops in arb_ops()) {
        let mut sut: PendingSet<u32> = PendingSet::new();
        let mut model: BTreeMap<EventKey, u32> = BTreeMap::new();
        let mut antis: std::collections::BTreeSet<EventKey> = Default::default();

        for op in ops {
            match op {
                PendingOp::Insert(k) => {
                    if model.contains_key(&k) || antis.contains(&k) {
                        continue; // engine never re-inserts a live key
                    }
                    let ev = Event { key: k, send_time: VirtualTime::ZERO, payload: 1 };
                    // Reference: an orphan anti annihilates on arrival.
                    let expect = InsertOutcome::Inserted;
                    let got = sut.insert(ev);
                    prop_assert_eq!(got, expect);
                    model.insert(k, 1);
                }
                PendingOp::Cancel(k) => {
                    if antis.contains(&k) {
                        continue; // engine never double-cancels
                    }
                    let got = sut.cancel(&k);
                    if model.remove(&k).is_some() {
                        prop_assert_eq!(got, CancelOutcome::Removed);
                    } else {
                        prop_assert_eq!(got, CancelOutcome::Deferred);
                        antis.insert(k);
                    }
                }
                PendingOp::PopMin => {
                    let got = sut.pop_min().map(|e| e.key);
                    let expect = model.keys().next().copied();
                    if let Some(k) = expect {
                        model.remove(&k);
                    }
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(sut.len(), model.len());
            prop_assert_eq!(sut.orphan_antis(), antis.len());
            prop_assert_eq!(
                sut.min_time(),
                model.keys().next().map(|k| k.recv_time).unwrap_or(VirtualTime::INFINITY)
            );
        }
    }

    /// Orphan antis annihilate the positive on arrival.
    #[test]
    fn orphan_anti_then_insert_annihilates(k in arb_key()) {
        let mut ps: PendingSet<u8> = PendingSet::new();
        prop_assert_eq!(ps.cancel(&k), CancelOutcome::Deferred);
        let ev = Event { key: k, send_time: VirtualTime::ZERO, payload: 0 };
        prop_assert_eq!(ps.insert(ev), InsertOutcome::Annihilated);
        prop_assert!(ps.is_empty());
        prop_assert_eq!(ps.orphan_antis(), 0);
    }

    /// Every LP has exactly one owning thread under both mappings, and
    /// `lps_of` inverts `thread_of`.
    #[test]
    fn lp_map_partition(nl in 1usize..200, nt in 1usize..16) {
        prop_assume!(nl >= nt);
        for kind in [MapKind::RoundRobin, MapKind::Block] {
            let map = LpMap::new(nl, nt, kind);
            let mut seen = vec![false; nl];
            for t in 0..nt {
                for lp in map.lps_of(SimThreadId(t as u32)) {
                    prop_assert!(!seen[lp.index()]);
                    seen[lp.index()] = true;
                    prop_assert_eq!(map.thread_of(lp), SimThreadId(t as u32));
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}

/// A model whose handler draws randomness and sends fan-out events — used
/// to prove rollback/re-execution identity.
struct FanOut;
impl Model for FanOut {
    type State = Vec<u64>;
    type Payload = u32;
    fn num_lps(&self) -> usize {
        4
    }
    fn init_state(&self, _lp: LpId) -> Vec<u64> {
        Vec::new()
    }
    fn init_events(&self, _lp: LpId, _s: &mut Vec<u64>, _ctx: &mut SendCtx<'_, u32>) {}
    fn handle_event(&self, _lp: LpId, s: &mut Vec<u64>, p: &u32, ctx: &mut SendCtx<'_, u32>) {
        let draws = (ctx.rng().next_below(3) + 1) as usize;
        for _ in 0..draws {
            s.push(ctx.rng().next_u64_pub());
            let dst = LpId(ctx.rng().next_below(4) as u32);
            let d = 0.1 + ctx.rng().next_f64();
            ctx.send(dst, d, p + 1);
        }
    }
    fn state_digest(&self, s: &Vec<u64>) -> u64 {
        s.iter().fold(0u64, |a, &x| a.rotate_left(7) ^ x)
    }
}

trait RngPub {
    fn next_u64_pub(&mut self) -> u64;
}
impl RngPub for pdes_core::DetRng {
    fn next_u64_pub(&mut self) -> u64 {
        use rand::Rng as _;
        self.next_u64()
    }
}

proptest! {
    /// Rollback + re-execution is an identity: undoing a suffix of the
    /// processed events and replaying the same events yields the same
    /// state, same RNG stream, and identical re-sent events.
    #[test]
    fn rollback_replay_identity(seed in any::<u64>(), n in 1usize..12, cut in 0usize..12) {
        prop_assume!(cut < n);
        let model = FanOut;
        let mut lp = pdes_core::lp::Lp::new(&model, LpId(1), seed);
        let mut rng = pdes_core::DetRng::seed_from_u64(seed ^ 0xABCD);
        let events: Vec<Event<u32>> = (0..n)
            .map(|i| Event {
                key: EventKey {
                    recv_time: VirtualTime::from_f64(i as f64 + rng.next_f64()),
                    dst: LpId(1),
                    uid: EventUid::new(LpId(0), i as u64),
                },
                send_time: VirtualTime::ZERO,
                payload: i as u32,
            })
            .collect();

        let mut sends_first: Vec<Vec<EventKey>> = Vec::new();
        for e in &events {
            let out = lp.process(&model, e.clone());
            sends_first.push(out.iter().map(|e| e.key).collect());
        }
        let digest_before = model.state_digest(&lp.state);

        // Roll back everything from `cut` onwards…
        let rb = lp.rollback(&model, &events[cut].key, true);
        prop_assert_eq!(rb.undone, n - cut);
        // …and replay.
        for (i, e) in events.iter().enumerate().skip(cut) {
            let out = lp.process(&model, e.clone());
            let keys: Vec<EventKey> = out.iter().map(|e| e.key).collect();
            prop_assert_eq!(&keys, &sends_first[i], "event {} resent differently", i);
        }
        prop_assert_eq!(model.state_digest(&lp.state), digest_before);
    }
}
