//! Property-based serde round-trips for the recovery artifacts: arbitrary
//! [`Checkpoint`]s and [`FaultPlan`]s survive a JSON round trip bit-for-bit,
//! and *any* strict prefix of a checkpoint file parses to a clear
//! [`CheckpointError::Corrupt`] — never a panic, never a silently wrong cut.

use pdes_core::faults::{
    BackpressureFault, DelayFault, FaultCursor, FaultKind, LinkDelayFault, LinkDropFault,
    LinkDupFault, LinkFaultPlan, ReorderFault, StragglerFault, WakeupFault,
};
use pdes_core::{
    Checkpoint, CheckpointError, DetRng, Event, EventKey, EventUid, FaultPlan, LpCheckpoint, LpId,
    LpMap, MapKind, VirtualTime,
};
use proptest::prelude::*;

fn arb_rng() -> impl Strategy<Value = DetRng> {
    (any::<u64>(), 0usize..32).prop_map(|(seed, advance)| {
        let mut rng = DetRng::seed_from_u64(seed);
        for _ in 0..advance {
            rng.next_f64(); // move the stream position off the seed point
        }
        rng
    })
}

fn arb_lp_ckpt() -> impl Strategy<Value = LpCheckpoint<u64>> {
    (
        (0u32..64, any::<u64>(), arb_rng()),
        (any::<u64>(), 0u64..10_000, any::<u64>(), 0u64..1_000_000),
    )
        .prop_map(
            |((lp, state, rng), (send_seq, committed, commit_digest, lvt))| LpCheckpoint {
                lp: LpId(lp),
                state,
                rng,
                send_seq,
                committed,
                commit_digest,
                lvt: VirtualTime::from_ticks(lvt),
            },
        )
}

fn arb_event() -> impl Strategy<Value = Event<u32>> {
    (0u64..1000, 0u32..64, 0u32..64, 0u64..256, any::<u32>()).prop_map(
        |(t, dst, src, seq, payload)| Event {
            key: EventKey {
                recv_time: VirtualTime::from_ticks(t + 1),
                dst: LpId(dst),
                uid: EventUid::new(LpId(src), seq),
            },
            send_time: VirtualTime::from_ticks(t),
            payload,
        },
    )
}

fn arb_cursor() -> impl Strategy<Value = FaultCursor> {
    (
        prop::collection::vec(any::<u64>(), 0..12),
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(any::<bool>(), 0..6),
    )
        .prop_map(|(seq, storms_left, lost_left, kills_fired)| FaultCursor {
            seq,
            storms_left,
            lost_left,
            kills_fired,
        })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint<u64, u32>> {
    (
        0u64..1_000_000,
        any::<u64>(),
        prop::collection::vec(arb_lp_ckpt(), 1..12),
        prop::collection::vec(arb_event(), 0..16),
        (1usize..64, 1usize..8),
        prop::option::of(arb_cursor()),
    )
        .prop_map(|(gvt, gvt_rounds, lps, events, (nl, nt), cursor)| {
            let (nl, nt) = (nl.max(nt), nt);
            Checkpoint {
                gvt: VirtualTime::from_ticks(gvt),
                gvt_rounds,
                lps,
                events,
                map: LpMap::new(nl, nt, MapKind::RoundRobin),
                cursor,
            }
        })
}

fn arb_kills() -> impl Strategy<Value = Vec<FaultKind>> {
    prop::collection::vec(
        (0usize..16, 0u64..10_000)
            .prop_map(|(thread, at_cycle)| FaultKind::WorkerKill { thread, at_cycle }),
        0..6,
    )
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (
            any::<u64>(),
            prop::option::of((0.0f64..1.0).prop_map(|prob| DelayFault { prob })),
            prop::option::of((0.0f64..1.0).prop_map(|prob| ReorderFault { prob })),
        ),
        (
            prop::option::of(
                (0.0f64..1.0, 0u64..100)
                    .prop_map(|(prob, max_storms)| StragglerFault { prob, max_storms }),
            ),
            prop::option::of((0.0f64..0.5, 0.0f64..0.5, 0u64..100).prop_map(
                |(lose_prob, spurious_prob, max_lost)| WakeupFault {
                    lose_prob,
                    spurious_prob,
                    max_lost,
                },
            )),
            prop::option::of(
                (1usize..1024, 0u32..16).prop_map(|(capacity, max_retries)| BackpressureFault {
                    capacity,
                    max_retries,
                }),
            ),
            prop::option::of(arb_kills()),
            prop::option::of(arb_link_plan()),
        ),
    )
        .prop_map(
            |((seed, delay, reorder), (straggler, wakeup, backpressure, kills, link))| FaultPlan {
                seed,
                delay,
                reorder,
                straggler,
                wakeup,
                backpressure,
                kills,
                link,
            },
        )
}

fn arb_link_plan() -> impl Strategy<Value = LinkFaultPlan> {
    (
        any::<u64>(),
        prop::option::of(
            (0.0f64..1.0, 1u32..8).prop_map(|(prob, max_pumps)| LinkDelayFault { prob, max_pumps }),
        ),
        prop::option::of(
            (0.0f64..1.0, 0u64..1000)
                .prop_map(|(prob, max_drops)| LinkDropFault { prob, max_drops }),
        ),
        prop::option::of(
            (0.0f64..1.0, 0u64..1000).prop_map(|(prob, max_dups)| LinkDupFault { prob, max_dups }),
        ),
    )
        .prop_map(|(seed, delay, drop, duplicate)| LinkFaultPlan {
            seed,
            delay,
            drop,
            duplicate,
        })
}

proptest! {
    /// Any checkpoint survives a JSON round trip exactly, including the
    /// RNG stream positions and the fault cursor.
    #[test]
    fn checkpoint_json_round_trips(ck in arb_checkpoint()) {
        let back = Checkpoint::<u64, u32>::from_json(&ck.to_json())
            .expect("serialized checkpoint must parse");
        prop_assert_eq!(&back, &ck);
        prop_assert_eq!(back.total_committed(), ck.total_committed());
        prop_assert_eq!(back.commit_digest(), ck.commit_digest());
    }

    /// `write_atomic` + `read` is a lossless disk round trip.
    #[test]
    fn checkpoint_disk_round_trips(ck in arb_checkpoint(), tag in 0u64..1024) {
        let dir = std::env::temp_dir().join("ggpdes-ckpt-prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("prop-{tag}.ckpt"));
        ck.write_atomic(&path).expect("write");
        let back = Checkpoint::<u64, u32>::read(&path).expect("read");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, ck);
    }

    /// Any *strict* prefix of a checkpoint file — a torn or truncated write
    /// — is rejected as `Corrupt` with a non-empty detail, never a panic
    /// and never a silently shortened checkpoint.
    #[test]
    fn truncated_checkpoint_is_corrupt(ck in arb_checkpoint(), frac in 0.0f64..1.0) {
        let full = ck.to_json();
        let cut = ((full.len() as f64 * frac) as usize).min(full.len() - 1);
        // Cut on a char boundary (the JSON here is ASCII, but stay safe).
        let mut cut = cut;
        while !full.is_char_boundary(cut) {
            cut -= 1;
        }
        let dir = std::env::temp_dir().join("ggpdes-ckpt-prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trunc-{}.ckpt", full.len()));
        std::fs::write(&path, &full[..cut]).unwrap();
        let got = Checkpoint::<u64, u32>::read(&path);
        std::fs::remove_file(&path).ok();
        match got {
            Err(CheckpointError::Corrupt { detail, .. }) => prop_assert!(!detail.is_empty()),
            other => prop_assert!(false, "expected Corrupt, got {:?}", other.map(|c| c.gvt)),
        }
    }

    /// Any fault plan — probabilistic chaos plus scripted kills — survives
    /// a JSON round trip exactly, so `--chaos-plan` files and the fault
    /// cursor embedded in checkpoints are faithful.
    #[test]
    fn fault_plan_json_round_trips(plan in arb_plan()) {
        let text = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&text).expect("parse");
        prop_assert_eq!(back, plan);
    }

    /// The chaos preset itself round-trips (the form users generate with
    /// `--chaos-seed` and then tweak by hand).
    #[test]
    fn chaos_preset_round_trips(seed in any::<u64>(), thread in 0usize..8, cycle in 1u64..500) {
        let plan = FaultPlan::chaos(seed).with_kill(thread, cycle);
        let text = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&text).expect("parse");
        prop_assert_eq!(back, plan);
    }
}
