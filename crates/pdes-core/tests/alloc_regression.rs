//! Allocation regression gate for the per-event hot path.
//!
//! The sequential engine loop (pop-min → `process_into` → re-insert sends
//! → lazy fossil) is the distilled hot path every runtime shares: after
//! warmup, all its buffers — the reused send vector, the pending set's
//! heap and index, the LP's processed deque, and the pooled sent-key
//! lists — have reached steady-state capacity, so processing one more
//! event must hit the heap **zero** times. This test locks that in with
//! a counting global allocator: any future change that re-introduces a
//! per-event allocation (a clone on the snapshot path, a fresh `Vec` per
//! handler call, a map that grows per insert) fails here with a count,
//! not as a silent throughput regression.
//!
//! Kept as its own integration binary so the `#[global_allocator]` swap
//! cannot perturb (or be perturbed by) unrelated tests.

use pdes_core::lp::{key_digest, Lp};
use pdes_core::pending::PendingSet;
use pdes_core::{Event, LpId, Model, SendCtx, VirtualTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation *and* reallocation (a growing `Vec` is as much
/// a hot-path regression as a fresh one). Frees are not counted: dropping
/// a warmup-phase buffer during measurement is harmless.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Ring model with heap-free state: every event mutates a `u64`, draws
/// from the RNG, and forwards exactly one event — constant population,
/// the same shape as the phold hot path.
struct Ring {
    n: usize,
}
impl Model for Ring {
    type State = u64;
    type Payload = ();
    fn num_lps(&self) -> usize {
        self.n
    }
    fn init_state(&self, _lp: LpId) -> u64 {
        0
    }
    fn init_events(&self, lp: LpId, _s: &mut u64, ctx: &mut SendCtx<'_, ()>) {
        let d = 0.5 + ctx.rng().next_f64();
        ctx.send(lp, d, ());
    }
    fn handle_event(&self, lp: LpId, s: &mut u64, _p: &(), ctx: &mut SendCtx<'_, ()>) {
        *s = s.wrapping_add(1);
        let d = 0.5 + ctx.rng().next_f64();
        ctx.send(LpId((lp.0 + 1) % self.n as u32), d, ());
    }
    fn state_digest(&self, s: &u64) -> u64 {
        *s
    }
}

/// Drive `count` events through the sequential hot-path loop (the same
/// shape as `finish_sequential`), returning the commit-digest fold so the
/// work cannot be optimized away.
fn pump(
    model: &Ring,
    lps: &mut [Lp<Ring>],
    pending: &mut PendingSet<()>,
    sends: &mut Vec<Event<()>>,
    count: u64,
) -> u64 {
    let mut digest = 0u64;
    for _ in 0..count {
        let ev = pending.pop_min().expect("ring population is constant");
        let key = ev.key;
        let lp = &mut lps[key.dst.index()];
        sends.clear();
        lp.process_into(model, ev, sends);
        for sent in sends.drain(..) {
            pending.insert(sent);
        }
        digest ^= key_digest(&key);
        if lp.history_len() >= 32 {
            lp.fossil_collect(model, VirtualTime::INFINITY);
        }
    }
    digest
}

#[test]
fn steady_state_event_loop_does_not_allocate() {
    let model = Ring { n: 8 };
    let mut lps: Vec<Lp<Ring>> = (0..model.n)
        .map(|i| Lp::with_snapshot_period(&model, LpId(i as u32), 42, 4))
        .collect();
    let mut pending: PendingSet<()> = PendingSet::new();
    for lp in &mut lps {
        for ev in lp.init_events(&model) {
            pending.insert(ev);
        }
    }
    let mut sends: Vec<Event<()>> = Vec::new();

    // Warmup: let every buffer, pool, and map reach steady-state capacity.
    // 5000 events ≈ 150 fossil cycles per LP — far past any growth curve.
    let warm_digest = pump(&model, &mut lps, &mut pending, &mut sends, 5000);
    assert_ne!(warm_digest, 0, "warmup actually processed events");

    let before = ALLOCS.load(Ordering::Relaxed);
    let digest = pump(&model, &mut lps, &mut pending, &mut sends, 2000);
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_ne!(digest, 0, "measured phase actually processed events");
    assert_eq!(
        after - before,
        0,
        "hot path allocated {} times across 2000 steady-state events \
         (expected zero: every per-event buffer must be reused)",
        after - before
    );
}
