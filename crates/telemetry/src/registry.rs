//! The per-run telemetry registry: tracer hand-out, trace collection, and
//! per-GVT-round counter snapshots.

use crate::config::TelemetryConfig;
use crate::event::{EventKind, TraceRecord};
use crate::ring::TraceRing;
use parking_lot::Mutex;
use pdes_core::RoundCounters;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A per-thread tracing handle. Owned exclusively by its simulation thread;
/// every record call is lock-free (a branch plus a ring store). A disabled
/// tracer carries no ring and every call is a single predictable branch.
#[derive(Debug)]
pub struct Tracer {
    tid: usize,
    ring: Option<TraceRing>,
}

impl Tracer {
    /// A no-op tracer (what disabled telemetry hands out).
    pub fn disabled() -> Self {
        Tracer { tid: 0, ring: None }
    }

    /// Whether record calls actually store anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Record an instant event at `ts_ns`.
    #[inline]
    pub fn instant(&mut self, kind: EventKind, ts_ns: u64, arg: u64) {
        if let Some(r) = &mut self.ring {
            r.push(TraceRecord {
                kind,
                ts_ns,
                dur_ns: 0,
                arg,
            });
        }
    }

    /// Record a span covering `[start_ns, end_ns]`.
    #[inline]
    pub fn span(&mut self, kind: EventKind, start_ns: u64, end_ns: u64, arg: u64) {
        if let Some(r) = &mut self.ring {
            r.push(TraceRecord {
                kind,
                ts_ns: start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
                arg,
            });
        }
    }

    fn into_trace(self) -> Option<ThreadTrace> {
        let ring = self.ring?;
        Some(ThreadTrace {
            tid: self.tid,
            shard: 0,
            emitted: ring.emitted(),
            dropped: ring.dropped(),
            records: ring.drain(),
        })
    }
}

/// One thread's collected trace (records oldest → newest, plus the ring's
/// accounting so consumers can tell when the window was clipped).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThreadTrace {
    pub tid: usize,
    /// Producing shard (0 outside `dist-rt`; stamped at coordinator merge).
    pub shard: u64,
    /// Records ever emitted by the thread.
    pub emitted: u64,
    /// Records the ring overwrote (`emitted - records.len()`).
    pub dropped: u64,
    pub records: Vec<TraceRecord>,
}

/// Everything one run (or one shard) traced: per-thread records plus the
/// per-GVT-round counter stream. Serializable so `dist-rt` shards can ship
/// it to the coordinator through the wire codec.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TelemetryData {
    pub threads: Vec<ThreadTrace>,
    pub rounds: Vec<RoundCounters>,
}

/// Shift `ts` by a signed clock offset, saturating at the u64 range.
fn shift(ts: u64, offset_ns: i64) -> u64 {
    if offset_ns >= 0 {
        ts.saturating_add(offset_ns as u64)
    } else {
        ts.saturating_sub(offset_ns.unsigned_abs())
    }
}

impl TelemetryData {
    /// Merge a shard's collected data into this (coordinator-side) set:
    /// stamp every thread trace and round snapshot with `shard` and map its
    /// timestamps onto the coordinator clock with `offset_ns` (estimated as
    /// `coordinator_now − shard_send_time`, i.e. assuming the forwarding
    /// frame's one-way latency is small against the trace horizon).
    pub fn merge_shard(&mut self, mut other: TelemetryData, shard: u64, offset_ns: i64) {
        for t in &mut other.threads {
            t.shard = shard;
            for r in &mut t.records {
                r.ts_ns = shift(r.ts_ns, offset_ns);
            }
        }
        for rc in &mut other.rounds {
            rc.shard = shard;
            rc.ts_ns = shift(rc.ts_ns, offset_ns);
        }
        self.threads.extend(other.threads);
        self.rounds.extend(other.rounds);
    }

    /// The newest round snapshot (globally, by close timestamp).
    pub fn last_round(&self) -> Option<&RoundCounters> {
        self.rounds.iter().max_by_key(|r| (r.ts_ns, r.round))
    }

    /// Total records dropped across all thread rings.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }
}

/// Cumulative run totals at one round's End phase, as sampled by whichever
/// thread closed the round. [`Telemetry::record_round`] turns consecutive
/// totals into per-round deltas.
#[derive(Debug, Clone, Default)]
pub struct RoundTotals {
    pub round: u64,
    pub gvt_ticks: u64,
    pub ts_ns: u64,
    pub committed: u64,
    pub processed: u64,
    pub rolled_back: u64,
    pub active_threads: usize,
    /// Cluster membership size at the round close (live shards in dist-rt).
    pub members: u64,
    pub lvt_ticks: Vec<u64>,
    pub queue_depths: Vec<usize>,
    /// Cumulative ingest-gate counters at the round close
    /// (admitted, rejected, shed, busy). Zero when the run has no gate.
    pub ingest: (u64, u64, u64, u64),
}

#[derive(Default)]
struct Inner {
    threads: Vec<ThreadTrace>,
    rounds: Vec<RoundCounters>,
    prev: (u64, u64, u64), // cumulative (committed, processed, rolled_back)
    prev_ingest: (u64, u64, u64, u64), // cumulative (admitted, rejected, shed, busy)
}

/// The per-run registry. Cheap to share (`Arc`); all methods that touch the
/// mutex run off the simulation hot path (thread exit, round End).
pub struct Telemetry {
    cfg: TelemetryConfig,
    inner: Mutex<Inner>,
}

impl Telemetry {
    pub fn new(cfg: TelemetryConfig) -> Arc<Self> {
        Arc::new(Telemetry {
            cfg,
            inner: Mutex::new(Inner::default()),
        })
    }

    /// A registry that records nothing.
    pub fn off() -> Arc<Self> {
        Self::new(TelemetryConfig::default())
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Hand out thread `tid`'s tracer (a no-op tracer when disabled).
    pub fn tracer(&self, tid: usize) -> Tracer {
        if !self.cfg.enabled {
            return Tracer::disabled();
        }
        Tracer {
            tid,
            ring: Some(TraceRing::new(self.cfg.capacity)),
        }
    }

    /// Collect a finished thread's tracer (thread exit; off the hot path).
    pub fn deposit(&self, tracer: Tracer) {
        if let Some(trace) = tracer.into_trace() {
            let mut g = self.inner.lock();
            g.threads.push(trace);
        }
    }

    /// Record one GVT round from **cumulative** totals; the delta against
    /// the previous call is computed here, behind the mutex.
    pub fn record_round(&self, t: RoundTotals) {
        if !self.cfg.enabled {
            return;
        }
        let mut g = self.inner.lock();
        let (pc, pp, pr) = g.prev;
        g.prev = (t.committed, t.processed, t.rolled_back);
        let (pa, prj, psh, pb) = g.prev_ingest;
        g.prev_ingest = t.ingest;
        g.rounds.push(RoundCounters {
            round: t.round,
            shard: 0,
            gvt_ticks: t.gvt_ticks,
            ts_ns: t.ts_ns,
            committed_delta: t.committed.saturating_sub(pc),
            processed_delta: t.processed.saturating_sub(pp),
            rolled_back_delta: t.rolled_back.saturating_sub(pr),
            active_threads: t.active_threads,
            members: t.members,
            lvt_ticks: t.lvt_ticks,
            queue_depths: t.queue_depths,
            ingest_admitted_delta: t.ingest.0.saturating_sub(pa),
            ingest_rejected_delta: t.ingest.1.saturating_sub(prj),
            ingest_shed_delta: t.ingest.2.saturating_sub(psh),
            ingest_busy_delta: t.ingest.3.saturating_sub(pb),
        });
    }

    /// The most recently recorded round, if any (feeds `StallDump`).
    pub fn last_round(&self) -> Option<RoundCounters> {
        self.inner.lock().rounds.last().cloned()
    }

    /// Drain everything collected so far into an exportable bundle.
    pub fn take(&self) -> TelemetryData {
        let mut g = self.inner.lock();
        let mut threads = std::mem::take(&mut g.threads);
        threads.sort_by_key(|t| t.tid);
        TelemetryData {
            threads,
            rounds: std::mem::take(&mut g.rounds),
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("Telemetry")
            .field("cfg", &self.cfg)
            .field("threads", &g.threads.len())
            .field("rounds", &g.rounds.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_hands_out_noop_tracers() {
        let tel = Telemetry::off();
        let mut tr = tel.tracer(3);
        assert!(!tr.enabled());
        tr.instant(EventKind::Unpark, 10, 0);
        tr.span(EventKind::GvtA, 0, 5, 1);
        tel.deposit(tr);
        tel.record_round(RoundTotals::default());
        let data = tel.take();
        assert!(data.threads.is_empty());
        assert!(data.rounds.is_empty());
        assert!(tel.last_round().is_none());
    }

    #[test]
    fn deposit_collects_ring_accounting() {
        let tel = Telemetry::new(TelemetryConfig::with_capacity(16));
        let mut tr = tel.tracer(2);
        for t in 0..20 {
            tr.instant(EventKind::Unpark, t, 0);
        }
        tel.deposit(tr);
        let data = tel.take();
        assert_eq!(data.threads.len(), 1);
        let t = &data.threads[0];
        assert_eq!(t.tid, 2);
        assert_eq!(t.emitted, 20);
        assert_eq!(t.dropped + t.records.len() as u64, t.emitted);
    }

    #[test]
    fn round_deltas_are_against_previous_totals() {
        let tel = Telemetry::new(TelemetryConfig::on());
        tel.record_round(RoundTotals {
            round: 1,
            gvt_ticks: 100,
            ts_ns: 10,
            committed: 50,
            processed: 60,
            rolled_back: 5,
            active_threads: 4,
            ..Default::default()
        });
        tel.record_round(RoundTotals {
            round: 2,
            gvt_ticks: 250,
            ts_ns: 20,
            committed: 80,
            processed: 100,
            rolled_back: 9,
            active_threads: 3,
            ..Default::default()
        });
        let data = tel.take();
        assert_eq!(data.rounds.len(), 2);
        assert_eq!(data.rounds[0].committed_delta, 50);
        assert_eq!(data.rounds[1].committed_delta, 30);
        assert_eq!(data.rounds[1].processed_delta, 40);
        assert_eq!(data.rounds[1].rolled_back_delta, 4);
        assert!(data.rounds[1].gvt_ticks >= data.rounds[0].gvt_ticks);
    }

    #[test]
    fn merge_shard_stamps_and_shifts() {
        let mut base = TelemetryData::default();
        let shard_data = TelemetryData {
            threads: vec![ThreadTrace {
                tid: 0,
                shard: 0,
                emitted: 1,
                dropped: 0,
                records: vec![TraceRecord {
                    kind: EventKind::GvtEnd,
                    ts_ns: 100,
                    dur_ns: 5,
                    arg: 1,
                }],
            }],
            rounds: vec![RoundCounters {
                round: 1,
                ts_ns: 100,
                ..Default::default()
            }],
        };
        base.merge_shard(shard_data.clone(), 2, 40);
        base.merge_shard(shard_data, 3, -60);
        assert_eq!(base.threads[0].shard, 2);
        assert_eq!(base.threads[0].records[0].ts_ns, 140);
        assert_eq!(base.threads[1].shard, 3);
        assert_eq!(base.threads[1].records[0].ts_ns, 40);
        assert_eq!(base.rounds[0].shard, 2);
        assert_eq!(base.rounds[0].ts_ns, 140);
        assert_eq!(base.last_round().unwrap().shard, 2);
    }
}
