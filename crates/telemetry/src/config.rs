//! Telemetry configuration: off by default, near-zero cost when disabled.

/// How (and whether) a run is traced. Carried by every runtime's run config;
/// each attempt builds its own [`crate::Telemetry`] registry from it, so a
/// supervised restart starts from a clean slate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. When `false`, tracers are no-ops (one branch per
    /// record call) and no round snapshots are taken.
    pub enabled: bool,
    /// Per-thread ring capacity in records; rounded up to a power of two.
    pub capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            capacity: 1 << 16,
        }
    }
}

impl TelemetryConfig {
    /// Tracing on, default capacity.
    pub fn on() -> Self {
        TelemetryConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// Tracing on with an explicit per-thread ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TelemetryConfig {
            enabled: true,
            capacity,
        }
    }
}
