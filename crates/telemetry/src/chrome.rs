//! Exporters: Chrome `trace_event` JSON and the JSONL round stream.
//!
//! The Chrome format is the JSON Object Format (`{"traceEvents": [...]}`)
//! that Perfetto and `chrome://tracing` load directly: spans are `"X"`
//! complete events with microsecond `ts`/`dur`, instants are `"i"` events.
//! `pid` carries the shard, `tid` the simulation thread. Events are emitted
//! sorted by `(pid, tid, ts)` so per-tid timestamps are non-decreasing —
//! the property `trace_check` verifies.

use crate::registry::TelemetryData;
use pdes_core::RoundCounters;
use std::fmt::Write as _;

/// Render nanoseconds as exact decimal microseconds (`"123.456"`).
/// Integer formatting keeps the mapping strictly monotone — no float
/// rounding can reorder two nanosecond timestamps.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Export a merged trace as Chrome `trace_event` JSON, one event per line.
pub fn chrome_trace_json(data: &TelemetryData) -> String {
    // (pid, tid, record) rows, sorted so each tid's lane is time-ordered and
    // co-started spans nest longest-first (what Perfetto's renderer wants).
    let mut rows = Vec::new();
    for t in &data.threads {
        for r in &t.records {
            rows.push((t.shard, t.tid, *r));
        }
    }
    rows.sort_by_key(|&(pid, tid, r)| (pid, tid, r.ts_ns, std::cmp::Reverse(r.dur_ns)));

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    // Metadata: name the lanes after the worker threads they trace.
    let mut seen_pids: Vec<u64> = Vec::new();
    for t in &data.threads {
        if !seen_pids.contains(&t.shard) {
            seen_pids.push(t.shard);
            push(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                     \"args\":{{\"name\":\"shard {}\"}}}}",
                    t.shard, t.shard
                ),
                &mut out,
                &mut first,
            );
        }
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"sim{} (emitted {}, dropped {})\"}}}}",
                t.shard, t.tid, t.tid, t.emitted, t.dropped
            ),
            &mut out,
            &mut first,
        );
    }
    for (pid, tid, r) in rows {
        let mut line = String::new();
        write!(
            line,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{}",
            r.kind.name(),
            r.kind.category(),
            if r.kind.is_span() { "X" } else { "i" },
            us(r.ts_ns)
        )
        .expect("write to String");
        if r.kind.is_span() {
            write!(line, ",\"dur\":{}", us(r.dur_ns)).expect("write to String");
        } else {
            line.push_str(",\"s\":\"t\"");
        }
        write!(
            line,
            ",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"v\":{}}}}}",
            r.arg
        )
        .expect("write to String");
        push(line, &mut out, &mut first);
    }
    out.push_str("\n]}\n");
    out
}

/// Export round snapshots as JSONL: one `RoundCounters` JSON object per
/// line, in emission order — easy to stream, grep, or load into a dataframe.
pub fn round_stream_jsonl(rounds: &[RoundCounters]) -> String {
    let mut out = String::new();
    for r in rounds {
        out.push_str(&serde_json::to_string(r).expect("RoundCounters serializes"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceRecord};
    use crate::registry::ThreadTrace;

    fn sample() -> TelemetryData {
        TelemetryData {
            threads: vec![
                ThreadTrace {
                    tid: 1,
                    shard: 0,
                    emitted: 2,
                    dropped: 0,
                    records: vec![
                        TraceRecord {
                            kind: EventKind::GvtA,
                            ts_ns: 2_500,
                            dur_ns: 1_000,
                            arg: 1,
                        },
                        TraceRecord {
                            kind: EventKind::Unpark,
                            ts_ns: 1_000,
                            dur_ns: 0,
                            arg: 0,
                        },
                    ],
                },
                ThreadTrace {
                    tid: 0,
                    shard: 0,
                    emitted: 1,
                    dropped: 3,
                    records: vec![TraceRecord {
                        kind: EventKind::EventBatch,
                        ts_ns: 10,
                        dur_ns: 4,
                        arg: 8,
                    }],
                },
            ],
            rounds: vec![],
        }
    }

    #[test]
    fn exporter_output_parses_and_is_per_tid_monotone() {
        let json = chrome_trace_json(&sample());
        let v = serde_json::parse(&json).expect("valid JSON");
        let events = match v.get("traceEvents") {
            Some(serde::Value::Array(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        // 1 process_name + 2 thread_name + 3 records.
        assert_eq!(events.len(), 6);
        let mut last: std::collections::HashMap<(u64, u64), f64> = Default::default();
        for e in events {
            let ph = match e.get("ph") {
                Some(serde::Value::String(s)) => s.clone(),
                _ => panic!("ph missing"),
            };
            if ph == "M" {
                continue;
            }
            let num = |k: &str| -> f64 {
                match e.get(k) {
                    Some(serde::Value::Float(f)) => *f,
                    Some(serde::Value::UInt(u)) => *u as f64,
                    Some(serde::Value::Int(i)) => *i as f64,
                    other => panic!("{k} missing: {other:?}"),
                }
            };
            let key = (num("pid") as u64, num("tid") as u64);
            let ts = num("ts");
            if let Some(prev) = last.get(&key) {
                assert!(ts >= *prev, "tid lane went backwards: {ts} < {prev}");
            }
            last.insert(key, ts);
        }
    }

    #[test]
    fn microsecond_rendering_is_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1), "0.001");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn round_stream_is_one_object_per_line() {
        let rounds = vec![
            RoundCounters {
                round: 1,
                gvt_ticks: 10,
                ..Default::default()
            },
            RoundCounters {
                round: 2,
                gvt_ticks: 20,
                ..Default::default()
            },
        ];
        let jsonl = round_stream_jsonl(&rounds);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = serde_json::parse(line).expect("valid JSON line");
            match v.get("round") {
                Some(serde::Value::UInt(r)) => assert_eq!(*r, i as u64 + 1),
                other => panic!("round missing: {other:?}"),
            }
        }
    }
}
