//! # ggpdes-telemetry — live observability for every GG-PDES runtime
//!
//! The paper's argument is about *when* things happen — when threads are
//! scheduled in and out, how long each GVT phase takes, where rollback time
//! clusters — yet end-of-run aggregates (`RunMetrics`) flatten all of that
//! away. This crate is the shared substrate that records timelines instead:
//!
//! * [`ring::TraceRing`] — a fixed-capacity, power-of-two, drop-oldest ring
//!   of [`event::TraceRecord`]s. Each simulation thread owns its ring
//!   exclusively, so the hot path is a masked store and a counter bump — no
//!   locks, no atomics, no allocation (the "lock-free tracer").
//! * [`event::EventKind`] — the typed span/instant taxonomy: event batches,
//!   rollback episodes, the five GVT phases (A / Send / B / Aware / End),
//!   park/unpark, pin/migration, checkpoint writes, link retransmits.
//! * [`registry::Telemetry`] — the per-run registry: hands out tracers,
//!   collects them back at thread exit (off the hot path, behind a mutex),
//!   and accumulates per-GVT-round [`pdes_core::RoundCounters`] snapshots
//!   emitted at each round's End phase.
//! * [`chrome`] — a Chrome `trace_event` JSON exporter (loadable in
//!   Perfetto / `chrome://tracing`) and a JSONL round-stream exporter.
//!
//! Everything is **off by default**: a disabled [`TelemetryConfig`] hands
//! out no-op tracers whose record calls are a single branch, so untraced
//! runs pay nothing measurable.
//!
//! Timestamps are caller-provided `u64` nanoseconds on whatever clock the
//! runtime lives on: monotonic wall time for `thread-rt`/`dist-rt`, virtual
//! time for `sim-rt`. `dist-rt` forwards each shard's [`TelemetryData`] to
//! the coordinator over the reliable link layer, where it is merged under a
//! per-shard clock-offset estimate (see [`TelemetryData::merge_shard`]).

pub mod chrome;
pub mod config;
pub mod event;
pub mod registry;
pub mod ring;

pub use chrome::{chrome_trace_json, round_stream_jsonl};
pub use config::TelemetryConfig;
pub use event::{EventKind, TraceRecord};
pub use registry::{RoundTotals, Telemetry, TelemetryData, ThreadTrace, Tracer};
pub use ring::TraceRing;
