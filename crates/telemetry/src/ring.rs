//! The lock-free per-thread trace ring.
//!
//! Each simulation thread owns its ring exclusively (`&mut` access on the
//! worker's stack), so the hot path is one masked store plus one counter
//! increment: no locks, no atomics, no allocation, no branch beyond the
//! enabled check in [`crate::Tracer`]. Capacity is rounded up to a power of
//! two; when full, the ring **drops the oldest** record and counts what it
//! overwrote, preserving the invariant
//! `dropped() + recorded() == emitted()`.

use crate::event::TraceRecord;

/// Fixed-capacity drop-oldest record ring.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<TraceRecord>,
    mask: u64,
    /// Monotonic count of every record ever pushed.
    head: u64,
}

impl TraceRing {
    /// Smallest capacity a ring will be built with.
    pub const MIN_CAPACITY: usize = 16;

    /// Build a ring holding at least `capacity` records (rounded up to the
    /// next power of two, floored at [`Self::MIN_CAPACITY`]).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(Self::MIN_CAPACITY).next_power_of_two();
        TraceRing {
            buf: vec![TraceRecord::default(); cap],
            mask: cap as u64 - 1,
            head: 0,
        }
    }

    /// Append one record, overwriting the oldest if the ring is full.
    #[inline]
    pub fn push(&mut self, r: TraceRecord) {
        let i = (self.head & self.mask) as usize;
        self.buf[i] = r;
        self.head += 1;
    }

    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Records ever pushed.
    pub fn emitted(&self) -> u64 {
        self.head
    }

    /// Records currently held (≤ capacity).
    pub fn recorded(&self) -> u64 {
        self.head.min(self.buf.len() as u64)
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.head.saturating_sub(self.buf.len() as u64)
    }

    /// Consume the ring, returning surviving records oldest → newest.
    pub fn drain(self) -> Vec<TraceRecord> {
        let n = self.recorded() as usize;
        let cap = self.buf.len();
        if self.head <= cap as u64 {
            let mut v = self.buf;
            v.truncate(n);
            return v;
        }
        let start = (self.head & self.mask) as usize;
        let mut out = Vec::with_capacity(n);
        out.extend_from_slice(&self.buf[start..]);
        out.extend_from_slice(&self.buf[..start]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn rec(ts: u64) -> TraceRecord {
        TraceRecord {
            kind: EventKind::EventBatch,
            ts_ns: ts,
            dur_ns: 0,
            arg: ts,
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(TraceRing::new(0).capacity(), TraceRing::MIN_CAPACITY);
        assert_eq!(TraceRing::new(17).capacity(), 32);
        assert_eq!(TraceRing::new(64).capacity(), 64);
    }

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut r = TraceRing::new(16);
        for t in 0..10 {
            r.push(rec(t));
        }
        assert_eq!(r.emitted(), 10);
        assert_eq!(r.dropped(), 0);
        let out = r.drain();
        let ts: Vec<u64> = out.iter().map(|x| x.ts_ns).collect();
        assert_eq!(ts, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn over_capacity_drops_oldest_and_counts() {
        let mut r = TraceRing::new(16); // capacity 16
        for t in 0..40 {
            r.push(rec(t));
        }
        assert_eq!(r.emitted(), 40);
        assert_eq!(r.recorded(), 16);
        assert_eq!(r.dropped(), 24);
        let out = r.drain();
        let ts: Vec<u64> = out.iter().map(|x| x.ts_ns).collect();
        assert_eq!(ts, (24..40).collect::<Vec<_>>());
    }

    #[test]
    fn exactly_full_drops_nothing() {
        let mut r = TraceRing::new(16);
        for t in 0..16 {
            r.push(rec(t));
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.drain().len(), 16);
    }
}
