//! The trace event taxonomy shared by every runtime.

use serde::{Deserialize, Serialize};

/// What one trace record describes. Spans carry a duration; instants don't.
///
/// The GVT kinds mirror the Wait-Free round structure (paper §4): A and B
/// are the two folds, Send-A/Send-B the simulate-while-waiting gaps between
/// them, Aware the pseudo-controller's GVT computation, End the per-thread
/// round close (fossil collection, checkpoint capture, deactivation
/// decision). `dist-rt` maps its Mattern rounds onto the same five phases so
/// traces stay comparable across runtimes (see DESIGN.md §12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Span: one main-loop event batch (`arg` = events processed).
    #[default]
    EventBatch,
    /// Span: a rollback episode (`arg` = events undone).
    Rollback,
    /// Span: GVT phase A — first minimum fold (`arg` = round id).
    GvtA,
    /// Span: GVT Send-A — simulate while peers finish A (`arg` = round id).
    GvtSendA,
    /// Span: GVT phase B — second minimum fold (`arg` = round id).
    GvtB,
    /// Span: GVT Send-B — simulate while peers finish B (`arg` = round id).
    GvtSendB,
    /// Span: GVT Aware — computing/adopting the new GVT (`arg` = round id).
    GvtAware,
    /// Span: GVT End — fossil collection and round close (`arg` = round id).
    GvtEnd,
    /// Span: parked (de-scheduled) interval (`arg` = round id at park).
    Park,
    /// Instant: scheduled back in (`arg` = round id at wake).
    Unpark,
    /// Instant: pinned to a core at setup (`arg` = core).
    Pin,
    /// Instant: migrated to a core by dynamic affinity (`arg` = core).
    Migrate,
    /// Span: checkpoint cut captured and deposited (`arg` = round id).
    CheckpointWrite,
    /// Instant: reliable-link retransmissions observed (`arg` = how many).
    LinkRetransmit,
    /// Instant: a shard joined the cluster at a GVT cut (`arg` = shard).
    ShardJoin,
    /// Instant: a shard left the cluster — drain-and-leave or degrade after
    /// exhausted recovery (`arg` = shard).
    ShardLeave,
    /// Instant: the failure detector's phi crossed the suspicion threshold
    /// for a peer (`arg` = shard). Suspicion, not death: arrival resets it.
    HeartbeatMiss,
    /// Instant: a dead shard was restored alone from the newest GVT cut
    /// while the survivors kept their state (`arg` = cut GVT ticks).
    PartialRestore,
    /// Instant: external events admitted through the ingest gate this round
    /// (`arg` = how many).
    IngestAdmit,
    /// Instant: ingest submissions rejected at or below the admission floor
    /// this round (`arg` = how many).
    IngestReject,
    /// Instant: ingest submissions shed above the high-watermark this round
    /// (`arg` = how many).
    IngestShed,
    /// Instant: ingest `Busy` backpressure verdicts this round
    /// (`arg` = how many).
    IngestBusy,
    /// Instant: conservative null-message guarantees published since the
    /// last LBTS round (`arg` = how many). Only `cons-rt` emits it.
    NullMsg,
}

impl EventKind {
    /// The Chrome-trace event name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::EventBatch => "batch",
            EventKind::Rollback => "rollback",
            EventKind::GvtA => "gvt-a",
            EventKind::GvtSendA => "gvt-send-a",
            EventKind::GvtB => "gvt-b",
            EventKind::GvtSendB => "gvt-send-b",
            EventKind::GvtAware => "gvt-aware",
            EventKind::GvtEnd => "gvt-end",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::Pin => "pin",
            EventKind::Migrate => "migrate",
            EventKind::CheckpointWrite => "checkpoint-write",
            EventKind::LinkRetransmit => "link-retransmit",
            EventKind::ShardJoin => "shard-join",
            EventKind::ShardLeave => "shard-leave",
            EventKind::HeartbeatMiss => "heartbeat-miss",
            EventKind::PartialRestore => "partial-restore",
            EventKind::IngestAdmit => "ingest-admit",
            EventKind::IngestReject => "ingest-reject",
            EventKind::IngestShed => "ingest-shed",
            EventKind::IngestBusy => "ingest-busy",
            EventKind::NullMsg => "null-msg",
        }
    }

    /// Spans render as Chrome `"X"` complete events; instants as `"i"`.
    pub fn is_span(self) -> bool {
        !matches!(
            self,
            EventKind::Unpark
                | EventKind::Pin
                | EventKind::Migrate
                | EventKind::LinkRetransmit
                | EventKind::ShardJoin
                | EventKind::ShardLeave
                | EventKind::HeartbeatMiss
                | EventKind::PartialRestore
                | EventKind::IngestAdmit
                | EventKind::IngestReject
                | EventKind::IngestShed
                | EventKind::IngestBusy
                | EventKind::NullMsg
        )
    }

    /// Chrome-trace category (Perfetto groups and filters by it).
    pub fn category(self) -> &'static str {
        match self {
            EventKind::EventBatch | EventKind::Rollback => "engine",
            EventKind::GvtA
            | EventKind::GvtSendA
            | EventKind::GvtB
            | EventKind::GvtSendB
            | EventKind::GvtAware
            | EventKind::GvtEnd => "gvt",
            EventKind::Park | EventKind::Unpark => "sched",
            EventKind::Pin | EventKind::Migrate => "affinity",
            EventKind::CheckpointWrite => "ckpt",
            EventKind::LinkRetransmit => "link",
            EventKind::ShardJoin
            | EventKind::ShardLeave
            | EventKind::HeartbeatMiss
            | EventKind::PartialRestore => "member",
            EventKind::IngestAdmit
            | EventKind::IngestReject
            | EventKind::IngestShed
            | EventKind::IngestBusy => "ingest",
            EventKind::NullMsg => "cons",
        }
    }
}

/// One fixed-size trace record. `Copy`, so the ring overwrites in place.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    pub kind: EventKind,
    /// Start timestamp: nanoseconds on the producing runtime's clock.
    pub ts_ns: u64,
    /// Duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// Kind-specific argument (batch size, round id, core, retransmits).
    pub arg: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_kind_partitions_hold() {
        let all = [
            EventKind::EventBatch,
            EventKind::Rollback,
            EventKind::GvtA,
            EventKind::GvtSendA,
            EventKind::GvtB,
            EventKind::GvtSendB,
            EventKind::GvtAware,
            EventKind::GvtEnd,
            EventKind::Park,
            EventKind::Unpark,
            EventKind::Pin,
            EventKind::Migrate,
            EventKind::CheckpointWrite,
            EventKind::LinkRetransmit,
            EventKind::ShardJoin,
            EventKind::ShardLeave,
            EventKind::HeartbeatMiss,
            EventKind::PartialRestore,
            EventKind::IngestAdmit,
            EventKind::IngestReject,
            EventKind::IngestShed,
            EventKind::IngestBusy,
            EventKind::NullMsg,
        ];
        let mut names: Vec<&str> = all.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
        // Every GVT phase is a span (they carry durations in the trace).
        for k in all {
            if k.category() == "gvt" {
                assert!(k.is_span(), "{k:?}");
            }
        }
    }

    #[test]
    fn record_round_trips_through_serde() {
        let r = TraceRecord {
            kind: EventKind::GvtAware,
            ts_ns: 123,
            dur_ns: 45,
            arg: 6,
        };
        let v = serde::Serialize::to_value(&r);
        let back = <TraceRecord as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(back, r);
    }
}
