//! Property tests of the tracer: ring accounting never loses a record
//! silently, and the Chrome exporter always produces valid JSON with
//! per-tid non-decreasing timestamps — for arbitrary record mixes and
//! capacity pressure.

use proptest::prelude::*;
use telemetry::{chrome_trace_json, EventKind, Telemetry, TelemetryConfig, TraceRecord, TraceRing};

const KINDS: [EventKind; 14] = [
    EventKind::EventBatch,
    EventKind::Rollback,
    EventKind::GvtA,
    EventKind::GvtSendA,
    EventKind::GvtB,
    EventKind::GvtSendB,
    EventKind::GvtAware,
    EventKind::GvtEnd,
    EventKind::Park,
    EventKind::Unpark,
    EventKind::Pin,
    EventKind::Migrate,
    EventKind::CheckpointWrite,
    EventKind::LinkRetransmit,
];

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        0usize..KINDS.len(),
        any::<u64>(),
        0u64..1_000_000,
        any::<u64>(),
    )
        .prop_map(|(k, ts, dur, arg)| TraceRecord {
            kind: KINDS[k],
            ts_ns: ts,
            dur_ns: dur,
            arg,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `dropped + recorded == emitted`, always — capacity pressure turns
    /// emissions into drops, never into silent loss.
    #[test]
    fn ring_accounting_is_conserved(
        capacity in 0usize..200,
        emits in 0usize..600,
    ) {
        let mut ring = TraceRing::new(capacity);
        for i in 0..emits {
            ring.push(TraceRecord {
                kind: EventKind::EventBatch,
                ts_ns: i as u64,
                dur_ns: 0,
                arg: i as u64,
            });
        }
        prop_assert_eq!(ring.emitted(), emits as u64);
        prop_assert_eq!(ring.dropped() + ring.recorded(), ring.emitted());
        let cap = ring.capacity();
        let records = ring.drain();
        prop_assert_eq!(records.len(), emits.min(cap));
        // Survivors are exactly the newest `recorded` records, in order.
        let first = emits.saturating_sub(cap);
        for (i, r) in records.iter().enumerate() {
            prop_assert_eq!(r.arg, (first + i) as u64);
        }
    }

    /// The Chrome exporter emits valid JSON whose per-(pid,tid) `ts` lanes
    /// never go backwards, whatever order threads recorded in.
    #[test]
    fn chrome_export_is_valid_and_monotone_per_tid(
        per_thread in prop::collection::vec(
            prop::collection::vec(arb_record(), 0..40),
            1..5,
        ),
    ) {
        let tel = Telemetry::new(TelemetryConfig::with_capacity(64));
        for (tid, recs) in per_thread.iter().enumerate() {
            let mut tr = tel.tracer(tid);
            for r in recs {
                if r.kind.is_span() {
                    tr.span(r.kind, r.ts_ns, r.ts_ns.saturating_add(r.dur_ns), r.arg);
                } else {
                    tr.instant(r.kind, r.ts_ns, r.arg);
                }
            }
            tel.deposit(tr);
        }
        let json = chrome_trace_json(&tel.take());
        let v = serde_json::parse(&json).expect("exporter output is valid JSON");
        let events = match v.get("traceEvents") {
            Some(serde::Value::Array(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let mut last: std::collections::HashMap<(u64, u64), f64> = Default::default();
        for e in events {
            match e.get("ph") {
                Some(serde::Value::String(s)) if s == "M" => continue,
                Some(serde::Value::String(_)) => {}
                other => panic!("ph missing: {other:?}"),
            }
            let num = |k: &str| -> f64 {
                match e.get(k) {
                    Some(serde::Value::Float(f)) => *f,
                    Some(serde::Value::UInt(u)) => *u as f64,
                    Some(serde::Value::Int(i)) => *i as f64,
                    other => panic!("{k} missing: {other:?}"),
                }
            };
            let key = (num("pid") as u64, num("tid") as u64);
            let ts = num("ts");
            if let Some(prev) = last.get(&key) {
                prop_assert!(ts >= *prev, "lane {key:?} went backwards: {ts} < {prev}");
            }
            last.insert(key, ts);
        }
    }
}
