//! Event sources: script files, synthetic generators, and the drive loop.
//!
//! A *script* is a plain `Vec<IngestRequest<P>>`; the file form is JSONL —
//! one request per line, blank lines and `#` comments skipped — so
//! operators can craft feeds by hand and the CLI can replay captures.

use pdes_core::{IngestRequest, LpId, VirtualTime};
use serde::{Deserialize, Serialize};

use crate::client::{ClientError, IngestClient};

/// Parse a JSONL script: one JSON-encoded [`IngestRequest`] per line.
/// Returns the line number (1-based) with the first malformed entry.
pub fn parse_script<P: Deserialize>(text: &str) -> Result<Vec<IngestRequest<P>>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match serde_json::from_str::<IngestRequest<P>>(line) {
            Ok(req) => out.push(req),
            Err(e) => return Err(format!("script line {}: {e:?}", idx + 1)),
        }
    }
    Ok(out)
}

/// Render a script back to JSONL (inverse of [`parse_script`]).
pub fn render_script<P: Serialize>(reqs: &[IngestRequest<P>]) -> String {
    let mut out = String::new();
    for req in reqs {
        out.push_str(&serde_json::to_string(req).expect("ingest requests are plain data"));
        out.push('\n');
    }
    out
}

/// `splitmix64` — the same tiny deterministic generator the fault plans
/// use; good enough to spread synthetic timestamps and destinations.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic synthetic script: `n` requests from `source`, ids
/// `0..n`, destinations uniform over `0..num_lps`, timestamps uniform over
/// `[lo_ticks, hi_ticks)`. `payload(id)` supplies each payload.
pub fn synth_requests<P>(
    seed: u64,
    source: u32,
    n: usize,
    num_lps: u32,
    lo_ticks: u64,
    hi_ticks: u64,
    mut payload: impl FnMut(u64) -> P,
) -> Vec<IngestRequest<P>> {
    assert!(num_lps > 0 && hi_ticks > lo_ticks);
    let mut state = seed ^ 0xD1F3_5C1E_0E77_AC42;
    (0..n as u64)
        .map(|id| {
            let dst = LpId((splitmix64(&mut state) % num_lps as u64) as u32);
            let span = hi_ticks - lo_ticks;
            let at = VirtualTime::from_ticks(lo_ticks + splitmix64(&mut state) % span);
            IngestRequest {
                source,
                id,
                at,
                dst,
                payload: payload(id),
            }
        })
        .collect()
}

/// What driving a script through a client produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Sends that ended `Accepted`.
    pub accepted: u64,
    /// Sends that ended `Duplicate` (an earlier attempt already landed).
    pub duplicate: u64,
    /// Sends abandoned after the attempt budget (`GaveUp`).
    pub gave_up: u64,
    /// Sends refused because the gate closed mid-script.
    pub closed: u64,
    /// Sends that died on a transport error.
    pub transport_failed: u64,
    /// Total submission attempts across the script.
    pub attempts: u64,
    /// Rejections absorbed by re-stamping across the script.
    pub restamped: u64,
}

impl DriveReport {
    /// Sends that definitely landed in the simulation.
    pub fn landed(&self) -> u64 {
        self.accepted + self.duplicate
    }
}

/// Push every request of `script` through `client`, tallying outcomes.
/// `Closed` stops the drive (everything after it would meet the same
/// verdict); other failures move on to the next request.
pub fn drive<P, F>(client: &mut IngestClient<P, F>, script: Vec<IngestRequest<P>>) -> DriveReport
where
    F: FnMut(&IngestRequest<P>) -> Result<pdes_core::IngestReply, ClientError>,
{
    let mut report = DriveReport::default();
    for req in script {
        match client.send(req) {
            Ok(outcome) => {
                report.attempts += u64::from(outcome.attempts);
                report.restamped += u64::from(outcome.restamped);
                if outcome.duplicate {
                    report.duplicate += 1;
                } else {
                    report.accepted += 1;
                }
            }
            Err(ClientError::Closed) => {
                report.closed += 1;
                break;
            }
            Err(ClientError::GaveUp { attempts, .. }) => {
                report.attempts += u64::from(attempts);
                report.gave_up += 1;
            }
            Err(ClientError::Transport(_)) => {
                report.transport_failed += 1;
            }
        }
    }
    report
}
