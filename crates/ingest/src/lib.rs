//! # ggpdes-ingest — the client-facing external-event ingest plane
//!
//! [`pdes_core::ingest`] is the *runtime-side* half of the ingest plane:
//! admission control against the committed GVT floor, bounded per-source
//! queues with backpressure, and a crash-durable journal replayed
//! exactly-once across restores. This crate is the *client-facing* half —
//! everything a process feeding live events into a running simulation
//! needs:
//!
//! - [`client`] — a retrying submission client. On
//!   [`pdes_core::IngestReply::Rejected`] it re-stamps the event strictly
//!   above the returned floor (plus guard band) and retries; on `Busy` it
//!   honors the server's retry hint under seeded capped-exponential
//!   backoff ([`dist_rt::Backoff`] — the same jitter the link layer uses);
//!   `Duplicate` is success (idempotency ids make retries safe); only
//!   `Closed` or an exhausted attempt budget ends a send.
//! - [`server`] — a TCP ingest server: one `u32`-length-prefixed
//!   [`dist_rt::wire`] frame per [`pdes_core::IngestRequest`], one frame
//!   per [`pdes_core::IngestReply`], bridging remote clients onto a local
//!   gate. [`server::TcpEndpoint`] is the matching client transport.
//! - [`source`] — event sources: JSONL script files (one request per
//!   line) and a deterministic seeded generator, plus a drive loop that
//!   pushes a whole script through a client and reports the outcomes.
//!
//! ## Correctness contract
//!
//! Every event a client is told was `Accepted` commits exactly once — in
//! the same position of the committed trace as a sequential oracle run fed
//! the merged (seeded + accepted) event stream — across worker kills,
//! shard kills, link chaos, and crash-restart from the journal. Every
//! rejection carries the floor it was judged against, so a client can
//! always make forward progress by re-stamping.

pub mod client;
pub mod server;
pub mod source;

pub use client::{
    local_endpoint, submit_and_wait, ClientError, IngestClient, RetryPolicy, SendOutcome,
};
pub use server::{IngestServer, TcpEndpoint};
pub use source::{drive, parse_script, render_script, synth_requests, DriveReport};
