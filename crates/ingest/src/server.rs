//! The TCP ingest server and its matching client transport.
//!
//! Protocol: the client writes one `u32`-length-prefixed
//! [`dist_rt::wire`]-encoded [`IngestRequest`] per frame and reads one
//! framed [`IngestReply`] back, strictly request/reply on one connection.
//! A malformed frame closes the connection — backpressure and admission
//! verdicts are in-band, codec violations are not.
//!
//! The server holds the gate only through an `Arc`, so it can front any
//! runtime's gate (thread-rt supervisor, a dist-rt shard's gate) without
//! knowing which; verdicts for queued submissions arrive when that
//! runtime's controller pumps the gate at its next GVT publish.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dist_rt::wire;
use pdes_core::{IngestGate, IngestReply, IngestRequest};
use serde::{Deserialize, Serialize};

use crate::client::{submit_and_wait, ClientError};

/// Bound on how long one connection waits for a queued verdict before
/// failing the request as `Closed` — a runtime that died without closing
/// its gate must not pin server threads forever.
const VERDICT_TIMEOUT: Duration = Duration::from_secs(30);

/// How often an idle connection handler wakes to check the stop flag, so
/// shutdown is bounded even while clients keep their connections open.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// A listening ingest server feeding one gate.
pub struct IngestServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl IngestServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve submissions into
    /// `gate` until [`IngestServer::shutdown`] (or drop).
    pub fn spawn<P>(gate: Arc<IngestGate<P>>, addr: &str) -> std::io::Result<IngestServer>
    where
        P: Clone + Send + Serialize + Deserialize + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || loop {
                let (stream, _) = match listener.accept() {
                    Ok(conn) => conn,
                    Err(_) => {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        continue;
                    }
                };
                if stop.load(Ordering::Acquire) {
                    // The shutdown poke (or a late client); either way,
                    // stop accepting.
                    return;
                }
                let gate = Arc::clone(&gate);
                let conn_stop = Arc::clone(&stop);
                let handle = std::thread::spawn(move || serve_conn(gate, stream, conn_stop));
                conns.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
            })
        };
        Ok(IngestServer {
            addr: local,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, join every connection handler, and return. Open
    /// connections end at their next request boundary or within one idle
    /// poll interval; requests already in flight get their verdicts first.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Poke the blocking accept() awake so the thread sees the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_conn<P>(gate: Arc<IngestGate<P>>, mut stream: TcpStream, stop: Arc<AtomicBool>)
where
    P: Clone + Serialize + Deserialize,
{
    // Idle reads wake every IDLE_POLL so a shutdown can join this thread
    // without waiting for the client to hang up. A timeout that fires
    // mid-frame leaves the stream desynced (read_exact consumed an
    // unspecified prefix) — the next decode then closes the connection,
    // which is the documented answer to a peer that stalls inside a frame.
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    loop {
        let buf = match wire::read_frame(&mut stream) {
            Ok(Some(buf)) => buf,
            // Clean EOF: the client is gone.
            Ok(None) => return,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            // A dead socket.
            Err(_) => return,
        };
        let Ok(req) = wire::from_bytes::<IngestRequest<P>>(&buf) else {
            // Codec violation: this peer speaks a different protocol;
            // dropping the connection is the only safe answer.
            return;
        };
        let reply = submit_and_wait(&gate, req, VERDICT_TIMEOUT).unwrap_or(IngestReply::Closed);
        if wire::write_frame(&mut stream, &wire::to_bytes(&reply)).is_err() {
            return;
        }
    }
}

/// The client side of the TCP protocol: a connected stream usable as an
/// [`crate::IngestClient`] endpoint.
pub struct TcpEndpoint {
    stream: TcpStream,
}

impl TcpEndpoint {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpEndpoint> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(VERDICT_TIMEOUT + Duration::from_secs(5)))?;
        Ok(TcpEndpoint { stream })
    }

    /// One request/reply round trip.
    pub fn submit<P: Serialize>(
        &mut self,
        req: &IngestRequest<P>,
    ) -> Result<IngestReply, ClientError> {
        wire::write_frame(&mut self.stream, &wire::to_bytes(req))
            .map_err(|e| ClientError::Transport(format!("send failed: {e}")))?;
        match wire::read_frame(&mut self.stream) {
            Ok(Some(buf)) => wire::from_bytes::<IngestReply>(&buf)
                .map_err(|e| ClientError::Transport(format!("bad reply frame: {e}"))),
            Ok(None) => Err(ClientError::Transport(
                "server closed the connection".to_string(),
            )),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Err(ClientError::Transport("reply timed out".to_string()))
            }
            Err(e) => Err(ClientError::Transport(format!("recv failed: {e}"))),
        }
    }

    /// Adapt into an [`crate::IngestClient`] endpoint closure.
    pub fn into_endpoint<P: Serialize>(
        mut self,
    ) -> impl FnMut(&IngestRequest<P>) -> Result<IngestReply, ClientError> {
        move |req| self.submit(req)
    }
}
