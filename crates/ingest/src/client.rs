//! The retrying submission client.
//!
//! A client owns an *endpoint* — any `FnMut(&IngestRequest<P>) ->
//! Result<IngestReply, ClientError>` — so the same retry machinery drives
//! an in-process gate ([`local_endpoint`]) and a TCP connection
//! ([`crate::server::TcpEndpoint`]). The retry policy implements the
//! protocol the gate's verdicts prescribe:
//!
//! | verdict      | client reaction                                       |
//! |--------------|-------------------------------------------------------|
//! | `Accepted`   | done                                                  |
//! | `Duplicate`  | done — an earlier attempt with this id already landed |
//! | `Rejected`   | re-stamp strictly above the returned floor, retry     |
//! | `Busy`       | sleep `max(hint, backoff)`, retry with the same stamp |
//! | `Shed`       | sleep a backoff delay, retry with the same stamp      |
//! | `Closed`     | give up — the simulation is over                      |
//!
//! Retries always reuse the idempotency id, so a verdict lost in transit
//! (crash between journal append and reply) resolves to `Duplicate` on the
//! retry instead of a double admission.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use dist_rt::Backoff;
use pdes_core::{IngestGate, IngestReply, IngestRequest, ReplySlot, VirtualTime};

/// Why a send ended without an admission.
#[derive(Debug)]
pub enum ClientError {
    /// The gate reported `Closed`: the simulation finished or is shutting
    /// down. Not retryable.
    Closed,
    /// The attempt budget ran out; `last` is the final verdict seen.
    GaveUp { attempts: u32, last: IngestReply },
    /// The transport failed (socket error, lost reply, codec mismatch).
    Transport(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Closed => write!(f, "ingest gate closed"),
            ClientError::GaveUp { attempts, last } => {
                write!(
                    f,
                    "gave up after {attempts} attempts (last verdict: {last:?})"
                )
            }
            ClientError::Transport(detail) => write!(f, "ingest transport failed: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// How hard a client pushes before giving up.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total submission attempts per send (first try included).
    pub max_attempts: u32,
    /// The server's admission guard band in ticks: re-stamps aim for
    /// `floor + guard_ticks + restamp_lift_ticks`, which is strictly
    /// admissible. Keep in sync with the gate's `IngestConfig::guard_ticks`
    /// (a too-small value only costs an extra rejected round trip).
    pub guard_ticks: u64,
    /// How far above the (floor + guard) a re-stamp lands, in ticks.
    /// Clamped to at least 1 so the re-stamp is strictly admissible.
    pub restamp_lift_ticks: u64,
    /// Hard cap on any single backoff sleep (keeps tests and shutdowns
    /// snappy even when a server hint is large).
    pub sleep_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 16,
            guard_ticks: 0,
            restamp_lift_ticks: 1,
            sleep_cap: Duration::from_millis(50),
        }
    }
}

/// What a successful send looked like.
#[derive(Debug, Clone, Copy)]
pub struct SendOutcome {
    /// The timestamp that was finally admitted (differs from the requested
    /// one when the floor forced re-stamps).
    pub at: VirtualTime,
    /// Attempts used (1 = admitted on the first try).
    pub attempts: u32,
    /// Rejections absorbed by re-stamping.
    pub restamped: u32,
    /// `true` when the final verdict was `Duplicate` — an earlier attempt
    /// (possibly one whose reply was lost) already admitted this id.
    pub duplicate: bool,
}

/// A retrying ingest client over an arbitrary endpoint.
pub struct IngestClient<P, F>
where
    F: FnMut(&IngestRequest<P>) -> Result<IngestReply, ClientError>,
{
    endpoint: F,
    backoff: Backoff,
    policy: RetryPolicy,
    _payload: std::marker::PhantomData<fn(P)>,
}

impl<P, F> IngestClient<P, F>
where
    F: FnMut(&IngestRequest<P>) -> Result<IngestReply, ClientError>,
{
    /// A client with the default policy; `seed` feeds the backoff jitter.
    pub fn new(endpoint: F, seed: u64) -> Self {
        Self::with_policy(endpoint, seed, RetryPolicy::default())
    }

    pub fn with_policy(endpoint: F, seed: u64, policy: RetryPolicy) -> Self {
        IngestClient {
            endpoint,
            backoff: Backoff::standard(seed),
            policy,
            _payload: std::marker::PhantomData,
        }
    }

    /// Submit `req` until it is admitted, a duplicate, closed, or the
    /// attempt budget runs out. Rejections re-stamp the request above the
    /// floor the gate judged it against; the id never changes.
    pub fn send(&mut self, mut req: IngestRequest<P>) -> Result<SendOutcome, ClientError> {
        let mut attempts = 0u32;
        let mut restamped = 0u32;
        loop {
            attempts += 1;
            let reply = (self.endpoint)(&req)?;
            match reply {
                IngestReply::Accepted => {
                    return Ok(SendOutcome {
                        at: req.at,
                        attempts,
                        restamped,
                        duplicate: false,
                    })
                }
                IngestReply::Duplicate => {
                    return Ok(SendOutcome {
                        at: req.at,
                        attempts,
                        restamped,
                        duplicate: true,
                    })
                }
                IngestReply::Closed => return Err(ClientError::Closed),
                IngestReply::Rejected { floor_ticks } => {
                    if attempts >= self.policy.max_attempts {
                        return Err(ClientError::GaveUp {
                            attempts,
                            last: reply,
                        });
                    }
                    restamped += 1;
                    // Admissible means `at > floor + guard`; land the
                    // re-stamp at floor + guard + lift (lift ≥ 1). A stamp
                    // already above that was rejected by a raced, newer
                    // floor — the next round trip sees it and lifts again.
                    let target = floor_ticks
                        .saturating_add(self.policy.guard_ticks)
                        .saturating_add(self.policy.restamp_lift_ticks.max(1));
                    if req.at.ticks() < target {
                        req.at = VirtualTime::from_ticks(target);
                    }
                }
                IngestReply::Busy { retry_after_ms } => {
                    if attempts >= self.policy.max_attempts {
                        return Err(ClientError::GaveUp {
                            attempts,
                            last: reply,
                        });
                    }
                    let hint = Duration::from_millis(retry_after_ms);
                    std::thread::sleep(
                        self.backoff
                            .next_delay()
                            .max(hint)
                            .min(self.policy.sleep_cap),
                    );
                }
                IngestReply::Shed => {
                    if attempts >= self.policy.max_attempts {
                        return Err(ClientError::GaveUp {
                            attempts,
                            last: reply,
                        });
                    }
                    std::thread::sleep(self.backoff.next_delay().min(self.policy.sleep_cap));
                }
            }
        }
    }

    /// Backoff sleeps performed so far (diagnostics).
    pub fn backoff_attempts(&self) -> u32 {
        self.backoff.attempts()
    }
}

/// Submit one request to an in-process gate and wait for its verdict.
/// Immediate verdicts (reject/busy/shed/duplicate/closed) return at once;
/// a queued submission parks on a channel until the runtime's next pump
/// resolves it. `timeout` bounds that wait — a run that dies without
/// closing its gate must not hang the client forever.
pub fn submit_and_wait<P>(
    gate: &IngestGate<P>,
    req: IngestRequest<P>,
    timeout: Duration,
) -> Result<IngestReply, ClientError> {
    let (tx, rx) = mpsc::channel();
    let slot = ReplySlot::Local(Box::new(move |reply| {
        let _ = tx.send(reply);
    }));
    match gate.submit(req, slot) {
        Some(reply) => Ok(reply),
        None => rx
            .recv_timeout(timeout)
            .map_err(|_| ClientError::Transport("timed out waiting for a verdict".to_string())),
    }
}

/// An endpoint over an in-process gate (shared-memory runtimes and tests).
pub fn local_endpoint<P: Clone>(
    gate: Arc<IngestGate<P>>,
    verdict_timeout: Duration,
) -> impl FnMut(&IngestRequest<P>) -> Result<IngestReply, ClientError> {
    move |req| submit_and_wait(&gate, req.clone(), verdict_timeout)
}
