//! Live ingest into the multi-shard distributed runtime: submissions enter
//! at one shard, forward to the owner of their destination LP, and the
//! committed trace equals a sequential oracle fed the merged (seeded +
//! accepted) stream — over memory and TCP links, under link chaos, and
//! across a shard kill-and-recover. The TCP ingest server is exercised
//! end-to-end against a gate as well.

use std::sync::Arc;
use std::time::Duration;

use dist_rt::{run_loopback_ingest, DistConfig, DistResult, IngestGates, Transport};
use ingest::{drive, local_endpoint, IngestClient, IngestServer, RetryPolicy, TcpEndpoint};
use models::{Phold, PholdConfig};
use pdes_core::{
    run_sequential_with, EngineConfig, IngestConfig, IngestGate, IngestJournal, IngestReply,
    IngestRequest, LinkFaultPlan, LpId, Model, ReplySlot, VirtualTime,
};

fn model() -> Arc<Phold> {
    Arc::new(Phold::new(PholdConfig::balanced(4, 4)))
}

fn ecfg(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(77)
        .with_optimism_window(Some(2.0))
}

fn dcfg(shards: usize, transport: Transport) -> DistConfig {
    DistConfig {
        shards,
        transport,
        gvt_interval_cycles: 16,
        wave_interval_cycles: 2,
        ..DistConfig::default()
    }
}

fn gates(shards: usize) -> IngestGates<Phold> {
    (0..shards)
        .map(|s| Arc::new(IngestGate::new(IngestConfig::default(), s as u64)))
        .collect()
}

/// Destinations cycle over every LP, so with 2 shards roughly half the
/// submissions entering at shard 0 must be forwarded to shard 1.
fn script(source: u32, n: u64, num_lps: u32, end: f64) -> Vec<IngestRequest<()>> {
    (0..n)
        .map(|id| IngestRequest {
            source,
            id,
            at: VirtualTime::from_f64(0.3 + (id as f64 * 0.61) % (end * 0.8)),
            dst: LpId((id % num_lps as u64) as u32),
            payload: (),
        })
        .collect()
}

fn temp_journal(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ggpdes-ingest-dist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(format!("{tag}.jsonl"))
}

/// Union of every gate's admitted events, in key order.
fn accepted_union(gs: &IngestGates<Phold>) -> Vec<pdes_core::Event<()>> {
    let mut evs: Vec<_> = gs.iter().flat_map(|g| g.accepted_events()).collect();
    evs.sort_by_key(|e| e.key);
    evs
}

#[track_caller]
fn assert_matches_merged_oracle(
    r: &DistResult,
    model: &Arc<Phold>,
    ecfg: &EngineConfig,
    gs: &IngestGates<Phold>,
    what: &str,
) {
    let accepted = accepted_union(gs);
    let oracle = run_sequential_with(model, ecfg, &accepted, None);
    assert_eq!(r.metrics.committed, oracle.committed, "{what}: committed");
    assert_eq!(
        r.metrics.commit_digest, oracle.commit_digest,
        "{what}: commit digest"
    );
    let states: Vec<u64> = r.state_digests.iter().map(|(_, d)| *d).collect();
    assert_eq!(states, oracle.state_digests, "{what}: state digests");
    assert_eq!(
        r.pending_digest, oracle.pending_digest,
        "{what}: pending digest"
    );
    assert_eq!(r.regressions, 0, "{what}: GVT regressed");
}

#[test]
fn two_shard_mem_live_ingest_with_forwarding_matches_merged_oracle() {
    let model = model();
    let ecfg = ecfg(10.0);
    let gs = gates(2);

    // Pre-queued at shard 0 with destinations on both shards: the entries
    // owned by shard 1 must travel the Frame::Ingest forwarding path.
    let pre = script(1, 20, model.num_lps() as u32, 10.0);
    for req in &pre {
        assert!(gs[0].submit(req.clone(), ReplySlot::None).is_none());
    }
    let live_gate = Arc::clone(&gs[0]);
    let live = std::thread::spawn(move || {
        let mut client = IngestClient::with_policy(
            local_endpoint(live_gate, Duration::from_secs(10)),
            99,
            RetryPolicy {
                max_attempts: 32,
                ..RetryPolicy::default()
            },
        );
        drive(&mut client, script(2, 16, 16, 10.0))
    });

    let r = run_loopback_ingest(
        Arc::clone(&model),
        &ecfg,
        &dcfg(2, Transport::Mem),
        Some(gs.clone()),
    )
    .expect("ingest loopback completes");
    let report = live.join().expect("live client");

    assert_eq!(report.gave_up + report.transport_failed, 0, "{report:?}");
    // Forwarding really happened: shard 1's gate holds admissions even
    // though every submission entered at shard 0.
    assert!(gs[1].accepted_count() > 0, "no submission was forwarded");
    // Exactly-once across the mesh: each pre-queued id landed at exactly
    // one gate.
    for req in &pre {
        let homes = gs
            .iter()
            .filter(|g| g.was_accepted(req.source, req.id))
            .count();
        assert_eq!(homes, 1, "id {} admitted at {homes} gates", req.id);
    }
    assert_matches_merged_oracle(&r, &model, &ecfg, &gs, "2-shard mem live ingest");
}

#[test]
fn tcp_chaos_links_with_live_ingest_match_merged_oracle() {
    let model = model();
    let ecfg = ecfg(8.0);
    let gs = gates(2);
    for req in &script(1, 16, model.num_lps() as u32, 8.0) {
        assert!(gs[0].submit(req.clone(), ReplySlot::None).is_none());
    }
    let mut cfg = dcfg(2, Transport::Tcp);
    cfg.link_faults = Some(LinkFaultPlan::chaos(11));
    let r = run_loopback_ingest(Arc::clone(&model), &ecfg, &cfg, Some(gs.clone()))
        .expect("tcp chaos ingest run completes");
    assert!(gs[1].accepted_count() > 0, "forwarding under chaos links");
    assert_matches_merged_oracle(&r, &model, &ecfg, &gs, "2-shard tcp chaos live ingest");
}

#[test]
fn killed_shard_with_live_ingest_recovers_and_matches_merged_oracle() {
    let model = model();
    let ecfg = ecfg(40.0);
    let j0 = temp_journal("kill-s0");
    let j1 = temp_journal("kill-s1");
    let _ = std::fs::remove_file(&j0);
    let _ = std::fs::remove_file(&j1);
    let gs: IngestGates<Phold> = vec![
        Arc::new(IngestGate::with_journal(IngestConfig::default(), 0, &j0).expect("journal 0")),
        Arc::new(IngestGate::with_journal(IngestConfig::default(), 1, &j1).expect("journal 1")),
    ];
    let pre = script(1, 20, model.num_lps() as u32, 40.0);
    for req in &pre {
        assert!(gs[0].submit(req.clone(), ReplySlot::None).is_none());
    }
    let live_gate = Arc::clone(&gs[0]);
    let live = std::thread::spawn(move || {
        let mut client = IngestClient::with_policy(
            local_endpoint(live_gate, Duration::from_secs(20)),
            7,
            RetryPolicy {
                max_attempts: 48,
                ..RetryPolicy::default()
            },
        );
        drive(&mut client, script(4, 16, 16, 40.0))
    });

    let mut cfg = dcfg(2, Transport::Mem);
    cfg.ckpt_every_rounds = 2;
    // Die on the 5th publish: rounds 2 and 4 were armed, so an assembled
    // checkpoint cut exists — deterministically (same script as
    // dist_equiv's kill test, now with a live ingest plane attached).
    cfg.kills = vec![(1, 5)];
    cfg.max_recoveries = 2;
    let r = run_loopback_ingest(Arc::clone(&model), &ecfg, &cfg, Some(gs.clone()))
        .expect("killed shard recovers with ingest attached");
    let report = live.join().expect("live client");

    assert_eq!(r.recoveries, 1, "exactly one scripted kill fires");
    assert_eq!(report.gave_up + report.transport_failed, 0, "{report:?}");
    assert_matches_merged_oracle(&r, &model, &ecfg, &gs, "2-shard kill+recover live ingest");

    // Journal-level exactly-once across the kill and restore.
    for path in [&j0, &j1] {
        let records = IngestJournal::read_all::<()>(path).expect("journal readable");
        let mut ids: Vec<(u32, u64)> = records.iter().map(|r| (r.source, r.id)).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "an id was journaled twice");
    }
    let _ = std::fs::remove_file(&j0);
    let _ = std::fs::remove_file(&j1);
}

/// The TCP ingest server end-to-end against a pumped gate: admission,
/// floor-carrying rejection, and idempotent duplicate detection all travel
/// the wire.
#[test]
fn tcp_ingest_server_round_trips_verdicts() {
    let gate: Arc<IngestGate<()>> = Arc::new(IngestGate::new(IngestConfig::default(), 0));
    gate.set_floor(VirtualTime::from_ticks(1_000));
    let server = IngestServer::spawn(Arc::clone(&gate), "127.0.0.1:0").expect("server binds");

    // A pumper stands in for the runtime's GVT controller.
    let pump_gate = Arc::clone(&gate);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let pump_stop = Arc::clone(&stop);
    let pumper = std::thread::spawn(move || {
        while !pump_stop.load(std::sync::atomic::Ordering::Acquire) {
            pump_gate.pump(|_| true, &mut |_| {}).expect("pump");
            std::thread::sleep(Duration::from_millis(1));
        }
    });

    let mut ep = TcpEndpoint::connect(server.addr()).expect("client connects");
    let req = |id: u64, at: u64| IngestRequest {
        source: 5,
        id,
        at: VirtualTime::from_ticks(at),
        dst: LpId(0),
        payload: (),
    };

    // Below the floor: the rejection carries the floor across the wire.
    match ep.submit(&req(1, 500)).expect("round trip") {
        IngestReply::Rejected { floor_ticks } => assert_eq!(floor_ticks, 1_000),
        other => panic!("expected rejection, got {other:?}"),
    }
    // Above the floor: queued, pumped, accepted.
    assert_eq!(
        ep.submit(&req(1, 2_000)).expect("round trip"),
        IngestReply::Accepted
    );
    // Same id again: idempotency holds over TCP too.
    assert_eq!(
        ep.submit(&req(1, 2_000)).expect("round trip"),
        IngestReply::Duplicate
    );
    assert_eq!(gate.accepted_count(), 1);

    // The retrying client speaks the same protocol through the endpoint.
    let ep2 = TcpEndpoint::connect(server.addr()).expect("second client");
    let mut client = IngestClient::new(ep2.into_endpoint(), 21);
    let outcome = client
        .send(req(2, 500))
        .expect("client lands after re-stamp");
    assert!(outcome.restamped >= 1 && outcome.at.ticks() > 1_000);
    assert_eq!(gate.accepted_count(), 2);

    stop.store(true, std::sync::atomic::Ordering::Release);
    pumper.join().expect("pumper");
    // Hang up both connections before shutdown: the server joins its
    // connection handlers, which run until their sockets see EOF.
    drop(ep);
    drop(client);
    server.shutdown();
}
