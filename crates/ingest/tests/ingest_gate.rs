//! Gate-level plane behavior through the client: admission verdicts,
//! backpressure saturation, and the crash window between journal append
//! and engine injection (exactly-once across a journal recovery).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ingest::{local_endpoint, ClientError, IngestClient, RetryPolicy};
use pdes_core::{
    IngestConfig, IngestGate, IngestReply, IngestRequest, LpId, ReplySlot, VirtualTime,
};
use proptest::prelude::*;

fn req(source: u32, id: u64, at_ticks: u64) -> IngestRequest<u64> {
    IngestRequest {
        source,
        id,
        at: VirtualTime::from_ticks(at_ticks),
        dst: LpId(0),
        payload: id,
    }
}

fn temp_journal(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ggpdes-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(format!("{tag}.jsonl"))
}

/// Pump the gate on a background thread until it is told to stop — stands
/// in for a runtime's GVT-round controller so a blocking client sees its
/// queued verdicts resolve.
fn spawn_pumper(gate: Arc<IngestGate<u64>>) -> (Arc<AtomicBool>, std::thread::JoinHandle<u64>) {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let mut injected = 0u64;
        while !flag.load(Ordering::Acquire) {
            let out = gate.pump(|_| true, &mut |_| {}).expect("pump");
            injected += out.injected;
            std::thread::sleep(Duration::from_millis(1));
        }
        injected
    });
    (stop, handle)
}

#[test]
fn rejection_carries_floor_and_client_restamps_to_admission() {
    let gate: Arc<IngestGate<u64>> = Arc::new(IngestGate::new(IngestConfig::default(), 0));
    gate.set_floor(VirtualTime::from_ticks(1_000));

    // The raw verdict carries the floor it was judged against.
    match gate.submit(req(1, 0, 500), ReplySlot::None) {
        Some(IngestReply::Rejected { floor_ticks }) => assert_eq!(floor_ticks, 1_000),
        other => panic!("expected an immediate rejection, got {other:?}"),
    }

    // The client turns that rejection into a re-stamp above the floor.
    let (stop, pumper) = spawn_pumper(Arc::clone(&gate));
    let mut client =
        IngestClient::new(local_endpoint(Arc::clone(&gate), Duration::from_secs(5)), 7);
    let outcome = client.send(req(1, 1, 500)).expect("re-stamped send lands");
    assert!(outcome.restamped >= 1, "the floor forced a re-stamp");
    assert!(outcome.at.ticks() > 1_000, "admitted above the floor");
    assert!(gate.was_accepted(1, 1));
    stop.store(true, Ordering::Release);
    pumper.join().expect("pumper");

    let accepted = gate.accepted_events();
    assert_eq!(accepted.len(), 1);
    assert!(accepted[0].key.recv_time.ticks() > 1_000);
}

#[test]
fn saturation_is_bounded_and_sheds_newest_first_without_stalling_pumps() {
    let cfg = IngestConfig {
        guard_ticks: 0,
        source_capacity: 2,
        high_watermark: 10,
        max_per_pump: 4,
        retry_after_ms: 7,
    };
    let gate: IngestGate<u64> = IngestGate::new(cfg, 0);

    // One source over quota: Busy with the configured hint.
    let (mut queued, mut busy, mut shed) = (0u64, 0u64, 0u64);
    for id in 0..5 {
        match gate.submit(req(0, id, 100 + id), ReplySlot::None) {
            None => queued += 1,
            Some(IngestReply::Busy { retry_after_ms }) => {
                assert_eq!(retry_after_ms, 7, "Busy carries the retry hint");
                busy += 1;
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }
    assert_eq!((queued, busy), (2, 3), "per-source quota is 2");

    // Many sources flood past the high-watermark: newest are shed, the
    // queue never grows beyond the watermark (bounded memory).
    for id in 0..40 {
        match gate.submit(req(1 + id as u32, 1_000 + id, 200 + id), ReplySlot::None) {
            None => queued += 1,
            Some(IngestReply::Shed) => shed += 1,
            other => panic!("unexpected verdict {other:?}"),
        }
        assert!(gate.queued_len() <= 10, "queue exceeded the watermark");
    }
    assert_eq!(queued, 10, "exactly the watermark admitted to the queue");
    assert!(shed > 0, "overload must shed");

    // Draining is bounded per pump (max_per_pump caps a round's admission
    // work, so a flooded round cannot stall GVT), yet drains completely.
    let mut pumps = 0;
    let mut injected = 0u64;
    while gate.queued_len() > 0 {
        let out = gate.pump(|_| true, &mut |_| {}).expect("pump");
        assert!(
            out.injected <= 4,
            "one pump admitted more than max_per_pump"
        );
        injected += out.injected;
        pumps += 1;
        assert!(pumps <= 10, "drain did not terminate");
    }
    assert_eq!(injected, 10);
    assert!(
        pumps >= 3,
        "a bounded pump needs several rounds for 10 events"
    );

    let stats = gate.stats();
    assert_eq!(stats.admitted, 10);
    assert_eq!(stats.busy, 3);
    assert_eq!(stats.shed, shed);
    assert_eq!(gate.accepted_count(), 10);
}

#[test]
fn client_rides_out_busy_with_backoff() {
    let cfg = IngestConfig {
        source_capacity: 1,
        ..IngestConfig::default()
    };
    let gate: Arc<IngestGate<u64>> = Arc::new(IngestGate::new(cfg, 0));
    // Fill source 9's quota: the next submission deterministically sees
    // Busy (nobody is pumping yet).
    assert!(gate.submit(req(9, 0, 50), ReplySlot::None).is_none());
    assert!(matches!(
        gate.submit(req(9, 1, 60), ReplySlot::None),
        Some(IngestReply::Busy { .. })
    ));

    // With a pumper draining the quota, the client's retries land; the
    // bounced id is free to be resubmitted (Busy never records the id).
    let (stop, pumper) = spawn_pumper(Arc::clone(&gate));
    let mut client = IngestClient::new(
        local_endpoint(Arc::clone(&gate), Duration::from_secs(5)),
        13,
    );
    client.send(req(9, 1, 60)).expect("send lands after Busy");
    stop.store(true, Ordering::Release);
    pumper.join().expect("pumper");
    assert!(gate.was_accepted(9, 0) && gate.was_accepted(9, 1));
}

#[test]
fn closed_gate_fails_fast_and_resolves_queued_submissions() {
    let gate: Arc<IngestGate<u64>> = Arc::new(IngestGate::new(IngestConfig::default(), 0));
    assert!(gate.submit(req(2, 0, 10), ReplySlot::None).is_none());
    gate.close();
    assert_eq!(gate.queued_len(), 0, "close resolves the queue");

    let mut client =
        IngestClient::new(local_endpoint(Arc::clone(&gate), Duration::from_secs(1)), 3);
    match client.send(req(2, 1, 20)) {
        Err(ClientError::Closed) => {}
        other => panic!("expected Closed, got {other:?}"),
    }
}

#[test]
fn give_up_reports_the_final_verdict() {
    let gate: Arc<IngestGate<u64>> = Arc::new(IngestGate::new(
        IngestConfig {
            source_capacity: 1,
            ..IngestConfig::default()
        },
        0,
    ));
    // Quota permanently full and nobody pumping: every retry sees Busy.
    assert!(gate.submit(req(4, 0, 50), ReplySlot::None).is_none());
    let mut client = IngestClient::with_policy(
        local_endpoint(Arc::clone(&gate), Duration::from_secs(1)),
        5,
        RetryPolicy {
            max_attempts: 3,
            sleep_cap: Duration::from_millis(2),
            ..RetryPolicy::default()
        },
    );
    match client.send(req(4, 1, 60)) {
        Err(ClientError::GaveUp { attempts, last }) => {
            assert_eq!(attempts, 3);
            assert!(matches!(last, IngestReply::Busy { .. }));
        }
        other => panic!("expected GaveUp, got {other:?}"),
    }
}

/// The satellite-4 crash window: a kill between the journal append and the
/// engine injection must neither drop nor duplicate the event. The gate's
/// `fail_after_append` hook simulates exactly that window; recovery from
/// the journal must replay the appended-but-uninjected event exactly once,
/// and a client retry of the same id must resolve to `Duplicate`.
#[test]
fn crash_between_append_and_injection_replays_exactly_once() {
    let path = temp_journal("crash-window");
    let _ = std::fs::remove_file(&path);
    let cfg = IngestConfig::default();
    let gate: IngestGate<u64> =
        IngestGate::with_journal(cfg.clone(), 0, &path).expect("journal opens");

    assert!(gate.submit(req(1, 7, 500), ReplySlot::None).is_none());
    gate.set_fail_after_append(true);
    let out = gate.pump(|_| true, &mut |_| {}).expect("pump");
    assert_eq!(out.injected, 0, "the crash window fired before injection");
    drop(gate); // the "process" dies here

    let (recovered, replay) =
        IngestGate::<u64>::recover(cfg, 0, &path, VirtualTime::ZERO).expect("recover");
    assert_eq!(replay.len(), 1, "journal suffix replays the lost event");
    assert_eq!(replay[0].key.recv_time.ticks(), 500);
    assert!(recovered.was_accepted(1, 7));
    // The client that never got its reply retries the same id:
    assert_eq!(
        recovered.submit(req(1, 7, 500), ReplySlot::None),
        Some(IngestReply::Duplicate),
        "a retry after the crash must dedup, not double-admit"
    );
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Random submissions with colliding ids and a crash at a random pump:
    /// after recovery and a full drain, every distinct admissible id is
    /// accepted exactly once, every minted uid is unique, and re-submitting
    /// the whole script yields only Duplicate/Rejected — never a second
    /// admission.
    #[test]
    fn crash_window_never_drops_or_duplicates(
        ids in prop::collection::vec(0u64..12, 4..24),
        crash_after in 0usize..8,
        case in 0u64..u64::MAX,
    ) {
        let path = temp_journal(&format!("crash-prop-{case}"));
        let _ = std::fs::remove_file(&path);
        let cfg = IngestConfig { max_per_pump: 3, ..IngestConfig::default() };
        let gate: IngestGate<u64> =
            IngestGate::with_journal(cfg.clone(), 0, &path).expect("journal opens");

        let mut queued: Vec<u64> = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            // Admissible stamps (floor 0, guard 0 ⇒ anything > 0 works).
            if gate.submit(req(1, id, 100 + i as u64), ReplySlot::None).is_none() {
                queued.push(id);
            }
        }

        // Pump a few bounded rounds, then crash inside the append window.
        let mut injected_before = 0u64;
        for _ in 0..crash_after {
            injected_before += gate.pump(|_| true, &mut |_| {}).expect("pump").injected;
        }
        gate.set_fail_after_append(true);
        injected_before += gate.pump(|_| true, &mut |_| {}).expect("pump").injected;
        drop(gate);

        let (recovered, replay) =
            IngestGate::<u64>::recover(cfg, 0, &path, VirtualTime::ZERO).expect("recover");
        // Replay (the journal suffix) plus nothing else: recovery holds
        // every accepted id, and the replay covers what the dead process
        // had journaled — including the appended-but-uninjected one.
        prop_assert!(replay.len() as u64 >= injected_before.min(1));

        // Re-drive the full script: only duplicates or queue admissions of
        // ids that never got in (quota bounced them the first time).
        for (i, &id) in ids.iter().enumerate() {
            match recovered.submit(req(1, id, 100 + i as u64), ReplySlot::None) {
                Some(IngestReply::Duplicate) | None | Some(IngestReply::Busy { .. }) => {}
                other => prop_assert!(false, "unexpected verdict {other:?}"),
            }
        }
        let mut drained = 0;
        while recovered.queued_len() > 0 && drained < 64 {
            recovered.pump(|_| true, &mut |_| {}).expect("pump");
            drained += 1;
        }

        // Exactly-once per distinct id, and every uid unique.
        let mut distinct: Vec<u64> = ids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(recovered.accepted_count(), distinct.len());
        let evs = recovered.accepted_events();
        let mut uids: Vec<_> = evs.iter().map(|e| e.key.uid).collect();
        uids.sort();
        uids.dedup();
        prop_assert_eq!(uids.len(), evs.len(), "minted uids must be unique");
        let _ = std::fs::remove_file(&path);
    }
}
