//! Scripted ingest on the deterministic virtual machine: submissions
//! "arrive" at scripted GVT rounds, travel the same admission/pump path as
//! the real runtimes, and the committed trace equals the merged-stream
//! sequential oracle — bit-for-bit reproducibly across repeated runs.

use std::sync::Arc;

use models::{Phold, PholdConfig};
use pdes_core::{
    run_sequential_with, EngineConfig, IngestConfig, IngestGate, IngestRequest, LpId, Model,
    VirtualTime,
};
use sim_rt::{run_sim_ingest, RunConfig, SystemConfig};

fn model() -> Arc<Phold> {
    Arc::new(Phold::new(PholdConfig::balanced(8, 4)))
}

fn ecfg(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(42)
        .with_gvt_interval(25)
        .with_zero_counter_threshold(250)
}

/// Arrivals spread over the first rounds; timestamps above the likely
/// floor at arrival so most are admitted, some deliberately low so the
/// rejection path runs too.
fn script(num_lps: u32, end: f64) -> Vec<(u64, IngestRequest<()>)> {
    (0..24u64)
        .map(|id| {
            let round = id % 6;
            let at = if id % 7 == 0 {
                // Candidate rejections: may sit below the floor by the
                // time their round arrives.
                VirtualTime::from_f64(0.05)
            } else {
                VirtualTime::from_f64(0.4 + (id as f64 * 0.37) % (end * 0.7))
            };
            (
                round,
                IngestRequest {
                    source: 1,
                    id,
                    at,
                    dst: LpId((id % num_lps as u64) as u32),
                    payload: (),
                },
            )
        })
        .collect()
}

#[test]
fn scripted_ingest_on_the_vm_matches_merged_oracle_deterministically() {
    let model = model();
    let ecfg = ecfg(8.0);
    let rc = RunConfig::new(8, ecfg.clone(), SystemConfig::ALL_SIX[5])
        .with_machine(machine::MachineConfig::small(4, 2));

    let mut digests = Vec::new();
    for _ in 0..2 {
        let gate: Arc<IngestGate<()>> = Arc::new(IngestGate::new(IngestConfig::default(), 0));
        let r = run_sim_ingest(
            &model,
            &rc,
            Arc::clone(&gate),
            script(model.num_lps() as u32, 8.0),
        );
        assert!(r.completed, "VM run finished");
        assert_eq!(r.gvt_regressions, 0);
        assert!(gate.accepted_count() > 0, "some arrivals were admitted");

        let accepted = gate.accepted_events();
        let oracle = run_sequential_with(&model, &ecfg, &accepted, None);
        assert_eq!(r.metrics.committed, oracle.committed, "committed");
        assert_eq!(r.metrics.commit_digest, oracle.commit_digest, "digest");
        assert_eq!(r.digests, oracle.state_digests, "states");
        digests.push((r.metrics.commit_digest, gate.stats()));
    }
    // The VM is deterministic: same script, same admissions, same trace.
    assert_eq!(digests[0], digests[1], "VM ingest must be reproducible");
}

#[test]
fn vm_admission_floor_rejects_stale_arrivals_across_systems() {
    let model = model();
    let ecfg = ecfg(6.0);
    // Arrivals stamped one tick after genesis but scheduled for rounds
    // where GVT has already moved: the floor must reject them. (A round-0
    // arrival would still be admissible — the floor is genesis then —
    // which is why the script starts at round 2.)
    let stale: Vec<(u64, IngestRequest<()>)> = (0..6u64)
        .map(|id| {
            (
                2 + id % 3,
                IngestRequest {
                    source: 2,
                    id,
                    at: VirtualTime::from_ticks(1),
                    dst: LpId(0),
                    payload: (),
                },
            )
        })
        .collect();

    for sys in [SystemConfig::ALL_SIX[0], SystemConfig::ALL_SIX[5]] {
        let rc =
            RunConfig::new(8, ecfg.clone(), sys).with_machine(machine::MachineConfig::small(4, 2));
        let gate: Arc<IngestGate<()>> = Arc::new(IngestGate::new(IngestConfig::default(), 0));
        let r = run_sim_ingest(&model, &rc, Arc::clone(&gate), stale.clone());
        assert!(r.completed);
        assert!(
            gate.stats().rejected > 0,
            "{}: the moved floor must reject stale arrivals (stats {:?})",
            sys.name(),
            gate.stats()
        );
        // Whatever was (not) admitted, the trace equals the merged oracle.
        let accepted = gate.accepted_events();
        let oracle = run_sequential_with(&model, &ecfg, &accepted, None);
        assert_eq!(
            r.metrics.commit_digest,
            oracle.commit_digest,
            "{}",
            sys.name()
        );
        assert_eq!(r.digests, oracle.state_digests, "{}", sys.name());
    }
}
