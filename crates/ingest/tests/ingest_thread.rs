//! Live ingest into the real-thread runtime: every accepted event commits
//! exactly once, and the committed trace equals a sequential oracle fed
//! the merged (seeded + accepted-ingest) stream — fault-free, across a
//! chaos kill-and-recover, and on the degraded sequential fallback.

use std::sync::Arc;
use std::time::Duration;

use ingest::{drive, local_endpoint, IngestClient, RetryPolicy};
use models::{Phold, PholdConfig};
use pdes_core::{
    run_sequential_with, EngineConfig, FaultPlan, IngestConfig, IngestGate, IngestJournal,
    IngestRequest, LpId, Model, VirtualTime,
};
use sim_rt::SystemConfig;
use thread_rt::{
    run_supervised_ingest, run_threads_ingest, RtRunConfig, SupervisedRun, SupervisorConfig,
};

fn model() -> Arc<Phold> {
    Arc::new(Phold::new(PholdConfig::balanced(4, 4)))
}

fn ecfg(end: f64) -> EngineConfig {
    EngineConfig::default()
        .with_end_time(end)
        .with_seed(77)
        .with_gvt_interval(20)
        .with_zero_counter_threshold(60)
}

fn gg_async() -> SystemConfig {
    SystemConfig::ALL_SIX[5]
}

/// A script of externally-sourced events spread across the run's horizon
/// and all LPs. Timestamps start strictly above zero (floor 0, guard 0).
fn script(source: u32, n: u64, num_lps: u32, end: f64) -> Vec<IngestRequest<()>> {
    (0..n)
        .map(|id| IngestRequest {
            source,
            id,
            at: VirtualTime::from_f64(0.3 + (id as f64 * 0.61) % (end * 0.8)),
            dst: LpId((id % num_lps as u64) as u32),
            payload: (),
        })
        .collect()
}

fn temp_journal(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ggpdes-ingest-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(format!("{tag}.jsonl"))
}

/// Assert the supervised outcome equals the merged-stream oracle.
#[track_caller]
fn assert_matches_merged_oracle(
    s: &SupervisedRun,
    model: &Arc<Phold>,
    ecfg: &EngineConfig,
    gate: &IngestGate<()>,
    what: &str,
) {
    let accepted = gate.accepted_events();
    let oracle = run_sequential_with(model, ecfg, &accepted, None);
    assert_eq!(s.outcome.committed(), oracle.committed, "{what}: committed");
    assert_eq!(
        s.outcome.commit_digest(),
        oracle.commit_digest,
        "{what}: commit digest"
    );
    assert_eq!(
        s.outcome.state_digests(),
        &oracle.state_digests[..],
        "{what}: state digests"
    );
}

#[test]
fn live_ingest_matches_merged_oracle_fault_free() {
    let model = model();
    let ecfg = ecfg(8.0);
    let gate: Arc<IngestGate<()>> = Arc::new(IngestGate::new(IngestConfig::default(), 0));

    // Pre-queue a batch so admissions are guaranteed even if the run is
    // quick, then keep a live client submitting concurrently.
    let pre = script(1, 16, model.num_lps() as u32, 8.0);
    for req in &pre {
        assert!(gate
            .submit(req.clone(), pdes_core::ReplySlot::None)
            .is_none());
    }
    let live_gate = Arc::clone(&gate);
    let live = std::thread::spawn(move || {
        let mut client = IngestClient::new(
            local_endpoint(Arc::clone(&live_gate), Duration::from_secs(10)),
            42,
        );
        drive(&mut client, script(2, 24, 16, 8.0))
    });

    let rc = RtRunConfig::new(4, ecfg.clone(), gg_async());
    let r = run_threads_ingest(&model, &rc, Arc::clone(&gate)).expect("ingest run completes");
    let report = live.join().expect("live client");

    // Everything pre-queued was admissible at floor 0 and must be in.
    assert!(gate.accepted_count() >= 16, "pre-queued batch admitted");
    // The live client saw only terminal outcomes the protocol allows.
    assert_eq!(report.gave_up + report.transport_failed, 0, "{report:?}");

    let accepted = gate.accepted_events();
    let oracle = run_sequential_with(&model, &ecfg, &accepted, None);
    assert_eq!(r.metrics.committed, oracle.committed, "committed");
    assert_eq!(r.metrics.commit_digest, oracle.commit_digest, "digest");
    assert_eq!(r.digests, oracle.state_digests, "states");
}

#[test]
fn chaos_kill_recover_with_live_ingest_commits_every_accepted_id_once() {
    let model = model();
    let ecfg = ecfg(10.0);
    let path = temp_journal("chaos");
    let _ = std::fs::remove_file(&path);
    let gate: Arc<IngestGate<()>> =
        Arc::new(IngestGate::with_journal(IngestConfig::default(), 0, &path).expect("journal"));

    let pre = script(1, 20, model.num_lps() as u32, 10.0);
    for req in &pre {
        assert!(gate
            .submit(req.clone(), pdes_core::ReplySlot::None)
            .is_none());
    }
    let live_gate = Arc::clone(&gate);
    let live = std::thread::spawn(move || {
        let mut client = IngestClient::with_policy(
            local_endpoint(Arc::clone(&live_gate), Duration::from_secs(10)),
            1234,
            RetryPolicy {
                max_attempts: 32,
                ..RetryPolicy::default()
            },
        );
        drive(&mut client, script(3, 24, 16, 10.0))
    });

    // One scripted worker kill: the supervisor restores from a GVT cut and
    // the gate replays its accepted-but-uncut suffix.
    let plan = FaultPlan::default().with_kill(0, 120);
    let rc = RtRunConfig::new(4, ecfg.clone(), gg_async())
        .with_faults(plan)
        .with_checkpoint_every(2)
        .with_watchdog(Some(Duration::from_secs(30)));
    let sup = SupervisorConfig::new(3).with_backoff(Duration::from_millis(1));
    let s = run_supervised_ingest(&model, &rc, &sup, Some(Arc::clone(&gate)));
    let report = live.join().expect("live client");

    assert!(s.recoveries >= 1, "the kill must fire: {:?}", s.log);
    assert!(s.completed_parallel(), "within retry budget: {:?}", s.log);
    assert_eq!(report.gave_up + report.transport_failed, 0, "{report:?}");
    assert!(gate.accepted_count() >= 20);
    assert_matches_merged_oracle(&s, &model, &ecfg, &gate, "chaos kill+recover");

    // Exactly-once at the journal level too: one record per accepted id,
    // no id journaled twice across the kill and restore.
    let records = IngestJournal::read_all::<()>(&path).expect("journal readable");
    let mut ids: Vec<(u32, u64)> = records.iter().map(|r| (r.source, r.id)).collect();
    ids.sort_unstable();
    let before = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), before, "an id was journaled twice");
    assert_eq!(
        ids.len(),
        gate.accepted_count(),
        "journal covers admissions"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn degraded_sequential_fallback_still_commits_accepted_events() {
    let model = model();
    let ecfg = ecfg(12.0);
    let gate: Arc<IngestGate<()>> = Arc::new(IngestGate::new(IngestConfig::default(), 0));
    for req in &script(1, 12, model.num_lps() as u32, 12.0) {
        assert!(gate
            .submit(req.clone(), pdes_core::ReplySlot::None)
            .is_none());
    }

    // The only attempt dies with a zero retry budget — but only after GVT
    // rounds have pumped the gate (the kill must be late enough for
    // admissions to land first; a genesis run always reaches cycle 60).
    // Scripting a *second* scripted death instead would be racy: the
    // per-attempt cycle counter restarts on retry, and a resumed attempt
    // can finish in a handful of cycles, sailing past any later kill. The
    // supervisor exhausts its (empty) budget and degrades to the
    // sequential engine, which must still merge the accepted suffix.
    let plan = FaultPlan::default().with_kill(0, 60);
    let rc = RtRunConfig::new(4, ecfg.clone(), gg_async())
        .with_faults(plan)
        .with_checkpoint_every(2)
        .with_watchdog(Some(Duration::from_secs(30)));
    let sup = SupervisorConfig::new(0).with_backoff(Duration::from_millis(1));
    let s = run_supervised_ingest(&model, &rc, &sup, Some(Arc::clone(&gate)));

    assert!(
        s.degraded,
        "the kill script must exhaust the budget: {:?}",
        s.log
    );
    assert!(
        gate.accepted_count() > 0,
        "some events were admitted before the kills"
    );
    assert_matches_merged_oracle(&s, &model, &ecfg, &gate, "degraded fallback");
}
