//! # ggpdes-models — simulation applications for the GG-PDES study
//!
//! Three models drive the paper's evaluation (§2.3):
//!
//! * [`phold::Phold`] — the classic synthetic benchmark, in a balanced
//!   variant and `1-k` imbalanced variants with shifting activity windows;
//! * [`epidemics::Epidemics`] — a location-aware SEIR household model with
//!   rotating lock-down regions;
//! * [`traffic::Traffic`] — a torus grid of intersections with inverse-power
//!   density around a city centre and Burr-distributed travel times.
//!
//! All models implement [`pdes_core::Model`], so they run unchanged on the
//! sequential oracle, the virtual-machine runtime, and the real-thread
//! runtime. [`locality::ActivitySchedule`] centralizes the shifting-window
//! logic (including the *linear* vs *non-linear* thread-grouping patterns of
//! the affinity study, Fig. 7).

pub mod burr;
pub mod epidemics;
pub mod locality;
pub mod phold;
pub mod traffic;

pub use burr::Burr;
pub use epidemics::{EpiEvent, Epidemics, EpidemicsConfig, Household, Stage};
pub use locality::{ActivitySchedule, LocalityPattern};
pub use phold::{Phold, PholdConfig};
pub use traffic::{Dir, Intersection, Traffic, TrafficConfig, TrafficEvent};
