//! Burr type XII distribution.
//!
//! The Traffic model draws vehicle travel times from a Burr distribution
//! with `c = 12.4`, `k = 0.46` (paper §2.3.3, citing empirical travel-time
//! studies). Sampling is by inverse CDF:
//!
//! `F(x) = 1 − (1 + x^c)^(−k)`  ⇒  `x = ((1 − u)^(−1/k) − 1)^(1/c)`.

use pdes_core::DetRng;
use serde::{Deserialize, Serialize};

/// Burr XII distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burr {
    pub c: f64,
    pub k: f64,
}

impl Burr {
    /// The paper's travel-time parameters.
    pub const TRAVEL_TIME: Burr = Burr { c: 12.4, k: 0.46 };

    pub fn new(c: f64, k: f64) -> Self {
        assert!(c > 0.0 && k > 0.0, "Burr parameters must be positive");
        Burr { c, k }
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        1.0 - (1.0 + x.powf(self.c)).powf(-self.k)
    }

    /// Quantile function (inverse CDF), `u ∈ [0, 1)`.
    pub fn quantile(&self, u: f64) -> f64 {
        assert!((0.0..1.0).contains(&u), "u must be in [0,1), got {u}");
        ((1.0 - u).powf(-1.0 / self.k) - 1.0).powf(1.0 / self.c)
    }

    /// Draw a sample.
    pub fn sample(&self, rng: &mut DetRng) -> f64 {
        self.quantile(rng.next_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_inverts_cdf() {
        let b = Burr::TRAVEL_TIME;
        for &u in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = b.quantile(u);
            assert!((b.cdf(x) - u).abs() < 1e-9, "u={u} x={x}");
        }
    }

    #[test]
    fn median_matches_closed_form() {
        let b = Burr::TRAVEL_TIME;
        // median = (2^(1/k) − 1)^(1/c)
        let expected = (2f64.powf(1.0 / b.k) - 1.0).powf(1.0 / b.c);
        assert!((b.quantile(0.5) - expected).abs() < 1e-12);
        // ≈ 1.106 for the paper's parameters.
        assert!((expected - 1.106).abs() < 0.01, "median {expected}");
    }

    #[test]
    fn samples_are_positive_and_plausible() {
        let b = Burr::TRAVEL_TIME;
        let mut rng = DetRng::seed_from_u64(5);
        let mut below_2 = 0;
        for _ in 0..10_000 {
            let x = b.sample(&mut rng);
            assert!(x > 0.0);
            if x < 2.0 {
                below_2 += 1;
            }
        }
        // CDF(2) ≈ 1 − (1 + 2^12.4)^(−0.46) ≈ 0.98 — nearly all mass < 2.
        assert!(below_2 > 9_500, "below_2={below_2}");
    }

    #[test]
    fn heavy_tail_exists() {
        let b = Burr::TRAVEL_TIME;
        // 99.99th percentile is large relative to the median.
        assert!(b.quantile(0.9999) > 2.0 * b.quantile(0.5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_params_rejected() {
        Burr::new(0.0, 1.0);
    }
}
