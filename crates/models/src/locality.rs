//! Temporal execution locality schedules.
//!
//! The paper's imbalanced workloads share one structure: at any virtual time
//! only one *group* of simulation threads receives events, and the active
//! group shifts as the simulation progresses (paper §2.3.1, §6.2). This
//! module centralizes that schedule so PHOLD, Epidemics, and the affinity
//! experiments all derive their activity windows the same way.

use pdes_core::{DetRng, LpId, LpMap, SimThreadId, VirtualTime};
use serde::{Deserialize, Serialize};

/// How thread ids map to groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LocalityPattern {
    /// Group `g` = threads `[g·T/k, (g+1)·T/k)` — consecutive ids
    /// ("linear execution locality", Fig. 7a).
    #[default]
    Linear,
    /// Group `g` = threads `{t : t mod k == g}` — strided, non-consecutive
    /// ids ("non-linear execution locality", Fig. 7b).
    Strided,
}

/// A shifting activity schedule over simulation threads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivitySchedule {
    pub num_threads: usize,
    /// Number of groups `k` (the "1-k" in the imbalanced model names).
    /// `1` means balanced (everything always active).
    pub groups: usize,
    /// Virtual-time length of one epoch; the active group is
    /// `floor(t / epoch_len) mod k`.
    pub epoch_len: f64,
    pub pattern: LocalityPattern,
}

impl ActivitySchedule {
    /// Balanced schedule: every thread active all the time.
    pub fn balanced(num_threads: usize) -> Self {
        ActivitySchedule {
            num_threads,
            groups: 1,
            epoch_len: f64::INFINITY,
            pattern: LocalityPattern::Linear,
        }
    }

    /// A `1-k` imbalanced schedule over `end_time`, with one full rotation
    /// through all groups (each group active for `end_time / k`).
    pub fn one_in_k(num_threads: usize, k: usize, end_time: f64, pattern: LocalityPattern) -> Self {
        assert!(k >= 1, "need at least one group");
        assert!(
            num_threads.is_multiple_of(k),
            "threads ({num_threads}) must divide into {k} groups"
        );
        ActivitySchedule {
            num_threads,
            groups: k,
            epoch_len: end_time / k as f64,
            pattern,
        }
    }

    /// Group active at virtual time `t`.
    pub fn active_group(&self, t: VirtualTime) -> usize {
        if self.groups == 1 {
            return 0;
        }
        (t.as_f64() / self.epoch_len) as usize % self.groups
    }

    /// Whether `thread` belongs to the group active at `t`.
    pub fn is_active(&self, thread: SimThreadId, t: VirtualTime) -> bool {
        self.group_of(thread) == self.active_group(t)
    }

    /// Group of a thread under the configured pattern.
    pub fn group_of(&self, thread: SimThreadId) -> usize {
        if self.groups == 1 {
            return 0;
        }
        let per = self.num_threads / self.groups;
        match self.pattern {
            LocalityPattern::Linear => thread.index() / per,
            LocalityPattern::Strided => thread.index() % self.groups,
        }
    }

    /// Threads in the group active at `t`, ascending.
    pub fn active_threads(&self, t: VirtualTime) -> Vec<SimThreadId> {
        let g = self.active_group(t);
        (0..self.num_threads)
            .map(|i| SimThreadId(i as u32))
            .filter(|&th| self.group_of(th) == g)
            .collect()
    }

    /// Sample a uniformly random LP owned by a thread of the group active at
    /// `t`. Requires `map.num_lps` divisible by `map.num_threads` so every
    /// thread owns the same number of LPs (weak scaling guarantees this).
    pub fn sample_active_lp(&self, rng: &mut DetRng, map: &LpMap, t: VirtualTime) -> LpId {
        debug_assert_eq!(map.num_threads as usize, self.num_threads);
        debug_assert_eq!(
            map.num_lps % map.num_threads,
            0,
            "weak scaling requires equal LPs per thread"
        );
        let g = self.active_group(t);
        let per_group = self.num_threads / self.groups;
        let pick = rng.next_below(per_group as u64) as usize;
        let thread = match self.pattern {
            LocalityPattern::Linear => g * per_group + pick,
            LocalityPattern::Strided => pick * self.groups + g,
        };
        let lps_per_thread = map.lps_per_thread();
        let j = rng.next_below(lps_per_thread as u64) as u32;
        // Invert the mapping: j-th LP of `thread`.
        match map.kind {
            pdes_core::MapKind::RoundRobin => LpId(thread as u32 + j * map.num_threads),
            pdes_core::MapKind::Block => LpId(thread as u32 * lps_per_thread as u32 + j),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::MapKind;

    fn vt(t: f64) -> VirtualTime {
        VirtualTime::from_f64(t)
    }

    #[test]
    fn balanced_is_always_active() {
        let s = ActivitySchedule::balanced(8);
        for t in [0.0, 10.0, 1e6] {
            for i in 0..8 {
                assert!(s.is_active(SimThreadId(i), vt(t)));
            }
        }
    }

    #[test]
    fn one_in_two_rotates_halves() {
        let s = ActivitySchedule::one_in_k(8, 2, 100.0, LocalityPattern::Linear);
        // First half of time: threads 0..4 active.
        assert!(s.is_active(SimThreadId(0), vt(10.0)));
        assert!(!s.is_active(SimThreadId(4), vt(10.0)));
        // Second half: threads 4..8.
        assert!(!s.is_active(SimThreadId(0), vt(60.0)));
        assert!(s.is_active(SimThreadId(4), vt(60.0)));
    }

    #[test]
    fn strided_groups_are_non_consecutive() {
        let s = ActivitySchedule::one_in_k(8, 4, 100.0, LocalityPattern::Strided);
        let active = s.active_threads(vt(0.0));
        assert_eq!(active, vec![SimThreadId(0), SimThreadId(4)]);
        let active = s.active_threads(vt(30.0));
        assert_eq!(active, vec![SimThreadId(1), SimThreadId(5)]);
    }

    #[test]
    fn group_rotation_wraps() {
        let s = ActivitySchedule::one_in_k(4, 4, 40.0, LocalityPattern::Linear);
        assert_eq!(s.active_group(vt(5.0)), 0);
        assert_eq!(s.active_group(vt(15.0)), 1);
        assert_eq!(s.active_group(vt(35.0)), 3);
        // Past end_time the rotation continues modulo k.
        assert_eq!(s.active_group(vt(45.0)), 0);
    }

    #[test]
    fn sampled_lps_always_land_on_active_threads() {
        for (kind, pattern) in [
            (MapKind::RoundRobin, LocalityPattern::Linear),
            (MapKind::RoundRobin, LocalityPattern::Strided),
            (MapKind::Block, LocalityPattern::Linear),
            (MapKind::Block, LocalityPattern::Strided),
        ] {
            let map = LpMap::new(32, 8, kind);
            let s = ActivitySchedule::one_in_k(8, 4, 80.0, pattern);
            let mut rng = DetRng::seed_from_u64(1);
            for step in 0..200 {
                let t = vt((step % 80) as f64);
                let lp = s.sample_active_lp(&mut rng, &map, t);
                let th = map.thread_of(lp);
                assert!(
                    s.is_active(th, t),
                    "{kind:?}/{pattern:?}: sampled {lp} on inactive {th} at {t}"
                );
            }
        }
    }

    #[test]
    fn sampling_covers_all_active_lps() {
        let map = LpMap::new(16, 4, MapKind::RoundRobin);
        let s = ActivitySchedule::one_in_k(4, 2, 100.0, LocalityPattern::Linear);
        let mut rng = DetRng::seed_from_u64(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            seen.insert(s.sample_active_lp(&mut rng, &map, vt(1.0)));
        }
        // Active threads 0,1 own LPs {0,4,8,12} ∪ {1,5,9,13}.
        assert_eq!(seen.len(), 8);
    }

    #[test]
    #[should_panic(expected = "groups")]
    fn indivisible_groups_rejected() {
        ActivitySchedule::one_in_k(6, 4, 10.0, LocalityPattern::Linear);
    }
}
