//! PHOLD — the classic synthetic PDES benchmark (paper §2.3.1).
//!
//! Every LP starts with one event; processing an event sends exactly one new
//! event, so the population is constant. The receive time adds a lookahead
//! plus an exponential draw to the sender's LVT. The balanced variant picks
//! destinations uniformly; the `1-k` imbalanced variants pick destinations
//! among LPs of the currently active thread group, producing the temporal
//! execution locality that demand-driven scheduling exploits.

use crate::locality::{ActivitySchedule, LocalityPattern};
use pdes_core::{LpId, LpMap, MapKind, Model, SendCtx};
use serde::{Deserialize, Serialize};

/// PHOLD configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PholdConfig {
    pub num_threads: usize,
    /// LPs served by each thread (paper: 128).
    pub lps_per_thread: usize,
    /// Minimum (lookahead) component of every delay.
    pub lookahead: f64,
    /// Mean of the exponential component added to the lookahead.
    pub mean_delay: f64,
    /// Activity schedule (balanced or 1-k imbalanced).
    pub schedule: ActivitySchedule,
    /// LP → thread mapping (ROSS round-robin by default).
    pub mapping: MapKind,
}

impl PholdConfig {
    /// Balanced PHOLD.
    pub fn balanced(num_threads: usize, lps_per_thread: usize) -> Self {
        PholdConfig {
            num_threads,
            lps_per_thread,
            lookahead: 0.1,
            mean_delay: 0.9,
            schedule: ActivitySchedule::balanced(num_threads),
            mapping: MapKind::RoundRobin,
        }
    }

    /// `1-k` imbalanced PHOLD rotating once over `end_time`.
    pub fn imbalanced(
        num_threads: usize,
        lps_per_thread: usize,
        k: usize,
        end_time: f64,
        pattern: LocalityPattern,
    ) -> Self {
        PholdConfig {
            schedule: ActivitySchedule::one_in_k(num_threads, k, end_time, pattern),
            ..PholdConfig::balanced(num_threads, lps_per_thread)
        }
    }
}

/// The PHOLD model.
#[derive(Debug, Clone)]
pub struct Phold {
    cfg: PholdConfig,
    map: LpMap,
}

impl Phold {
    pub fn new(cfg: PholdConfig) -> Self {
        assert!(cfg.lookahead > 0.0, "PHOLD requires positive lookahead");
        assert!(cfg.mean_delay >= 0.0);
        let map = LpMap::new(
            cfg.num_threads * cfg.lps_per_thread,
            cfg.num_threads,
            cfg.mapping,
        );
        Phold { cfg, map }
    }

    pub fn config(&self) -> &PholdConfig {
        &self.cfg
    }

    pub fn map(&self) -> LpMap {
        self.map.clone()
    }

    /// Draw the next hop: delay and destination (in the group active at the
    /// receive time, so events track the shifting window).
    fn next_hop(&self, ctx: &mut SendCtx<'_, ()>) -> (f64, LpId) {
        let delay = self.cfg.lookahead + ctx.rng().next_exp(self.cfg.mean_delay);
        let recv = ctx
            .now()
            .saturating_add(pdes_core::VirtualTime::from_f64(delay));
        let dst = self
            .cfg
            .schedule
            .sample_active_lp(ctx.rng(), &self.map, recv);
        (delay, dst)
    }
}

impl Model for Phold {
    /// Number of events this LP has processed.
    type State = u64;
    type Payload = ();

    fn num_lps(&self) -> usize {
        self.map.num_lps as usize
    }

    fn init_state(&self, _lp: LpId) -> u64 {
        0
    }

    fn init_events(&self, _lp: LpId, _state: &mut u64, ctx: &mut SendCtx<'_, ()>) {
        let (delay, dst) = self.next_hop(ctx);
        ctx.send(dst, delay, ());
    }

    fn handle_event(&self, _lp: LpId, state: &mut u64, _p: &(), ctx: &mut SendCtx<'_, ()>) {
        *state += 1;
        let (delay, dst) = self.next_hop(ctx);
        ctx.send(dst, delay, ());
    }

    fn state_digest(&self, state: &u64) -> u64 {
        let mut s = *state ^ 0x9827_41FD_0B5C_6E13;
        pdes_core::rng::splitmix64(&mut s)
    }

    fn lookahead(&self) -> f64 {
        // Every delay is `cfg.lookahead + Exp(mean_delay)` — the additive
        // floor is the model's conservative lookahead.
        self.cfg.lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::{run_sequential, EngineConfig, SimThreadId};
    use std::sync::Arc;

    #[test]
    fn balanced_population_is_constant() {
        let model = Arc::new(Phold::new(PholdConfig::balanced(4, 8)));
        let cfg = EngineConfig::default().with_end_time(20.0).with_seed(7);
        let r = run_sequential(&model, &cfg, None);
        // 32 events in flight, mean delay 1.0 → roughly 32 × 20 processed.
        assert!(r.committed > 300, "committed {}", r.committed);
        assert!(r.committed < 1300, "committed {}", r.committed);
    }

    #[test]
    fn imbalanced_run_is_deterministic_and_busy() {
        let cfg = PholdConfig::imbalanced(4, 4, 2, 40.0, LocalityPattern::Linear);
        let model = Arc::new(Phold::new(cfg));
        let ecfg = EngineConfig::default().with_end_time(40.0).with_seed(9);
        let r = run_sequential(&model, &ecfg, None);
        assert!(r.committed > 100);
        let r2 = run_sequential(&model, &ecfg, None);
        assert_eq!(r.commit_digest, r2.commit_digest);
        assert_eq!(r.state_digests, r2.state_digests);
    }

    #[test]
    fn imbalanced_work_shifts_between_halves() {
        // Run a 1-2 model to half time: only the first thread group should
        // have processed events (destinations are restricted to it).
        struct Probe(Phold);
        impl Model for Probe {
            type State = u64;
            type Payload = ();
            fn num_lps(&self) -> usize {
                self.0.num_lps()
            }
            fn init_state(&self, lp: LpId) -> u64 {
                self.0.init_state(lp)
            }
            fn init_events(&self, lp: LpId, s: &mut u64, ctx: &mut SendCtx<'_, ()>) {
                self.0.init_events(lp, s, ctx)
            }
            fn handle_event(&self, lp: LpId, s: &mut u64, p: &(), ctx: &mut SendCtx<'_, ()>) {
                self.0.handle_event(lp, s, p, ctx)
            }
            fn state_digest(&self, s: &u64) -> u64 {
                *s // raw counter, so the test can read it
            }
        }
        let cfg = PholdConfig::imbalanced(4, 4, 2, 40.0, LocalityPattern::Linear);
        let phold = Phold::new(cfg);
        let map = phold.map();
        let model = Arc::new(Probe(phold));
        // Stop just before the window shift.
        let ecfg = EngineConfig::default().with_end_time(19.0).with_seed(9);
        let r = run_sequential(&model, &ecfg, None);
        let mut by_group = [0u64; 2];
        for (i, &count) in r.state_digests.iter().enumerate() {
            let th = map.thread_of(pdes_core::LpId(i as u32));
            by_group[th.index() / 2] += count;
        }
        assert!(by_group[0] > 0, "first group must be active");
        assert_eq!(by_group[1], 0, "second group must be idle before the shift");

        // Past the shift the second group picks up work.
        let ecfg = EngineConfig::default().with_end_time(39.0).with_seed(9);
        let r = run_sequential(&model, &ecfg, None);
        let mut by_group = [0u64; 2];
        for (i, &count) in r.state_digests.iter().enumerate() {
            let th = map.thread_of(pdes_core::LpId(i as u32));
            by_group[th.index() / 2] += count;
        }
        assert!(
            by_group[1] > 0,
            "second group must activate after the shift"
        );
    }

    #[test]
    fn lookahead_bounds_delays() {
        // No event may arrive sooner than the lookahead — GVT progress
        // depends on it.
        let model = Arc::new(Phold::new(PholdConfig::balanced(2, 2)));
        let cfg = EngineConfig::default().with_end_time(5.0).with_seed(3);
        let r = run_sequential(&model, &cfg, None);
        assert!(r.committed > 0);
    }

    #[test]
    fn groups_of_threads_match_schedule() {
        let cfg = PholdConfig::imbalanced(8, 2, 4, 80.0, LocalityPattern::Strided);
        let model = Phold::new(cfg);
        let s = &model.config().schedule;
        assert_eq!(s.group_of(SimThreadId(0)), 0);
        assert_eq!(s.group_of(SimThreadId(5)), 1);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_rejected() {
        let mut cfg = PholdConfig::balanced(2, 2);
        cfg.lookahead = 0.0;
        Phold::new(cfg);
    }
}
