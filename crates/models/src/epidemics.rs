//! Location-aware SEIR epidemics model (paper §2.3.2).
//!
//! Each LP is a household with a fixed number of agents following the SEIR
//! progression (Susceptible → Exposed → Infectious → Recovered). A
//! configurable fraction of the region is under lock-down: locked households
//! never receive contact events, so their threads go quiet and become
//! de-scheduling candidates. The locked region shifts over the course of the
//! simulation (the unlocked window rotates through thread groups), and each
//! newly unlocked window is re-seeded with imported cases so activity is
//! sustained for the whole run.

use crate::locality::{ActivitySchedule, LocalityPattern};
use pdes_core::{LpId, LpMap, MapKind, Model, SendCtx};
use serde::{Deserialize, Serialize};

/// SEIR stage of one agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    Susceptible,
    Exposed,
    Infectious,
    Recovered,
}

/// Household state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Household {
    pub agents: Vec<Stage>,
    /// Contact events received (including ones that found no susceptible).
    pub contacts_seen: u64,
    /// Agents this household has infected elsewhere (sent contacts).
    pub contacts_sent: u64,
}

/// Event payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpiEvent {
    /// An exposure attempt arriving from another household.
    Contact,
    /// Timed SEIR progression of one local agent.
    Progress { agent: u8, to: Stage },
}

/// Epidemics configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpidemicsConfig {
    pub num_threads: usize,
    /// Households per thread (paper: 4096; scaled down for benches).
    pub lps_per_thread: usize,
    /// Agents per household (paper: 4).
    pub agents_per_household: usize,
    /// Locked-down fraction expressed as unlocked groups: `1/groups` of the
    /// region is unlocked (paper: 4 for 3/4 lock-down, 8 for 7/8).
    pub lockdown_groups: usize,
    /// Simulation end time; the unlocked window rotates once over it.
    pub end_time: f64,
    /// Mean exposed→infectious delay (exponential, plus lookahead).
    pub incubation_mean: f64,
    /// Mean infectious period.
    pub infectious_mean: f64,
    /// Contact events sent per agent becoming infectious.
    pub contacts_per_infection: usize,
    /// Imported cases seeded into each epoch's window.
    pub seeds_per_epoch: usize,
    /// Minimum delay on every event (lookahead).
    pub lookahead: f64,
    pub pattern: LocalityPattern,
    pub mapping: MapKind,
}

impl EpidemicsConfig {
    /// Paper-shaped defaults with the given scale and lock-down rate.
    pub fn new(
        num_threads: usize,
        lps_per_thread: usize,
        lockdown_groups: usize,
        end_time: f64,
    ) -> Self {
        EpidemicsConfig {
            num_threads,
            lps_per_thread,
            agents_per_household: 4,
            lockdown_groups,
            end_time,
            incubation_mean: 0.4,
            infectious_mean: 2.0,
            contacts_per_infection: 3,
            // Seed density scales with the region so weak scaling keeps the
            // epidemic's per-thread intensity comparable.
            seeds_per_epoch: (num_threads / 8).max(4),
            lookahead: 0.1,
            pattern: LocalityPattern::Linear,
            mapping: MapKind::RoundRobin,
        }
    }
}

/// The epidemics model.
#[derive(Debug, Clone)]
pub struct Epidemics {
    cfg: EpidemicsConfig,
    map: LpMap,
    schedule: ActivitySchedule,
}

impl Epidemics {
    pub fn new(cfg: EpidemicsConfig) -> Self {
        assert!(cfg.agents_per_household >= 1);
        assert!(cfg.lookahead > 0.0, "epidemics requires positive lookahead");
        let map = LpMap::new(
            cfg.num_threads * cfg.lps_per_thread,
            cfg.num_threads,
            cfg.mapping,
        );
        let schedule = ActivitySchedule::one_in_k(
            cfg.num_threads,
            cfg.lockdown_groups,
            cfg.end_time,
            cfg.pattern,
        );
        Epidemics { cfg, map, schedule }
    }

    pub fn config(&self) -> &EpidemicsConfig {
        &self.cfg
    }

    pub fn map(&self) -> LpMap {
        self.map.clone()
    }

    pub fn schedule(&self) -> &ActivitySchedule {
        &self.schedule
    }

    /// Send `Contact`s to random unlocked households over the infectious
    /// period starting at `ctx.now()`.
    fn emit_contacts(&self, state: &mut Household, ctx: &mut SendCtx<'_, EpiEvent>) {
        for _ in 0..self.cfg.contacts_per_infection {
            let delay = self.cfg.lookahead + ctx.rng().next_f64() * self.cfg.infectious_mean;
            let recv = ctx
                .now()
                .saturating_add(pdes_core::VirtualTime::from_f64(delay));
            let dst = self.schedule.sample_active_lp(ctx.rng(), &self.map, recv);
            ctx.send(dst, delay, EpiEvent::Contact);
            state.contacts_sent += 1;
        }
    }
}

impl Model for Epidemics {
    type State = Household;
    type Payload = EpiEvent;

    fn num_lps(&self) -> usize {
        self.map.num_lps as usize
    }

    fn init_state(&self, _lp: LpId) -> Household {
        Household {
            agents: vec![Stage::Susceptible; self.cfg.agents_per_household],
            contacts_seen: 0,
            contacts_sent: 0,
        }
    }

    fn init_events(&self, lp: LpId, _state: &mut Household, ctx: &mut SendCtx<'_, EpiEvent>) {
        // LP 0 acts as the importation source: it seeds each epoch's window
        // with a few contact events shortly after the window opens.
        if lp != LpId(0) {
            return;
        }
        let epochs = self.cfg.lockdown_groups;
        for e in 0..epochs {
            for _ in 0..self.cfg.seeds_per_epoch {
                let t = e as f64 * self.schedule.epoch_len
                    + self.cfg.lookahead
                    + ctx.rng().next_f64() * 0.2;
                let at = pdes_core::VirtualTime::from_f64(t);
                let dst = self.schedule.sample_active_lp(ctx.rng(), &self.map, at);
                ctx.send_at(dst, at, EpiEvent::Contact);
            }
        }
    }

    fn handle_event(
        &self,
        _lp: LpId,
        state: &mut Household,
        event: &EpiEvent,
        ctx: &mut SendCtx<'_, EpiEvent>,
    ) {
        match event {
            EpiEvent::Contact => {
                state.contacts_seen += 1;
                let susceptible: Vec<usize> = state
                    .agents
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| s == Stage::Susceptible)
                    .map(|(i, _)| i)
                    .collect();
                if susceptible.is_empty() {
                    return;
                }
                let pick = susceptible[ctx.rng().next_below(susceptible.len() as u64) as usize];
                state.agents[pick] = Stage::Exposed;
                let delay = self.cfg.lookahead + ctx.rng().next_exp(self.cfg.incubation_mean);
                ctx.send(
                    ctx.self_lp(),
                    delay,
                    EpiEvent::Progress {
                        agent: pick as u8,
                        to: Stage::Infectious,
                    },
                );
            }
            EpiEvent::Progress { agent, to } => {
                let a = *agent as usize;
                match to {
                    Stage::Infectious => {
                        debug_assert_eq!(state.agents[a], Stage::Exposed);
                        state.agents[a] = Stage::Infectious;
                        let duration =
                            self.cfg.lookahead + ctx.rng().next_exp(self.cfg.infectious_mean);
                        ctx.send(
                            ctx.self_lp(),
                            duration,
                            EpiEvent::Progress {
                                agent: *agent,
                                to: Stage::Recovered,
                            },
                        );
                        self.emit_contacts(state, ctx);
                    }
                    Stage::Recovered => {
                        debug_assert_eq!(state.agents[a], Stage::Infectious);
                        state.agents[a] = Stage::Recovered;
                    }
                    _ => unreachable!("progressions only target I and R"),
                }
            }
        }
    }

    fn state_digest(&self, state: &Household) -> u64 {
        let mut d = state.contacts_seen ^ state.contacts_sent.rotate_left(21);
        for (i, &s) in state.agents.iter().enumerate() {
            d ^= ((s as u64) + 1) << ((i % 16) * 4);
        }
        let mut s = d ^ 0x5E1A_11D3_77C9_204B;
        pdes_core::rng::splitmix64(&mut s)
    }

    fn lookahead(&self) -> f64 {
        // Incubation, recovery, and contact delays all add this floor.
        self.cfg.lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::{run_sequential, EngineConfig};
    use std::sync::Arc;

    fn small(groups: usize) -> EpidemicsConfig {
        EpidemicsConfig::new(4, 8, groups, 40.0)
    }

    #[test]
    fn epidemic_spreads_and_is_deterministic() {
        let model = Arc::new(Epidemics::new(small(4)));
        let cfg = EngineConfig::default().with_end_time(40.0).with_seed(13);
        let a = run_sequential(&model, &cfg, Some(200_000));
        let b = run_sequential(&model, &cfg, Some(200_000));
        assert_eq!(a, b);
        // Seeds + progressions + contacts → well beyond the seed count.
        assert!(
            a.committed > (4 * model.config().seeds_per_epoch) as u64,
            "committed {}",
            a.committed
        );
    }

    #[test]
    fn seir_stages_progress() {
        // After a long run some agents must have reached Recovered. Use a
        // probe digest equal to the count of non-susceptible agents.
        struct Probe(Epidemics);
        impl Model for Probe {
            type State = Household;
            type Payload = EpiEvent;
            fn num_lps(&self) -> usize {
                self.0.num_lps()
            }
            fn init_state(&self, lp: LpId) -> Household {
                self.0.init_state(lp)
            }
            fn init_events(&self, lp: LpId, s: &mut Household, ctx: &mut SendCtx<'_, EpiEvent>) {
                self.0.init_events(lp, s, ctx)
            }
            fn handle_event(
                &self,
                lp: LpId,
                s: &mut Household,
                p: &EpiEvent,
                ctx: &mut SendCtx<'_, EpiEvent>,
            ) {
                self.0.handle_event(lp, s, p, ctx)
            }
            fn state_digest(&self, s: &Household) -> u64 {
                s.agents
                    .iter()
                    .map(|&a| match a {
                        Stage::Susceptible => 0u64,
                        Stage::Exposed => 1 << 0,
                        Stage::Infectious => 1 << 20,
                        Stage::Recovered => 1 << 40,
                    })
                    .sum()
            }
        }
        let model = Arc::new(Probe(Epidemics::new(small(2))));
        let cfg = EngineConfig::default().with_end_time(40.0).with_seed(5);
        let r = run_sequential(&model, &cfg, Some(200_000));
        let total: u64 = r.state_digests.iter().sum();
        let recovered = total >> 40;
        assert!(recovered > 0, "someone must recover over a full run");
    }

    #[test]
    fn locked_region_is_quiet_before_shift() {
        struct Probe(Epidemics);
        impl Model for Probe {
            type State = Household;
            type Payload = EpiEvent;
            fn num_lps(&self) -> usize {
                self.0.num_lps()
            }
            fn init_state(&self, lp: LpId) -> Household {
                self.0.init_state(lp)
            }
            fn init_events(&self, lp: LpId, s: &mut Household, ctx: &mut SendCtx<'_, EpiEvent>) {
                self.0.init_events(lp, s, ctx)
            }
            fn handle_event(
                &self,
                lp: LpId,
                s: &mut Household,
                p: &EpiEvent,
                ctx: &mut SendCtx<'_, EpiEvent>,
            ) {
                self.0.handle_event(lp, s, p, ctx)
            }
            fn state_digest(&self, s: &Household) -> u64 {
                s.contacts_seen
            }
        }
        let epi = Epidemics::new(small(4));
        let map = epi.map();
        let sched = *epi.schedule();
        let model = Arc::new(Probe(epi));
        // Stop within the first epoch (epoch_len = 10).
        let cfg = EngineConfig::default().with_end_time(9.0).with_seed(5);
        let r = run_sequential(&model, &cfg, Some(200_000));
        for (i, &contacts) in r.state_digests.iter().enumerate() {
            let th = map.thread_of(LpId(i as u32));
            if sched.group_of(th) != 0 && contacts > 0 {
                panic!("locked household LP{i} on {th} saw {contacts} contacts");
            }
        }
    }

    #[test]
    fn contact_on_fully_exposed_household_is_absorbed() {
        let model = Epidemics::new(small(2));
        let mut state = Household {
            agents: vec![Stage::Recovered; 4],
            contacts_seen: 0,
            contacts_sent: 0,
        };
        let mut rng = pdes_core::DetRng::seed_from_u64(1);
        let mut seq = 0;
        let mut out = Vec::new();
        let mut ctx = SendCtx::new(
            LpId(1),
            pdes_core::VirtualTime::from_f64(1.0),
            &mut rng,
            &mut seq,
            &mut out,
        );
        model.handle_event(LpId(1), &mut state, &EpiEvent::Contact, &mut ctx);
        #[allow(clippy::drop_non_drop)] // end the ctx borrow explicitly
        drop(ctx);
        assert_eq!(state.contacts_seen, 1);
        assert!(out.is_empty(), "no progression for immune household");
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_rejected() {
        let mut cfg = small(2);
        cfg.lookahead = 0.0;
        Epidemics::new(cfg);
    }
}
