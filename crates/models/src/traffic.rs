//! Vehicular traffic model (paper §2.3.3).
//!
//! A torus grid of intersections; each LP is one intersection communicating
//! with its four cardinal neighbours. Vehicles flow through the grid via
//! three event types — arrival, lane selection, and departure. Per-LP
//! starting events decay with distance from the city centre following an
//! inverse power law (the `gradient` parameter), and travel times are drawn
//! from a Burr distribution with `c = 12.4`, `k = 0.46`.
//!
//! Unlike PHOLD/Epidemics, the spatial imbalance here is *static* (the
//! centre is always busier) and the lookahead is small, which makes the
//! model rollback-prone at scale — exactly the behaviour the paper reports
//! in §6.5.

use crate::burr::Burr;
use pdes_core::{LpId, LpMap, MapKind, Model, SendCtx};
use serde::{Deserialize, Serialize};

/// Cardinal directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dir {
    North,
    East,
    South,
    West,
}

impl Dir {
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];
}

/// Event payload: the life cycle of one vehicle hop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficEvent {
    /// A vehicle arrives at the intersection.
    Arrival,
    /// The vehicle picks an outgoing lane.
    LaneSelect,
    /// The vehicle departs towards `dir`.
    Departure(Dir),
}

/// Per-intersection state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Intersection {
    pub arrivals: u64,
    pub departures: u64,
    pub queued: u64,
}

/// Traffic configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficConfig {
    pub num_threads: usize,
    /// Intersections per thread (paper: 96).
    pub lps_per_thread: usize,
    /// Grid width; the height is `num_lps / width` (must divide evenly).
    pub grid_width: usize,
    /// Density gradient of the inverse power law (paper: 0.35 or 0.5).
    pub gradient: f64,
    /// Starting events at the city-centre LP (paper: 24).
    pub center_start_events: usize,
    /// Mean lane-selection delay.
    pub lane_delay_mean: f64,
    /// Mean intersection service time before departure.
    pub service_mean: f64,
    /// Minimum delay on every event.
    pub lookahead: f64,
    /// Travel-time distribution.
    pub travel: Burr,
    /// Multiplier on Burr travel-time samples. The Burr median is ~1.1 time
    /// units; scaling it down tightens the effective lookahead between
    /// intersections, producing the rollback-prone behaviour the paper
    /// reports for this model (§6.5).
    pub travel_scale: f64,
    /// Block mapping keeps grid regions per thread, preserving the spatial
    /// imbalance at thread granularity.
    pub mapping: MapKind,
}

impl TrafficConfig {
    pub fn new(num_threads: usize, lps_per_thread: usize, gradient: f64) -> Self {
        let num_lps = num_threads * lps_per_thread;
        // Widest factor of num_lps not exceeding its square root, so the
        // grid is as square as the LP count allows.
        let mut width = 1;
        for w in 1..=num_lps {
            if w * w > num_lps {
                break;
            }
            if num_lps.is_multiple_of(w) {
                width = w;
            }
        }
        TrafficConfig {
            num_threads,
            lps_per_thread,
            grid_width: width,
            gradient,
            center_start_events: 24,
            lane_delay_mean: 0.05,
            service_mean: 0.1,
            lookahead: 0.05,
            travel: Burr::TRAVEL_TIME,
            travel_scale: 1.0,
            mapping: MapKind::Block,
        }
    }
}

/// The traffic model.
#[derive(Debug, Clone)]
pub struct Traffic {
    cfg: TrafficConfig,
    map: LpMap,
    height: usize,
}

impl Traffic {
    pub fn new(cfg: TrafficConfig) -> Self {
        assert!(cfg.lookahead > 0.0, "traffic requires positive lookahead");
        let num_lps = cfg.num_threads * cfg.lps_per_thread;
        assert!(
            num_lps.is_multiple_of(cfg.grid_width),
            "grid width {} must divide {num_lps} LPs",
            cfg.grid_width
        );
        let height = num_lps / cfg.grid_width;
        let map = LpMap::new(num_lps, cfg.num_threads, cfg.mapping);
        Traffic { cfg, map, height }
    }

    pub fn config(&self) -> &TrafficConfig {
        &self.cfg
    }

    pub fn map(&self) -> LpMap {
        self.map.clone()
    }

    /// Grid coordinates of an LP (row-major layout).
    pub fn coords(&self, lp: LpId) -> (usize, usize) {
        let w = self.cfg.grid_width;
        (lp.index() % w, lp.index() / w)
    }

    /// Neighbour of `lp` towards `dir` on the torus.
    pub fn neighbor(&self, lp: LpId, dir: Dir) -> LpId {
        let (x, y) = self.coords(lp);
        let w = self.cfg.grid_width;
        let h = self.height;
        let (nx, ny) = match dir {
            Dir::North => (x, (y + h - 1) % h),
            Dir::South => (x, (y + 1) % h),
            Dir::East => ((x + 1) % w, y),
            Dir::West => ((x + w - 1) % w, y),
        };
        LpId((ny * w + nx) as u32)
    }

    /// Starting events for an LP: inverse power law in the distance from the
    /// city centre.
    pub fn start_events(&self, lp: LpId) -> usize {
        let (x, y) = self.coords(lp);
        let cx = (self.cfg.grid_width as f64 - 1.0) / 2.0;
        let cy = (self.height as f64 - 1.0) / 2.0;
        let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
        let n = self.cfg.center_start_events as f64 / (1.0 + d).powf(self.cfg.gradient);
        n.round() as usize
    }
}

impl Model for Traffic {
    type State = Intersection;
    type Payload = TrafficEvent;

    fn num_lps(&self) -> usize {
        self.map.num_lps as usize
    }

    fn init_state(&self, _lp: LpId) -> Intersection {
        Intersection::default()
    }

    fn init_events(
        &self,
        lp: LpId,
        _state: &mut Intersection,
        ctx: &mut SendCtx<'_, TrafficEvent>,
    ) {
        for _ in 0..self.start_events(lp) {
            let delay = self.cfg.lookahead + ctx.rng().next_exp(0.5);
            ctx.send(lp, delay, TrafficEvent::Arrival);
        }
    }

    fn handle_event(
        &self,
        lp: LpId,
        state: &mut Intersection,
        event: &TrafficEvent,
        ctx: &mut SendCtx<'_, TrafficEvent>,
    ) {
        match event {
            TrafficEvent::Arrival => {
                state.arrivals += 1;
                state.queued += 1;
                let delay = self.cfg.lookahead + ctx.rng().next_exp(self.cfg.lane_delay_mean);
                ctx.send(lp, delay, TrafficEvent::LaneSelect);
            }
            TrafficEvent::LaneSelect => {
                let dir = Dir::ALL[ctx.rng().next_below(4) as usize];
                let delay = self.cfg.lookahead + ctx.rng().next_exp(self.cfg.service_mean);
                ctx.send(lp, delay, TrafficEvent::Departure(dir));
            }
            TrafficEvent::Departure(dir) => {
                state.departures += 1;
                state.queued = state.queued.saturating_sub(1);
                let travel =
                    self.cfg.lookahead + self.cfg.travel.sample(ctx.rng()) * self.cfg.travel_scale;
                ctx.send(self.neighbor(lp, *dir), travel, TrafficEvent::Arrival);
            }
        }
    }

    fn state_digest(&self, state: &Intersection) -> u64 {
        let mut s = state.arrivals ^ state.departures.rotate_left(17) ^ (state.queued << 48);
        pdes_core::rng::splitmix64(&mut s)
    }

    fn lookahead(&self) -> f64 {
        // Arrival, service, and travel delays all add this floor.
        self.cfg.lookahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::{run_sequential, EngineConfig};
    use std::sync::Arc;

    #[test]
    fn grid_is_square_when_possible() {
        let t = Traffic::new(TrafficConfig::new(4, 4, 0.5));
        assert_eq!(t.cfg.grid_width, 4);
        assert_eq!(t.height, 4);
    }

    #[test]
    fn neighbors_wrap_on_torus() {
        let t = Traffic::new(TrafficConfig::new(4, 4, 0.5));
        let corner = LpId(0); // (0, 0)
        assert_eq!(t.coords(corner), (0, 0));
        assert_eq!(t.neighbor(corner, Dir::West), LpId(3));
        assert_eq!(t.neighbor(corner, Dir::North), LpId(12));
        assert_eq!(t.neighbor(corner, Dir::East), LpId(1));
        assert_eq!(t.neighbor(corner, Dir::South), LpId(4));
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let t = Traffic::new(TrafficConfig::new(4, 4, 0.35));
        for i in 0..t.num_lps() {
            let lp = LpId(i as u32);
            assert_eq!(t.neighbor(t.neighbor(lp, Dir::North), Dir::South), lp);
            assert_eq!(t.neighbor(t.neighbor(lp, Dir::East), Dir::West), lp);
        }
    }

    #[test]
    fn start_events_peak_at_center() {
        let t = Traffic::new(TrafficConfig::new(4, 16, 0.5));
        // 8×8 grid, centre around (3.5, 3.5).
        let center = LpId((3 * 8 + 3) as u32);
        let corner = LpId(0);
        assert!(t.start_events(center) > t.start_events(corner));
        // Near-centre cells approach the paper's 24 starting events (an even
        // grid has no exact centre cell).
        assert!(t.start_events(center) >= 15, "{}", t.start_events(center));
    }

    #[test]
    fn higher_gradient_concentrates_density() {
        let flat = Traffic::new(TrafficConfig::new(4, 16, 0.35));
        let steep = Traffic::new(TrafficConfig::new(4, 16, 0.5));
        let corner = LpId(0);
        assert!(steep.start_events(corner) <= flat.start_events(corner));
    }

    #[test]
    fn traffic_runs_and_is_deterministic() {
        let model = Arc::new(Traffic::new(TrafficConfig::new(2, 8, 0.5)));
        let cfg = EngineConfig::default().with_end_time(10.0).with_seed(21);
        let a = run_sequential(&model, &cfg, Some(100_000));
        let b = run_sequential(&model, &cfg, Some(100_000));
        assert_eq!(a, b);
        assert!(a.committed > 50, "committed {}", a.committed);
    }

    #[test]
    fn vehicle_count_is_conserved() {
        // Every Arrival eventually departs and re-arrives elsewhere: the sum
        // of (arrivals - departures) equals vehicles currently inside
        // intersections, which is bounded by total starting vehicles.
        struct Probe(Traffic);
        impl Model for Probe {
            type State = Intersection;
            type Payload = TrafficEvent;
            fn num_lps(&self) -> usize {
                self.0.num_lps()
            }
            fn init_state(&self, lp: LpId) -> Intersection {
                self.0.init_state(lp)
            }
            fn init_events(
                &self,
                lp: LpId,
                s: &mut Intersection,
                ctx: &mut SendCtx<'_, TrafficEvent>,
            ) {
                self.0.init_events(lp, s, ctx)
            }
            fn handle_event(
                &self,
                lp: LpId,
                s: &mut Intersection,
                p: &TrafficEvent,
                ctx: &mut SendCtx<'_, TrafficEvent>,
            ) {
                self.0.handle_event(lp, s, p, ctx)
            }
            fn state_digest(&self, s: &Intersection) -> u64 {
                s.queued
            }
        }
        let traffic = Traffic::new(TrafficConfig::new(2, 8, 0.5));
        let total_start: usize = (0..traffic.num_lps())
            .map(|i| traffic.start_events(LpId(i as u32)))
            .sum();
        let model = Arc::new(Probe(traffic));
        let cfg = EngineConfig::default().with_end_time(10.0).with_seed(21);
        let r = run_sequential(&model, &cfg, Some(100_000));
        let in_flight: u64 = r.state_digests.iter().sum();
        assert!(
            in_flight as usize <= total_start,
            "queued {in_flight} > started {total_start}"
        );
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_rejected() {
        let mut cfg = TrafficConfig::new(2, 2, 0.5);
        cfg.lookahead = 0.0;
        Traffic::new(cfg);
    }
}
