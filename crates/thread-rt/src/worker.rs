//! The per-thread worker: the ROSS main loop plus GVT rounds and
//! demand-driven scheduling, executed inline on a real OS thread.

use crate::affinity::{current_tid, note_pin_failure, pin_to_core, OsTid};
use crate::batch::SendBatcher;
use crate::ckpt::CkptSink;
use crate::shared::RtShared;
use pdes_core::{EngineConfig, LpId, Model, Msg, Outbound, ThreadEngine, VirtualTime};
use sim_rt::{AffinityPolicy, GvtMode, Scheduler, SystemConfig};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use telemetry::{EventKind, Tracer};

pub use crate::affinity::AffinityState;

/// Result of one worker thread.
pub struct WorkerResult {
    pub stats: pdes_core::ThreadStats,
    pub digests: Vec<(LpId, u64)>,
}

/// Run simulation thread `me` to completion.
pub fn worker_loop<M: Model>(
    me: usize,
    mut engine: ThreadEngine<M>,
    sh: Arc<RtShared<M::Payload>>,
    sys: SystemConfig,
    ecfg: EngineConfig,
    pin_cores: usize,
    ckpt: Arc<CkptSink<M>>,
) -> WorkerResult {
    sh.os_tids[me].store(current_tid().0, Ordering::Release);
    let mut tracer = sh.telemetry.tracer(me);
    if sys.affinity == AffinityPolicy::Constant {
        // Algorithm 3: round-robin constant pinning at setup.
        let core = me % pin_cores.max(1);
        if pin_to_core(current_tid(), core) {
            tracer.instant(EventKind::Pin, sh.now_ns(), core as u64);
        } else {
            note_pin_failure(core);
            sh.aff.lock().pin_failures += 1;
        }
    }

    let mut inbox: Vec<Msg<M::Payload>> = Vec::new();
    let mut outbox: Vec<Outbound<M::Payload>> = Vec::new();
    // Outgoing messages accumulate here and land as one bulk push per
    // destination; see `crate::batch` for the coverage argument and the
    // flush policy (cycle end, batch-full, before every GVT fold).
    let mut batcher: SendBatcher<M::Payload> = SendBatcher::new(sh.global_threads(), 64);
    let mut cycles_since_gvt: u64 = 0;
    let mut total_cycles: u64 = 0;
    let mut zero_counter: u64 = 0;
    let mut active_flag = true;
    let mut joined: Option<u64> = None;
    let mut idle_spins: u32 = 0;
    // ROSS 7 O'clock no-change backoff: widen the round interval while GVT
    // stands still (inert unless `ecfg.gvt_max_no_change > 0`).
    let mut backoff = pdes_core::GvtBackoff::default();

    // One main-loop cycle; returns whether it did useful work.
    let cycle = |engine: &mut ThreadEngine<M>,
                 inbox: &mut Vec<Msg<M::Payload>>,
                 outbox: &mut Vec<Outbound<M::Payload>>,
                 batcher: &mut SendBatcher<M::Payload>,
                 zero_counter: &mut u64,
                 active_flag: &mut bool,
                 idle_spins: &mut u32,
                 tracer: &mut Tracer,
                 sh: &RtShared<M::Payload>| {
        // Tracing a cycle costs two clock reads and two counter loads, paid
        // only when telemetry is on (the tracer's own calls are branches).
        let trace = tracer.enabled();
        let (t0, rb0) = if trace {
            (sh.now_ns(), engine.stats().rolled_back)
        } else {
            (0, 0)
        };
        inbox.clear();
        let n = sh.drain(me, inbox);
        outbox.clear();
        for m in inbox.drain(..) {
            engine.deliver(m, outbox);
        }
        let batch = engine.process_batch(ecfg.batch_size, outbox);
        for (dst, msg) in outbox.drain(..) {
            batcher.buffer(sh, me, dst.index(), msg);
        }
        // Flush at the cycle boundary: the batch above either advanced LVT
        // (processed events) or the thread is about to go idle — in both
        // cases the peer must see this cycle's sends now. Batch-full
        // overflow within the cycle already flushed inline.
        batcher.flush(sh);
        if trace {
            let undone = engine.stats().rolled_back - rb0;
            if batch.processed > 0 || undone > 0 {
                let t1 = sh.now_ns();
                if batch.processed > 0 {
                    tracer.span(EventKind::EventBatch, t0, t1, batch.processed as u64);
                }
                if undone > 0 {
                    tracer.span(EventKind::Rollback, t0, t1, undone);
                }
            }
        }
        let idle = n == 0 && batch.processed == 0;
        if idle {
            if !engine.has_live_pending() {
                *zero_counter += 1;
                if *zero_counter > ecfg.zero_counter_threshold as u64 {
                    *active_flag = false;
                }
            }
            // A horizon-blocked thread (live pending beyond gvt + window) is
            // just as idle as an empty one: it is waiting on a peer to move
            // a GVT phase forward. On an oversubscribed host a hard spin
            // here costs the peer a full scheduler slice per handoff, which
            // dwarfs the event work — so escalate spin → yield → timed park
            // and give the slice back.
            *idle_spins += 1;
            if *idle_spins >= 1024 {
                std::thread::park_timeout(std::time::Duration::from_micros(50));
            } else if (*idle_spins).is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        } else {
            *zero_counter = 0;
            *active_flag = true;
            *idle_spins = 0;
        }
        !idle
    };

    'main: loop {
        sh.set_phase(me, 0); // cycle
        if sh.terminated.load(Ordering::Acquire) {
            break;
        }
        total_cycles += 1;
        if sh.faults.should_kill(me, total_cycles) {
            // Scripted worker death: the panic unwinds through the runner's
            // catch guard, which poisons the shared state and reports
            // `RunError::WorkerPanicked` for the supervisor to recover from.
            panic!("fault-injected worker kill (thread {me}, cycle {total_cycles})");
        }
        cycle(
            &mut engine,
            &mut inbox,
            &mut outbox,
            &mut batcher,
            &mut zero_counter,
            &mut active_flag,
            &mut idle_spins,
            &mut tracer,
            &sh,
        );
        cycles_since_gvt += 1;

        let round_waiting = sh
            .round_waiting_for(me)
            .is_some_and(|id| joined != Some(id));
        let base_interval = match ecfg.adaptive_gvt {
            Some(a) => a.effective_interval(ecfg.gvt_interval, engine.history_len()),
            None => ecfg.gvt_interval,
        };
        // Memory pressure (watermarks) shortens the interval; a still GVT
        // widens it — pressure always wins because the backoff multiplies
        // the already-adapted base.
        let interval = backoff.effective_interval(base_interval);
        if cycles_since_gvt < interval as u64 && !round_waiting {
            continue;
        }
        let (participate, id) = sh.try_join_round(me);
        if !participate || joined == Some(id) {
            continue;
        }
        joined = Some(id);
        sh.note_joined(me, id);
        cycles_since_gvt = 0;
        let enter = Instant::now();
        let trace = tracer.enabled();
        let mut ph = if trace { sh.now_ns() } else { 0 };

        // ---- the GVT round ----
        match sys.gvt {
            GvtMode::Async => {
                // Phase A.
                sh.set_phase(me, 1); // gvt-a
                drain_deliver(me, &mut engine, &mut inbox, &mut outbox, &mut batcher, &sh);
                let local = engine.local_min();
                sh.fold_min(me, local);
                if trace {
                    sh.tel_publish(me, local, engine.stats());
                    let now = sh.now_ns();
                    tracer.span(EventKind::GvtA, ph, now, id);
                    ph = now;
                }
                sh.a_done.fetch_add(1, Ordering::AcqRel);
                let parts = sh.participants();
                // Phase Send: simulate while peers record their minima.
                // Escape on `terminated` so a watchdog trip (or poisoned
                // sibling) cannot strand this spin forever.
                sh.set_phase(me, 2); // gvt-send-a
                while sh.a_done.load(Ordering::Acquire) < parts
                    && !sh.terminated.load(Ordering::Acquire)
                {
                    cycle(
                        &mut engine,
                        &mut inbox,
                        &mut outbox,
                        &mut batcher,
                        &mut zero_counter,
                        &mut active_flag,
                        &mut idle_spins,
                        &mut tracer,
                        &sh,
                    );
                }
                // Phase B.
                sh.set_phase(me, 3); // gvt-b
                if trace {
                    let now = sh.now_ns();
                    tracer.span(EventKind::GvtSendA, ph, now, id);
                    ph = now;
                }
                drain_deliver(me, &mut engine, &mut inbox, &mut outbox, &mut batcher, &sh);
                let local = engine.local_min();
                sh.fold_min(me, local);
                if trace {
                    sh.tel_publish(me, local, engine.stats());
                    let now = sh.now_ns();
                    tracer.span(EventKind::GvtB, ph, now, id);
                    ph = now;
                }
                sh.b_done.fetch_add(1, Ordering::AcqRel);
                sh.set_phase(me, 4); // gvt-send-b
                while sh.b_done.load(Ordering::Acquire) < parts
                    && !sh.terminated.load(Ordering::Acquire)
                {
                    cycle(
                        &mut engine,
                        &mut inbox,
                        &mut outbox,
                        &mut batcher,
                        &mut zero_counter,
                        &mut active_flag,
                        &mut idle_spins,
                        &mut tracer,
                        &sh,
                    );
                }
                // Phase Aware: first thread through becomes pseudo-controller.
                sh.set_phase(me, 5); // gvt-aware
                if trace {
                    let now = sh.now_ns();
                    tracer.span(EventKind::GvtSendB, ph, now, id);
                    ph = now;
                }
                if sh
                    .aware_claimed
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    aware_duties(&sh, sys, id);
                }
                if trace {
                    let now = sh.now_ns();
                    tracer.span(EventKind::GvtAware, ph, now, id);
                    ph = now;
                }
            }
            GvtMode::Sync => {
                // Sync mode has no Send spins; map the three barriers onto
                // the same phase lanes so one trace vocabulary covers both
                // modes: fold = A, reduction barrier = B, controller = Aware,
                // exit barrier = Send-B.
                sh.set_phase(me, 9); // sync-bar0
                sh.bars[0].wait();
                drain_deliver(me, &mut engine, &mut inbox, &mut outbox, &mut batcher, &sh);
                let local = engine.local_min();
                sh.fold_min(me, local);
                if trace {
                    sh.tel_publish(me, local, engine.stats());
                    let now = sh.now_ns();
                    tracer.span(EventKind::GvtA, ph, now, id);
                    ph = now;
                }
                sh.set_phase(me, 10); // sync-bar1
                sh.bars[1].wait();
                if trace {
                    let now = sh.now_ns();
                    tracer.span(EventKind::GvtB, ph, now, id);
                    ph = now;
                }
                if sh
                    .aware_claimed
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    aware_duties(&sh, sys, id);
                }
                if trace {
                    let now = sh.now_ns();
                    tracer.span(EventKind::GvtAware, ph, now, id);
                    ph = now;
                }
                sh.set_phase(me, 11); // sync-bar2
                sh.bars[2].wait();
                if trace {
                    let now = sh.now_ns();
                    tracer.span(EventKind::GvtSendB, ph, now, id);
                    ph = now;
                }
            }
        }

        // Phase End.
        sh.set_phase(me, 6); // gvt-end
        if sh.ckpt_armed_for(id) {
            // The round was armed for a checkpoint at open time (with every
            // thread force-woken into the participant set). Wait for the
            // pseudo-controller to publish the cut GVT, then capture a
            // consistent cut: a chaos-exempt drain first pulls in every
            // cut-crossing message (all of them are queued by now — any
            // event processed after the phase-B folds has recv ≥ GVT, so its
            // sends do too), fossil collection pins the committed state at
            // the cut, and the snapshot is deposited for assembly.
            while !sh.ckpt_ready() && !sh.terminated.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            if sh.ckpt_ready() {
                let cw0 = if trace { sh.now_ns() } else { 0 };
                inbox.clear();
                sh.drain_clean(me, &mut inbox);
                outbox.clear();
                for m in inbox.drain(..) {
                    engine.deliver(m, &mut outbox);
                }
                for (dst, msg) in outbox.drain(..) {
                    sh.push_msg(me, dst.index(), msg);
                }
                let g = sh.gvt();
                engine.fossil_collect(g);
                let (lps, events) = engine.snapshot_at_gvt(g);
                ckpt.deposit(
                    id,
                    g,
                    sh.gvt_rounds.load(Ordering::Acquire),
                    lps,
                    events,
                    sh.participants(),
                    &sh.faults,
                );
                if trace {
                    tracer.span(EventKind::CheckpointWrite, cw0, sh.now_ns(), id);
                }
            } else {
                engine.fossil_collect(sh.gvt());
            }
        } else {
            engine.fossil_collect(sh.gvt());
        }
        sh.gvt_wall_ns
            .fetch_add(enter.elapsed().as_nanos() as u64, Ordering::AcqRel);
        backoff.observe(sh.gvt().ticks(), ecfg.gvt_max_no_change);
        let terminated = sh.terminated.load(Ordering::Acquire);
        let wants_deact = sys.demand_driven()
            && !terminated
            && !active_flag
            && sh.queue_len[me].load(Ordering::Acquire) == 0
            && !engine.has_live_pending()
            && sh.window_is_clear(me);
        if trace {
            // Refresh this thread's counters so the snapshot the round closer
            // takes reflects post-round totals, not the phase-B fold.
            sh.tel_publish(me, engine.local_min(), engine.stats());
        }
        let closed = sh.end_phase();
        if closed {
            // The closer stamps the per-round counter snapshot (no-op when
            // telemetry is off).
            sh.tel_round_snapshot(id);
            if trace {
                // Ingest verdicts land as per-round instants on the
                // closer's lane (only rounds with activity emit anything).
                if let Some((adm, rej, shed, busy)) = sh.ingest_round_deltas() {
                    let now = sh.now_ns();
                    for (kind, n) in [
                        (EventKind::IngestAdmit, adm),
                        (EventKind::IngestReject, rej),
                        (EventKind::IngestShed, shed),
                        (EventKind::IngestBusy, busy),
                    ] {
                        if n > 0 {
                            tracer.instant(kind, now, n);
                        }
                    }
                }
            }
        }
        if closed && sys.affinity == AffinityPolicy::Dynamic && !terminated {
            let mut aff = sh.aff.lock();
            let tids: Vec<OsTid> = sh
                .os_tids
                .iter()
                .map(|t| OsTid(t.load(Ordering::Acquire)))
                .collect();
            let moved = aff.assign(|t| sh.active[t].load(Ordering::Acquire), &tids);
            if trace && moved > 0 {
                // Migration lands on the closer's lane: it repins siblings.
                tracer.instant(EventKind::Migrate, sh.now_ns(), moved as u64);
            }
        }
        if trace {
            tracer.span(EventKind::GvtEnd, ph, sh.now_ns(), id);
        }
        if terminated {
            break;
        }
        if wants_deact {
            let parked = match sys.scheduler {
                Scheduler::GgPdes => sh.deactivate_self(me, id),
                Scheduler::DdPdes => {
                    sh.set_phase(me, 12); // dd-deact
                    let _g = sh.dd_lock.lock();
                    if sh.terminated.load(Ordering::Acquire) {
                        break 'main;
                    }
                    sh.deactivate_self(me, id)
                }
                Scheduler::Baseline => unreachable!("baseline never deactivates"),
            };
            if parked {
                sh.set_phase(me, 7); // parked
                let park0 = if trace { sh.now_ns() } else { 0 };
                if trace {
                    // An idle LVT is ∞: round snapshots render it as such.
                    sh.tel_publish(me, VirtualTime::INFINITY, engine.stats());
                }
                sh.sems[me].wait();
                // A wake token proves nothing by itself: a fault plan may
                // post a parked thread *without* activating it (spurious
                // wake-up). Only `active[me]` — set by the activator before
                // the post — or termination legitimises leaving the park.
                while !sh.active[me].load(Ordering::Acquire)
                    && !sh.terminated.load(Ordering::Acquire)
                {
                    sh.sems[me].wait();
                }
                // Algorithm 1 lines 14–17: reintegrate.
                zero_counter = 0;
                active_flag = true;
                cycles_since_gvt = 0;
                if trace {
                    let now = sh.now_ns();
                    tracer.span(EventKind::Park, park0, now, id);
                    tracer.instant(EventKind::Unpark, now, id);
                }
                if sh.terminated.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }

    sh.set_phase(me, 8); // done
    engine.finalize();
    sh.telemetry.deposit(tracer);
    WorkerResult {
        stats: engine.stats().clone(),
        digests: engine.state_digests(),
    }
}

/// Drain and deliver before folding a GVT minimum.
fn drain_deliver<M: Model>(
    me: usize,
    engine: &mut ThreadEngine<M>,
    inbox: &mut Vec<Msg<M::Payload>>,
    outbox: &mut Vec<Outbound<M::Payload>>,
    batcher: &mut SendBatcher<M::Payload>,
    sh: &RtShared<M::Payload>,
) {
    inbox.clear();
    sh.drain(me, inbox);
    outbox.clear();
    for m in inbox.drain(..) {
        engine.deliver(m, outbox);
    }
    for (dst, msg) in outbox.drain(..) {
        batcher.buffer(sh, me, dst.index(), msg);
    }
    // Every caller folds a GVT minimum next, which resets this thread's
    // send window — everything buffered must be in a queue before then.
    batcher.flush(sh);
}

/// Pseudo-controller duties: GVT, termination broadcast, activation.
fn aware_duties<P: Clone + serde::Serialize>(sh: &RtShared<P>, sys: SystemConfig, id: u64) {
    let gvt = sh.compute_gvt();
    let _ = gvt;
    // Admit external events against the floor just published — before the
    // checkpoint handshake, so an armed round's cut either drains the
    // injected event into an engine (where `send_time = cut GVT` keeps it
    // out of the snapshot) or journal replay covers it; either way exactly
    // one copy survives a restore.
    sh.pump_ingest();
    // Unblock End-phase snapshotters even when this GVT also terminates the
    // run — the final cut is still a valid (if redundant) checkpoint.
    sh.ckpt_publish_if_armed(id);
    if sh.terminated.load(Ordering::Acquire) {
        sh.release_all_for_termination();
    } else if matches!(sys.scheduler, Scheduler::GgPdes) {
        sh.activate();
    }
}

/// The DD-PDES controller loop (dedicated thread).
pub fn controller_loop<P>(sh: Arc<RtShared<P>>) {
    loop {
        if sh.controller_exit.load(Ordering::Acquire) {
            return;
        }
        {
            let _g = sh.dd_lock.lock();
            sh.activate();
        }
        std::thread::yield_now();
    }
}

/// Keep `VirtualTime` import alive for doc references.
#[allow(dead_code)]
fn _t(_: VirtualTime) {}
