//! The per-thread worker: the ROSS main loop plus GVT rounds and
//! demand-driven scheduling, executed inline on a real OS thread.

use crate::affinity::{current_tid, note_pin_failure, pin_to_core, OsTid};
use crate::ckpt::CkptSink;
use crate::shared::RtShared;
use pdes_core::{EngineConfig, LpId, Model, Msg, Outbound, ThreadEngine, VirtualTime};
use sim_rt::{AffinityPolicy, GvtMode, Scheduler, SystemConfig};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

pub use crate::affinity::AffinityState;

/// Result of one worker thread.
pub struct WorkerResult {
    pub stats: pdes_core::ThreadStats,
    pub digests: Vec<(LpId, u64)>,
}

/// Run simulation thread `me` to completion.
pub fn worker_loop<M: Model>(
    me: usize,
    mut engine: ThreadEngine<M>,
    sh: Arc<RtShared<M::Payload>>,
    sys: SystemConfig,
    ecfg: EngineConfig,
    pin_cores: usize,
    ckpt: Arc<CkptSink<M>>,
) -> WorkerResult {
    sh.os_tids[me].store(current_tid().0, Ordering::Release);
    if sys.affinity == AffinityPolicy::Constant {
        // Algorithm 3: round-robin constant pinning at setup.
        let core = me % pin_cores.max(1);
        if !pin_to_core(current_tid(), core) {
            note_pin_failure(core);
            sh.aff.lock().pin_failures += 1;
        }
    }

    let mut inbox: Vec<Msg<M::Payload>> = Vec::new();
    let mut outbox: Vec<Outbound<M::Payload>> = Vec::new();
    let mut cycles_since_gvt: u64 = 0;
    let mut total_cycles: u64 = 0;
    let mut zero_counter: u64 = 0;
    let mut active_flag = true;
    let mut joined: Option<u64> = None;
    let mut idle_spins: u32 = 0;

    // One main-loop cycle; returns whether it did useful work.
    let cycle = |engine: &mut ThreadEngine<M>,
                 inbox: &mut Vec<Msg<M::Payload>>,
                 outbox: &mut Vec<Outbound<M::Payload>>,
                 zero_counter: &mut u64,
                 active_flag: &mut bool,
                 idle_spins: &mut u32,
                 sh: &RtShared<M::Payload>| {
        inbox.clear();
        let n = sh.drain(me, inbox);
        outbox.clear();
        for m in inbox.drain(..) {
            engine.deliver(m, outbox);
        }
        let batch = engine.process_batch(ecfg.batch_size, outbox);
        for (dst, msg) in outbox.drain(..) {
            sh.push_msg(me, dst.index(), msg);
        }
        let idle = n == 0 && batch.processed == 0;
        if idle && !engine.has_live_pending() {
            *zero_counter += 1;
            if *zero_counter > ecfg.zero_counter_threshold as u64 {
                *active_flag = false;
            }
            *idle_spins += 1;
            if (*idle_spins).is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        } else {
            *zero_counter = 0;
            *active_flag = true;
            *idle_spins = 0;
        }
        !idle
    };

    'main: loop {
        sh.set_phase(me, 0); // cycle
        if sh.terminated.load(Ordering::Acquire) {
            break;
        }
        total_cycles += 1;
        if sh.faults.should_kill(me, total_cycles) {
            // Scripted worker death: the panic unwinds through the runner's
            // catch guard, which poisons the shared state and reports
            // `RunError::WorkerPanicked` for the supervisor to recover from.
            panic!("fault-injected worker kill (thread {me}, cycle {total_cycles})");
        }
        cycle(
            &mut engine,
            &mut inbox,
            &mut outbox,
            &mut zero_counter,
            &mut active_flag,
            &mut idle_spins,
            &sh,
        );
        cycles_since_gvt += 1;

        let round_waiting = sh
            .round_waiting_for(me)
            .is_some_and(|id| joined != Some(id));
        let interval = match ecfg.adaptive_gvt {
            Some(a) => a.effective_interval(ecfg.gvt_interval, engine.history_len()),
            None => ecfg.gvt_interval,
        };
        if cycles_since_gvt < interval as u64 && !round_waiting {
            continue;
        }
        let (participate, id) = sh.try_join_round(me);
        if !participate || joined == Some(id) {
            continue;
        }
        joined = Some(id);
        sh.note_joined(me, id);
        cycles_since_gvt = 0;
        let enter = Instant::now();

        // ---- the GVT round ----
        match sys.gvt {
            GvtMode::Async => {
                // Phase A.
                sh.set_phase(me, 1); // gvt-a
                drain_deliver(me, &mut engine, &mut inbox, &mut outbox, &sh);
                sh.fold_min(me, engine.local_min());
                sh.a_done.fetch_add(1, Ordering::AcqRel);
                let parts = sh.participants();
                // Phase Send: simulate while peers record their minima.
                // Escape on `terminated` so a watchdog trip (or poisoned
                // sibling) cannot strand this spin forever.
                sh.set_phase(me, 2); // gvt-send-a
                while sh.a_done.load(Ordering::Acquire) < parts
                    && !sh.terminated.load(Ordering::Acquire)
                {
                    cycle(
                        &mut engine,
                        &mut inbox,
                        &mut outbox,
                        &mut zero_counter,
                        &mut active_flag,
                        &mut idle_spins,
                        &sh,
                    );
                }
                // Phase B.
                sh.set_phase(me, 3); // gvt-b
                drain_deliver(me, &mut engine, &mut inbox, &mut outbox, &sh);
                sh.fold_min(me, engine.local_min());
                sh.b_done.fetch_add(1, Ordering::AcqRel);
                sh.set_phase(me, 4); // gvt-send-b
                while sh.b_done.load(Ordering::Acquire) < parts
                    && !sh.terminated.load(Ordering::Acquire)
                {
                    cycle(
                        &mut engine,
                        &mut inbox,
                        &mut outbox,
                        &mut zero_counter,
                        &mut active_flag,
                        &mut idle_spins,
                        &sh,
                    );
                }
                // Phase Aware: first thread through becomes pseudo-controller.
                sh.set_phase(me, 5); // gvt-aware
                if sh
                    .aware_claimed
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    aware_duties(&sh, sys, id);
                }
            }
            GvtMode::Sync => {
                sh.set_phase(me, 9); // sync-bar0
                sh.bars[0].wait();
                drain_deliver(me, &mut engine, &mut inbox, &mut outbox, &sh);
                sh.fold_min(me, engine.local_min());
                sh.set_phase(me, 10); // sync-bar1
                sh.bars[1].wait();
                if sh
                    .aware_claimed
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    aware_duties(&sh, sys, id);
                }
                sh.set_phase(me, 11); // sync-bar2
                sh.bars[2].wait();
            }
        }

        // Phase End.
        sh.set_phase(me, 6); // gvt-end
        if sh.ckpt_armed_for(id) {
            // The round was armed for a checkpoint at open time (with every
            // thread force-woken into the participant set). Wait for the
            // pseudo-controller to publish the cut GVT, then capture a
            // consistent cut: a chaos-exempt drain first pulls in every
            // cut-crossing message (all of them are queued by now — any
            // event processed after the phase-B folds has recv ≥ GVT, so its
            // sends do too), fossil collection pins the committed state at
            // the cut, and the snapshot is deposited for assembly.
            while !sh.ckpt_ready() && !sh.terminated.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            if sh.ckpt_ready() {
                inbox.clear();
                sh.drain_clean(me, &mut inbox);
                outbox.clear();
                for m in inbox.drain(..) {
                    engine.deliver(m, &mut outbox);
                }
                for (dst, msg) in outbox.drain(..) {
                    sh.push_msg(me, dst.index(), msg);
                }
                let g = sh.gvt();
                engine.fossil_collect(g);
                let (lps, events) = engine.snapshot_at_gvt(g);
                ckpt.deposit(
                    id,
                    g,
                    sh.gvt_rounds.load(Ordering::Acquire),
                    lps,
                    events,
                    sh.participants(),
                    &sh.faults,
                );
            } else {
                engine.fossil_collect(sh.gvt());
            }
        } else {
            engine.fossil_collect(sh.gvt());
        }
        sh.gvt_wall_ns
            .fetch_add(enter.elapsed().as_nanos() as u64, Ordering::AcqRel);
        let terminated = sh.terminated.load(Ordering::Acquire);
        let wants_deact = sys.demand_driven()
            && !terminated
            && !active_flag
            && sh.queue_len[me].load(Ordering::Acquire) == 0
            && !engine.has_live_pending()
            && sh.window_is_clear(me);
        let closed = sh.end_phase();
        if closed && sys.affinity == AffinityPolicy::Dynamic && !terminated {
            let mut aff = sh.aff.lock();
            let tids: Vec<OsTid> = sh
                .os_tids
                .iter()
                .map(|t| OsTid(t.load(Ordering::Acquire)))
                .collect();
            aff.assign(|t| sh.active[t].load(Ordering::Acquire), &tids);
        }
        if terminated {
            break;
        }
        if wants_deact {
            let parked = match sys.scheduler {
                Scheduler::GgPdes => sh.deactivate_self(me, id),
                Scheduler::DdPdes => {
                    sh.set_phase(me, 12); // dd-deact
                    let _g = sh.dd_lock.lock();
                    if sh.terminated.load(Ordering::Acquire) {
                        break 'main;
                    }
                    sh.deactivate_self(me, id)
                }
                Scheduler::Baseline => unreachable!("baseline never deactivates"),
            };
            if parked {
                sh.set_phase(me, 7); // parked
                sh.sems[me].wait();
                // A wake token proves nothing by itself: a fault plan may
                // post a parked thread *without* activating it (spurious
                // wake-up). Only `active[me]` — set by the activator before
                // the post — or termination legitimises leaving the park.
                while !sh.active[me].load(Ordering::Acquire)
                    && !sh.terminated.load(Ordering::Acquire)
                {
                    sh.sems[me].wait();
                }
                // Algorithm 1 lines 14–17: reintegrate.
                zero_counter = 0;
                active_flag = true;
                cycles_since_gvt = 0;
                if sh.terminated.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }

    sh.set_phase(me, 8); // done
    engine.finalize();
    WorkerResult {
        stats: engine.stats().clone(),
        digests: engine.state_digests(),
    }
}

/// Drain and deliver before folding a GVT minimum.
fn drain_deliver<M: Model>(
    me: usize,
    engine: &mut ThreadEngine<M>,
    inbox: &mut Vec<Msg<M::Payload>>,
    outbox: &mut Vec<Outbound<M::Payload>>,
    sh: &RtShared<M::Payload>,
) {
    inbox.clear();
    sh.drain(me, inbox);
    outbox.clear();
    for m in inbox.drain(..) {
        engine.deliver(m, outbox);
    }
    for (dst, msg) in outbox.drain(..) {
        sh.push_msg(me, dst.index(), msg);
    }
}

/// Pseudo-controller duties: GVT, termination broadcast, activation.
fn aware_duties<P>(sh: &RtShared<P>, sys: SystemConfig, id: u64) {
    let gvt = sh.compute_gvt();
    let _ = gvt;
    // Unblock End-phase snapshotters even when this GVT also terminates the
    // run — the final cut is still a valid (if redundant) checkpoint.
    sh.ckpt_publish_if_armed(id);
    if sh.terminated.load(Ordering::Acquire) {
        sh.release_all_for_termination();
    } else if matches!(sys.scheduler, Scheduler::GgPdes) {
        sh.activate();
    }
}

/// The DD-PDES controller loop (dedicated thread).
pub fn controller_loop<P>(sh: Arc<RtShared<P>>) {
    loop {
        if sh.controller_exit.load(Ordering::Acquire) {
            return;
        }
        {
            let _g = sh.dd_lock.lock();
            sh.activate();
        }
        std::thread::yield_now();
    }
}

/// Keep `VirtualTime` import alive for doc references.
#[allow(dead_code)]
fn _t(_: VirtualTime) {}
