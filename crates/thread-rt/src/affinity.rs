//! CPU affinity via `sched_setaffinity` (Linux) with a graceful no-op
//! fallback elsewhere.
//!
//! The paper pins POSIX threads with `pthread_setaffinity_np` (constant
//! affinity, Algorithm 3) and re-pins running threads with
//! `sched_setaffinity` (dynamic affinity, Algorithm 4). Both reduce to the
//! same syscall on Linux; we address threads by kernel tid so any thread can
//! re-pin any other.

/// A kernel thread id usable as a `sched_setaffinity` target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsTid(pub i64);

/// The calling thread's kernel tid.
#[cfg(target_os = "linux")]
pub fn current_tid() -> OsTid {
    // SAFETY: gettid has no preconditions.
    OsTid(unsafe { libc::syscall(libc::SYS_gettid) })
}

#[cfg(not(target_os = "linux"))]
pub fn current_tid() -> OsTid {
    OsTid(0)
}

/// Pin `tid` to a single core. Returns whether the kernel accepted the mask
/// (failures — e.g. the core does not exist on this host — are reported, not
/// fatal: the experiment degrades to kernel scheduling).
#[cfg(target_os = "linux")]
pub fn pin_to_core(tid: OsTid, core: usize) -> bool {
    // SAFETY: CPU_SET manipulates a local cpu_set_t; sched_setaffinity
    // validates the tid and mask.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        if core >= libc::CPU_SETSIZE as usize {
            return false;
        }
        libc::CPU_SET(core, &mut set);
        libc::sched_setaffinity(
            tid.0 as libc::pid_t,
            std::mem::size_of::<libc::cpu_set_t>(),
            &set,
        ) == 0
    }
}

#[cfg(not(target_os = "linux"))]
pub fn pin_to_core(_tid: OsTid, _core: usize) -> bool {
    false
}

/// Clear the pin (allow all cores).
#[cfg(target_os = "linux")]
pub fn unpin(tid: OsTid) -> bool {
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        for c in 0..num_cores().min(libc::CPU_SETSIZE as usize) {
            libc::CPU_SET(c, &mut set);
        }
        libc::sched_setaffinity(
            tid.0 as libc::pid_t,
            std::mem::size_of::<libc::cpu_set_t>(),
            &set,
        ) == 0
    }
}

#[cfg(not(target_os = "linux"))]
pub fn unpin(_tid: OsTid) -> bool {
    false
}

/// Log the first `sched_setaffinity` rejection (once per process — a host
/// that rejects one pin typically rejects them all, and repeating the warning
/// per GVT round would swamp the output). Callers also count every rejection
/// in the `pin_failures` run metric.
pub fn note_pin_failure(core: usize) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: sched_setaffinity rejected core {core}; \
             falling back to kernel scheduling (counted in pin_failures)"
        );
    });
}

/// Number of online cores.
pub fn num_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_tid_is_stable_within_thread() {
        assert_eq!(current_tid(), current_tid());
    }

    #[test]
    fn tids_differ_across_threads() {
        if cfg!(not(target_os = "linux")) {
            return;
        }
        let a = current_tid();
        let b = std::thread::spawn(current_tid).join().expect("join");
        assert_ne!(a, b);
    }

    #[test]
    fn pin_to_core_zero_succeeds_on_linux() {
        if cfg!(not(target_os = "linux")) {
            return;
        }
        assert!(pin_to_core(current_tid(), 0), "core 0 always exists");
        assert!(unpin(current_tid()));
    }

    #[test]
    fn pin_to_absurd_core_fails_gracefully() {
        assert!(!pin_to_core(current_tid(), 1 << 20));
    }

    #[test]
    fn num_cores_positive() {
        assert!(num_cores() >= 1);
    }
}
