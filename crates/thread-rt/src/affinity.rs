//! CPU affinity via `sched_setaffinity` (Linux) with a graceful no-op
//! fallback elsewhere.
//!
//! The paper pins POSIX threads with `pthread_setaffinity_np` (constant
//! affinity, Algorithm 3) and re-pins running threads with
//! `sched_setaffinity` (dynamic affinity, Algorithm 4). Both reduce to the
//! same syscall on Linux; we address threads by kernel tid so any thread can
//! re-pin any other.

/// A kernel thread id usable as a `sched_setaffinity` target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsTid(pub i64);

/// The calling thread's kernel tid.
#[cfg(target_os = "linux")]
pub fn current_tid() -> OsTid {
    // SAFETY: gettid has no preconditions.
    OsTid(unsafe { libc::syscall(libc::SYS_gettid) })
}

#[cfg(not(target_os = "linux"))]
pub fn current_tid() -> OsTid {
    OsTid(0)
}

/// Pin `tid` to a single core. Returns whether the kernel accepted the mask
/// (failures — e.g. the core does not exist on this host — are reported, not
/// fatal: the experiment degrades to kernel scheduling).
#[cfg(target_os = "linux")]
pub fn pin_to_core(tid: OsTid, core: usize) -> bool {
    // SAFETY: CPU_SET manipulates a local cpu_set_t; sched_setaffinity
    // validates the tid and mask.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        if core >= libc::CPU_SETSIZE as usize {
            return false;
        }
        libc::CPU_SET(core, &mut set);
        libc::sched_setaffinity(
            tid.0 as libc::pid_t,
            std::mem::size_of::<libc::cpu_set_t>(),
            &set,
        ) == 0
    }
}

#[cfg(not(target_os = "linux"))]
pub fn pin_to_core(_tid: OsTid, _core: usize) -> bool {
    false
}

/// Clear the pin (allow all cores).
#[cfg(target_os = "linux")]
pub fn unpin(tid: OsTid) -> bool {
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        for c in 0..num_cores().min(libc::CPU_SETSIZE as usize) {
            libc::CPU_SET(c, &mut set);
        }
        libc::sched_setaffinity(
            tid.0 as libc::pid_t,
            std::mem::size_of::<libc::cpu_set_t>(),
            &set,
        ) == 0
    }
}

#[cfg(not(target_os = "linux"))]
pub fn unpin(_tid: OsTid) -> bool {
    false
}

/// Log the first `sched_setaffinity` rejection (once per process — a host
/// that rejects one pin typically rejects them all, and repeating the warning
/// per GVT round would swamp the output). Callers also count every rejection
/// in the `pin_failures` run metric.
pub fn note_pin_failure(core: usize) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: sched_setaffinity rejected core {core}; \
             falling back to kernel scheduling (counted in pin_failures)"
        );
    });
}

/// Number of online cores.
pub fn num_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Dynamic-affinity tables for the real runtime (Algorithm 4 state): the
/// forward table `core_of` (thread → pinned core) and its inverse load table
/// `core_load` (core → number of hardware threads pinned there). The SMT
/// heuristic from the paper falls out of `assign`: a new pin always goes to
/// a core with the fewest active hardware threads, so sibling hyperthreads
/// fill up last.
#[derive(Debug)]
pub struct AffinityState {
    pub num_cores: usize,
    pub core_load: Vec<u32>,
    pub core_of: Vec<Option<usize>>,
    /// `sched_setaffinity` rejections (the pin is still *recorded* in the
    /// load tables so placement stays deterministic; only the syscall
    /// failed, leaving the thread on kernel scheduling).
    pub pin_failures: u64,
}

impl AffinityState {
    pub fn new(num_cores: usize, num_threads: usize) -> Self {
        AffinityState {
            num_cores: num_cores.max(1),
            core_load: vec![0; num_cores.max(1)],
            core_of: vec![None; num_threads],
            pin_failures: 0,
        }
    }

    pub fn clear(&mut self, thread: usize) {
        if let Some(c) = self.core_of[thread].take() {
            self.core_load[c] -= 1;
        }
    }

    /// Pin every active-but-unpinned thread to the least-loaded core.
    #[allow(clippy::needless_range_loop)] // t indexes three parallel arrays
    pub fn assign(&mut self, active: impl Fn(usize) -> bool, tids: &[OsTid]) -> usize {
        let mut pinned = 0;
        for t in 0..self.core_of.len() {
            if !active(t) || self.core_of[t].is_some() {
                continue;
            }
            let mut best = 0;
            for c in 1..self.num_cores {
                if self.core_load[c] < self.core_load[best] {
                    best = c;
                }
            }
            self.core_of[t] = Some(best);
            self.core_load[best] += 1;
            if !pin_to_core(tids[t], best) {
                self.pin_failures += 1;
                note_pin_failure(best);
            }
            pinned += 1;
        }
        pinned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_tid_is_stable_within_thread() {
        assert_eq!(current_tid(), current_tid());
    }

    #[test]
    fn tids_differ_across_threads() {
        if cfg!(not(target_os = "linux")) {
            return;
        }
        let a = current_tid();
        let b = std::thread::spawn(current_tid).join().expect("join");
        assert_ne!(a, b);
    }

    #[test]
    fn pin_to_core_zero_succeeds_on_linux() {
        if cfg!(not(target_os = "linux")) {
            return;
        }
        assert!(pin_to_core(current_tid(), 0), "core 0 always exists");
        assert!(unpin(current_tid()));
    }

    #[test]
    fn pin_to_absurd_core_fails_gracefully() {
        assert!(!pin_to_core(current_tid(), 1 << 20));
    }

    #[test]
    fn num_cores_positive() {
        assert!(num_cores() >= 1);
    }

    /// A tid no kernel thread has, so `pin_to_core` fails deterministically
    /// and the tests exercise pure table bookkeeping without actually
    /// pinning the test runner.
    fn ghost_tids(n: usize) -> Vec<OsTid> {
        (0..n).map(|_| OsTid(i64::MAX)).collect()
    }

    /// Invariant: `core_load` is exactly the inverse of `core_of` — each
    /// core's load equals the number of threads pinned there.
    fn check_tables(a: &AffinityState) {
        for (c, &load) in a.core_load.iter().enumerate() {
            let pinned = a.core_of.iter().filter(|&&co| co == Some(c)).count();
            assert_eq!(load as usize, pinned, "core {c}: load {load} vs {pinned}");
        }
    }

    #[test]
    fn assign_prefers_core_with_fewest_hardware_threads() {
        let tids = ghost_tids(1);
        let mut a = AffinityState::new(4, 1);
        // Cores 0 and 2 already carry pinned siblings; 1 and 3 are empty.
        a.core_load = vec![2, 0, 1, 0];
        a.assign(|_| true, &tids);
        assert_eq!(
            a.core_of[0],
            Some(1),
            "least-loaded core wins (tie → lowest id)"
        );
        check_tables_with_preload(&a, &[2, 0, 1, 0]);
    }

    fn check_tables_with_preload(a: &AffinityState, preload: &[u32]) {
        for (c, &load) in a.core_load.iter().enumerate() {
            let pinned = a.core_of.iter().filter(|&&co| co == Some(c)).count();
            assert_eq!(load as usize, pinned + preload[c] as usize);
        }
    }

    #[test]
    fn assign_fills_empty_cores_before_doubling_up() {
        let tids = ghost_tids(6);
        let mut a = AffinityState::new(4, 6);
        a.assign(|t| t < 4, &tids);
        // First wave: one thread per core, no SMT sharing.
        let first: Vec<_> = a.core_of[..4].iter().map(|c| c.unwrap()).collect();
        let mut sorted = first.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Second wave: only now do cores take a second hardware thread.
        a.assign(|_| true, &tids);
        assert!(a.core_load.iter().all(|&l| l <= 2));
        assert_eq!(a.core_load.iter().sum::<u32>(), 6);
        check_tables(&a);
    }

    #[test]
    fn assign_skips_inactive_and_already_pinned_threads() {
        let tids = ghost_tids(3);
        let mut a = AffinityState::new(2, 3);
        assert_eq!(a.assign(|t| t == 1, &tids), 1);
        let pinned_core = a.core_of[1];
        assert!(pinned_core.is_some());
        assert_eq!(a.core_of[0], None);
        // Re-assigning does not move or re-pin thread 1.
        assert_eq!(a.assign(|t| t == 1, &tids), 0);
        assert_eq!(a.core_of[1], pinned_core);
        check_tables(&a);
    }

    #[test]
    fn clear_is_idempotent_and_releases_load() {
        let tids = ghost_tids(2);
        let mut a = AffinityState::new(2, 2);
        a.assign(|_| true, &tids);
        assert_eq!(a.core_load.iter().sum::<u32>(), 2);
        a.clear(0);
        assert_eq!(a.core_of[0], None);
        assert_eq!(a.core_load.iter().sum::<u32>(), 1);
        a.clear(0); // clearing an unpinned thread is a no-op
        assert_eq!(a.core_load.iter().sum::<u32>(), 1);
        check_tables(&a);
    }

    #[test]
    fn tables_stay_consistent_after_activate_deactivate_churn() {
        let tids = ghost_tids(8);
        let mut a = AffinityState::new(3, 8);
        let mut active = [false; 8];
        let mut rng: u64 = 0x5EED;
        for step in 0..500 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = (rng >> 33) as usize % 8;
            if active[t] {
                active[t] = false;
                a.clear(t);
            } else {
                active[t] = true;
            }
            a.assign(|i| active[i], &tids);
            check_tables(&a);
            // Every active thread is pinned, every inactive one is not.
            for (i, &on) in active.iter().enumerate() {
                assert_eq!(a.core_of[i].is_some(), on, "step {step}, thread {i}");
            }
            assert_eq!(
                a.core_load.iter().sum::<u32>() as usize,
                active.iter().filter(|&&on| on).count()
            );
        }
        // Ghost tids can never be pinned for real: every recorded pin also
        // counted a failure, deterministically.
        assert!(a.pin_failures > 0);
    }
}
