//! Typed checkpoint assembly for the real-thread runtime.
//!
//! [`RtShared`](crate::shared::RtShared) carries only the *coordination*
//! scalars of an armed checkpoint round (cadence, armed round id, the
//! published cut GVT) because it is generic over the payload alone. The
//! per-thread snapshots are typed by the model's state as well, so they flow
//! through this separate sink: every participant of an armed round deposits
//! its engine's cut here, and the last depositor assembles the full
//! [`Checkpoint`], retains it in memory for the supervisor, and (when a path
//! is configured) writes it to disk atomically.

use parking_lot::Mutex;
use pdes_core::{Checkpoint, Event, FaultInjector, LpCheckpoint, LpMap, Model, VirtualTime};
use std::path::PathBuf;

struct Deposit<M: Model> {
    round: u64,
    lps: Vec<LpCheckpoint<M::State>>,
    events: Vec<Event<M::Payload>>,
}

/// Shared checkpoint sink of one run attempt.
pub struct CkptSink<M: Model> {
    /// Destination for atomic on-disk checkpoints (`None` = memory only).
    pub path: Option<PathBuf>,
    map: LpMap,
    deposits: Mutex<Vec<Deposit<M>>>,
    latest: Mutex<Option<Checkpoint<M::State, M::Payload>>>,
}

impl<M: Model> CkptSink<M> {
    pub fn new(path: Option<PathBuf>, map: LpMap) -> Self {
        CkptSink {
            path,
            map,
            deposits: Mutex::new(Vec::new()),
            latest: Mutex::new(None),
        }
    }

    /// Deposit one participant's cut for the armed round `round`. The
    /// depositor completing the set (`expected` participants) assembles and
    /// publishes the checkpoint; returns whether this call assembled it.
    ///
    /// Deposits from an earlier round that never completed (a participant
    /// died mid-round) are discarded here: rounds are serialized, so any
    /// entry with a different round id is dead.
    #[allow(clippy::too_many_arguments)] // one call site, all cut components
    pub fn deposit(
        &self,
        round: u64,
        gvt: VirtualTime,
        gvt_rounds: u64,
        lps: Vec<LpCheckpoint<M::State>>,
        events: Vec<Event<M::Payload>>,
        expected: usize,
        faults: &FaultInjector,
    ) -> bool {
        let mut deps = self.deposits.lock();
        deps.retain(|d| d.round == round);
        deps.push(Deposit { round, lps, events });
        if deps.len() < expected {
            return false;
        }
        let mut all_lps = Vec::new();
        let mut all_events = Vec::new();
        for mut d in deps.drain(..) {
            all_lps.append(&mut d.lps);
            all_events.append(&mut d.events);
        }
        // Deposit order is a thread race; sort so the assembled checkpoint
        // is identical across runs.
        all_lps.sort_by_key(|l| l.lp);
        all_events.sort_by_key(|e| e.key);
        let ckpt = Checkpoint {
            gvt,
            gvt_rounds,
            lps: all_lps,
            events: all_events,
            map: self.map.clone(),
            cursor: faults.cursor(),
        };
        if let Some(path) = &self.path {
            if let Err(e) = ckpt.write_atomic(path) {
                eprintln!("[checkpoint] write failed (run continues): {e}");
            }
        }
        *self.latest.lock() = Some(ckpt);
        true
    }

    /// The newest fully assembled checkpoint of this attempt, if any.
    pub fn latest(&self) -> Option<Checkpoint<M::State, M::Payload>> {
        self.latest.lock().clone()
    }
}
