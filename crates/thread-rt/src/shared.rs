//! Shared state of the real-thread runtime.
//!
//! The hot arrays mirror the paper's layout: per-thread input queues
//! (crossbeam `SegQueue`), the `active_threads` flags and `sem_locks`
//! semaphores, all cache-line padded. GVT round *counters* are plain
//! atomics; only round membership transitions (open-snapshot, subscribe,
//! unsubscribe) take a small mutex — a documented deviation from the paper's
//! fully lock-free design that buys a provable absence of the
//! snapshot-vs-deactivation race on real hardware (see DESIGN.md; the
//! lock-free variant's behaviour is what `sim-rt` models and measures).

use crate::sync::{DynBarrier, Semaphore};
use crossbeam::queue::SegQueue;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use pdes_core::{
    batch_has_uid_pairs, EventUid, FaultInjector, IngestError, IngestGate, LpMap, Msg, RoundDump,
    SimThreadId, StallDump, ThreadDump, VirtualTime,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use telemetry::{RoundTotals, Telemetry};

/// Hook at the event-routing boundary for destinations outside this
/// process — the distributed runtime's entry point into `thread-rt`.
///
/// When a boundary is installed, the shared state treats its thread indices
/// as a *window* `[base, base + num_threads)` of a larger global thread
/// space: [`RtShared::push_msg`] forwards any message whose destination
/// falls outside the window to `send_remote` (with the destination's
/// *global* id), and every GVT computation folds in `remote_min` — the
/// boundary's lower bound on remote in-flight messages and peer progress —
/// so a locally computed GVT can never run ahead of the cluster.
pub trait RemoteBoundary<P>: Send + Sync {
    /// Forward a message from local thread `from_local` to global thread
    /// `dst` on another shard.
    fn send_remote(&self, from_local: usize, dst: SimThreadId, msg: Msg<P>);
    /// Lower bound over everything the local shard cannot see: remote
    /// pending sets and in-flight wire messages. `VirtualTime::INFINITY`
    /// when the cluster has drained.
    fn remote_min(&self) -> VirtualTime;
}

/// Control-loop phase labels published by workers for stall diagnostics;
/// [`RtShared::dbg_phase`] holds indices into this table.
pub const PHASE_NAMES: [&str; 13] = [
    "cycle",
    "gvt-a",
    "gvt-send-a",
    "gvt-b",
    "gvt-send-b",
    "gvt-aware",
    "gvt-end",
    "parked",
    "done",
    "sync-bar0",
    "sync-bar1",
    "sync-bar2",
    "dd-deact",
];

/// Atomic fetch-min over `VirtualTime` ticks.
fn fetch_min(cell: &AtomicU64, t: VirtualTime) {
    cell.fetch_min(t.ticks(), Ordering::AcqRel);
}

fn load_vt(cell: &AtomicU64) -> VirtualTime {
    VirtualTime::from_ticks(cell.load(Ordering::Acquire))
}

/// The ingest-plane wiring of one run: the shared admission gate, the
/// LP → thread map that routes admitted events, the previous-round counter
/// snapshot behind the round closer's telemetry instants, and the first
/// journal failure a pump observed (surfaced as the run's error).
pub struct IngestPlane<P> {
    pub gate: Arc<IngestGate<P>>,
    map: LpMap,
    prev: Mutex<(u64, u64, u64, u64)>,
    error: Mutex<Option<IngestError>>,
}

/// Round state guarded by [`RtShared::membership`].
#[derive(Debug)]
pub struct Membership {
    pub open: bool,
    pub id: u64,
    pub participant: Vec<bool>,
    pub participants: usize,
    pub subscribed: Vec<bool>,
}

/// Shared state of one real-thread simulation run.
pub struct RtShared<P> {
    pub num_threads: usize,
    pub end_time: VirtualTime,

    // ---- message plane ----
    pub queues: Vec<SegQueue<Msg<P>>>,
    pub queue_len: Vec<CachePadded<AtomicUsize>>,
    queue_min: Vec<CachePadded<AtomicU64>>,
    window_min: Vec<CachePadded<AtomicU64>>,

    // ---- demand-driven scheduling ----
    pub active: Vec<CachePadded<AtomicBool>>,
    pub num_active: AtomicUsize,
    pub sems: Vec<Semaphore>,
    pub os_tids: Vec<AtomicI64>,
    /// Pending-set floor a thread publishes *before* parking with live
    /// pending work, folded into every GVT/LBTS computation (`u64::MAX`
    /// while running). The optimistic workers never park with live pending
    /// and never write it; the conservative runtime (`cons-rt`) parks
    /// threads whose channels cannot advance, and this floor keeps their
    /// invisible pending events inside the reduction so the published bound
    /// can never overshoot them.
    park_min: Vec<CachePadded<AtomicU64>>,

    // ---- GVT round ----
    pub membership: Mutex<Membership>,
    pub a_done: AtomicUsize,
    pub b_done: AtomicUsize,
    pub end_done: AtomicUsize,
    pub aware_claimed: AtomicBool,
    min_fold: AtomicU64,
    gvt: AtomicU64,
    pub gvt_rounds: AtomicU64,
    pub terminated: AtomicBool,
    /// Synchronous-mode rendezvous points (three per round).
    pub bars: [DynBarrier; 3],

    // ---- GVT-aligned checkpointing ----
    /// Checkpoint cadence in GVT rounds (0 = disabled).
    ckpt_every: u64,
    /// Round id armed for a checkpoint, stored as `id + 1` (0 = none).
    /// Armed rounds force-wake every parked thread so the cut covers all
    /// engines.
    ckpt_armed: AtomicU64,
    /// Set by the round's pseudo-controller once the checkpoint GVT is
    /// published; End-phase participants wait on it before snapshotting.
    ckpt_ready: AtomicBool,

    // ---- DD-PDES ----
    pub dd_lock: Mutex<()>,
    pub controller_exit: AtomicBool,

    // ---- external-event ingest ----
    /// Installed by [`Self::set_ingest`]; `None` for runs with no live
    /// ingest (the common case — every hook below is one branch).
    ingest: Option<IngestPlane<P>>,

    // ---- distributed shard window ----
    /// First global thread id of this process's window (0 when the run is
    /// not sharded).
    thread_base: usize,
    /// Routing + GVT hook for destinations outside the window.
    remote: Option<Arc<dyn RemoteBoundary<P>>>,

    // ---- affinity (dynamic) ----
    pub aff: Mutex<crate::affinity::AffinityState>,

    // ---- metrics ----
    pub gvt_wall_ns: AtomicU64,
    pub max_descheduled: AtomicUsize,
    pub gvt_regressions: AtomicU64,

    // ---- telemetry ----
    /// Tracer registry + round-snapshot sink (a disabled registry by
    /// default; [`Self::set_telemetry`] installs a live one pre-publish).
    pub telemetry: Arc<Telemetry>,
    /// Per-thread published LVT ticks (`u64::MAX` = idle); only written when
    /// telemetry is enabled, read by the round closer's snapshot.
    tel_lvt: Vec<CachePadded<AtomicU64>>,
    /// Per-thread cumulative committed/processed/rolled-back, published at
    /// each round's End phase when telemetry is enabled.
    tel_committed: Vec<CachePadded<AtomicU64>>,
    tel_processed: Vec<CachePadded<AtomicU64>>,
    tel_rolled_back: Vec<CachePadded<AtomicU64>>,
    /// Common clock epoch for trace timestamps.
    tel_t0: Instant,

    // ---- fault injection & liveness diagnostics ----
    /// The chaos hooks (inert unless a fault plan was configured).
    pub faults: FaultInjector,
    /// Per-thread chaos hold-back buffer: messages deferred by a faulty
    /// drain wait here and are delivered at the *front* of the next drain.
    /// They stay inside `queue_len`/`queue_min` accounting, and — being
    /// older than anything still in the queue — redelivering them first
    /// preserves per-uid FIFO order. Only thread `i` touches `held[i]`, so
    /// the mutex is uncontended.
    held: Vec<CachePadded<Mutex<VecDeque<Msg<P>>>>>,
    /// Set once the liveness watchdog fired (the run's result becomes an
    /// error carrying the stall dump).
    pub watchdog_tripped: AtomicBool,
    /// Last control-loop phase each worker reported (index into
    /// [`PHASE_NAMES`]).
    pub dbg_phase: Vec<CachePadded<AtomicUsize>>,
    /// Round id each worker last folded into, stored as `id + 1`
    /// (0 = never joined).
    pub dbg_joined: Vec<AtomicU64>,
}

impl<P> RtShared<P> {
    pub fn new(num_threads: usize, num_cores: usize, end_time: VirtualTime) -> Self {
        RtShared {
            num_threads,
            end_time,
            queues: (0..num_threads).map(|_| SegQueue::new()).collect(),
            queue_len: (0..num_threads)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            queue_min: (0..num_threads)
                .map(|_| CachePadded::new(AtomicU64::new(u64::MAX)))
                .collect(),
            window_min: (0..num_threads)
                .map(|_| CachePadded::new(AtomicU64::new(u64::MAX)))
                .collect(),
            active: (0..num_threads)
                .map(|_| CachePadded::new(AtomicBool::new(true)))
                .collect(),
            num_active: AtomicUsize::new(num_threads),
            sems: (0..num_threads).map(|_| Semaphore::new(0, 1)).collect(),
            os_tids: (0..num_threads).map(|_| AtomicI64::new(0)).collect(),
            park_min: (0..num_threads)
                .map(|_| CachePadded::new(AtomicU64::new(u64::MAX)))
                .collect(),
            membership: Mutex::new(Membership {
                open: false,
                id: 0,
                participant: vec![false; num_threads],
                participants: 0,
                subscribed: vec![true; num_threads],
            }),
            a_done: AtomicUsize::new(0),
            b_done: AtomicUsize::new(0),
            end_done: AtomicUsize::new(0),
            aware_claimed: AtomicBool::new(false),
            min_fold: AtomicU64::new(u64::MAX),
            gvt: AtomicU64::new(0),
            gvt_rounds: AtomicU64::new(0),
            terminated: AtomicBool::new(false),
            ckpt_every: 0,
            ckpt_armed: AtomicU64::new(0),
            ckpt_ready: AtomicBool::new(false),
            bars: [
                DynBarrier::new(num_threads),
                DynBarrier::new(num_threads),
                DynBarrier::new(num_threads),
            ],
            dd_lock: Mutex::new(()),
            controller_exit: AtomicBool::new(false),
            ingest: None,
            thread_base: 0,
            remote: None,
            aff: Mutex::new(crate::affinity::AffinityState::new(num_cores, num_threads)),
            gvt_wall_ns: AtomicU64::new(0),
            max_descheduled: AtomicUsize::new(0),
            gvt_regressions: AtomicU64::new(0),
            telemetry: Telemetry::off(),
            tel_lvt: (0..num_threads)
                .map(|_| CachePadded::new(AtomicU64::new(u64::MAX)))
                .collect(),
            tel_committed: (0..num_threads)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            tel_processed: (0..num_threads)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            tel_rolled_back: (0..num_threads)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            tel_t0: Instant::now(),
            faults: FaultInjector::disabled(),
            held: (0..num_threads)
                .map(|_| CachePadded::new(Mutex::new(VecDeque::new())))
                .collect(),
            watchdog_tripped: AtomicBool::new(false),
            dbg_phase: (0..num_threads)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            dbg_joined: (0..num_threads).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Install the fault injector (before the shared state is published to
    /// worker threads).
    pub fn set_faults(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Install a remote boundary (before the shared state is published to
    /// worker threads): this process's threads become the window
    /// `[base, base + num_threads)` of the global thread space, and
    /// [`Self::push_msg`] / [`Self::compute_gvt`] route through `remote` for
    /// everything outside it.
    pub fn set_remote_boundary(&mut self, base: usize, remote: Arc<dyn RemoteBoundary<P>>) {
        self.thread_base = base;
        self.remote = Some(remote);
    }

    /// Install the external-event ingest gate (before the shared state is
    /// published to worker threads). `map` routes admitted events to the
    /// thread owning their destination LP; [`Self::compute_gvt`] fences GVT
    /// publication through the gate from then on.
    pub fn set_ingest(&mut self, gate: Arc<IngestGate<P>>, map: LpMap) {
        self.ingest = Some(IngestPlane {
            gate,
            map,
            prev: Mutex::new((0, 0, 0, 0)),
            error: Mutex::new(None),
        });
    }

    /// The installed ingest gate, if any.
    pub fn ingest_gate(&self) -> Option<&Arc<IngestGate<P>>> {
        self.ingest.as_ref().map(|p| &p.gate)
    }

    /// Take the first journal failure a pump observed (the runner surfaces
    /// it as the run's error: accepted events must be durable).
    pub fn take_ingest_error(&self) -> Option<IngestError> {
        self.ingest.as_ref().and_then(|p| p.error.lock().take())
    }

    /// Per-round ingest counter deltas (admitted, rejected, shed, busy) for
    /// the round closer's telemetry instants; `None` when no gate is
    /// installed.
    pub fn ingest_round_deltas(&self) -> Option<(u64, u64, u64, u64)> {
        let plane = self.ingest.as_ref()?;
        let s = plane.gate.stats();
        let now = (s.admitted, s.rejected, s.shed, s.busy);
        let mut prev = plane.prev.lock();
        let d = (
            now.0.saturating_sub(prev.0),
            now.1.saturating_sub(prev.1),
            now.2.saturating_sub(prev.2),
            now.3.saturating_sub(prev.3),
        );
        *prev = now;
        Some(d)
    }

    /// Configure the checkpoint cadence in GVT rounds (0 disables; before
    /// the shared state is published to worker threads).
    pub fn set_checkpoint_every(&mut self, every: u64) {
        self.ckpt_every = every;
    }

    /// Seed GVT state from a checkpoint (before the shared state is
    /// published to worker threads): restored runs resume both the GVT
    /// estimate and the round counter so the checkpoint cadence continues.
    pub fn seed_gvt(&mut self, gvt: VirtualTime, rounds: u64) {
        self.gvt = AtomicU64::new(gvt.ticks());
        self.gvt_rounds = AtomicU64::new(rounds);
    }

    /// Install the telemetry registry (before the shared state is published
    /// to worker threads). The default registry is disabled, so untraced
    /// runs never take the round-snapshot path.
    pub fn set_telemetry(&mut self, registry: Arc<Telemetry>) {
        self.telemetry = registry;
    }

    /// Whether tracing is live (one inlined bool behind the `Arc`).
    #[inline]
    pub fn tel_enabled(&self) -> bool {
        self.telemetry.enabled()
    }

    /// Nanoseconds since the run's common clock epoch — the timestamp base
    /// every worker's tracer uses.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.tel_t0.elapsed().as_nanos() as u64
    }

    /// Publish this thread's LVT and cumulative engine counters for the
    /// round closer's snapshot. Call only when telemetry is enabled.
    pub fn tel_publish(&self, me: usize, lvt: VirtualTime, stats: &pdes_core::ThreadStats) {
        self.tel_lvt[me].store(lvt.ticks(), Ordering::Relaxed);
        self.tel_committed[me].store(stats.committed, Ordering::Relaxed);
        self.tel_processed[me].store(stats.processed, Ordering::Relaxed);
        self.tel_rolled_back[me].store(stats.rolled_back, Ordering::Relaxed);
    }

    /// Round closer: record round `id`'s counter snapshot (cumulative totals
    /// summed over the published per-thread counters; the registry turns
    /// consecutive totals into per-round deltas).
    pub fn tel_round_snapshot(&self, id: u64) {
        if !self.telemetry.enabled() {
            return;
        }
        let sum = |v: &[CachePadded<AtomicU64>]| -> u64 {
            v.iter().map(|c| c.load(Ordering::Relaxed)).sum()
        };
        self.telemetry.record_round(RoundTotals {
            round: id,
            gvt_ticks: self.gvt().ticks(),
            ts_ns: self.now_ns(),
            committed: sum(&self.tel_committed),
            processed: sum(&self.tel_processed),
            rolled_back: sum(&self.tel_rolled_back),
            active_threads: self.num_active.load(Ordering::Acquire),
            members: self.tel_lvt.len() as u64,
            lvt_ticks: self
                .tel_lvt
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            queue_depths: self
                .queue_len
                .iter()
                .map(|c| c.load(Ordering::Acquire))
                .collect(),
            ingest: self
                .ingest
                .as_ref()
                .map(|p| {
                    let s = p.gate.stats();
                    (s.admitted, s.rejected, s.shed, s.busy)
                })
                .unwrap_or((0, 0, 0, 0)),
        });
    }

    /// Whether round `id` was armed for a checkpoint at open time.
    #[inline]
    pub fn ckpt_armed_for(&self, id: u64) -> bool {
        self.ckpt_armed.load(Ordering::Acquire) == id + 1
    }

    /// Whether the armed round's checkpoint GVT has been published.
    #[inline]
    pub fn ckpt_ready(&self) -> bool {
        self.ckpt_ready.load(Ordering::Acquire)
    }

    /// Pseudo-controller half of the checkpoint handshake: after
    /// `compute_gvt`, release the End-phase participants of an armed round.
    pub fn ckpt_publish_if_armed(&self, id: u64) {
        if self.ckpt_armed_for(id) {
            self.ckpt_ready.store(true, Ordering::Release);
        }
    }

    /// Publish the worker's control-loop phase (index into [`PHASE_NAMES`]).
    #[inline]
    pub fn set_phase(&self, me: usize, phase: usize) {
        self.dbg_phase[me].store(phase, Ordering::Relaxed);
    }

    /// Publish the round id the worker last folded into.
    #[inline]
    pub fn note_joined(&self, me: usize, id: u64) {
        self.dbg_joined[me].store(id + 1, Ordering::Relaxed);
    }

    /// Current GVT estimate.
    pub fn gvt(&self) -> VirtualTime {
        load_vt(&self.gvt)
    }

    /// Send a message: the window minimum is published *before* the push so
    /// the event is covered by GVT accounting at every instant (see module
    /// docs of `sim_rt::shared` for the coverage argument).
    ///
    /// Under a backpressure fault plan the destination queue is bounded: a
    /// sender over capacity retries with escalating backoff before pushing
    /// anyway (messages are never dropped, so correctness is unaffected).
    pub fn push_msg(&self, sender: usize, dst: usize, msg: Msg<P>) {
        let t = msg.recv_time();
        fetch_min(&self.window_min[sender], t);
        // Shard window: with a remote boundary installed `dst` is a *global*
        // thread id. Out-of-window messages leave through the boundary — the
        // window minimum above was published first, so the message stays
        // covered by local GVT accounting until the boundary's own counters
        // (folded in via `remote_min`) take over.
        if let Some(remote) = &self.remote {
            let lo = self.thread_base;
            let hi = lo + self.num_threads;
            if dst < lo || dst >= hi {
                remote.send_remote(sender, SimThreadId(dst as u32), msg);
                return;
            }
            return self.push_local(dst - lo, msg);
        }
        self.push_local(dst, msg);
    }

    /// Enqueue on a local (window-relative) destination.
    fn push_local(&self, dst: usize, msg: Msg<P>) {
        let t = msg.recv_time();
        self.backpressure_wait(dst);
        self.queues[dst].push(msg);
        fetch_min(&self.queue_min[dst], t);
        self.queue_len[dst].fetch_add(1, Ordering::AcqRel);
    }

    /// Under a backpressure fault plan, wait (bounded) for the destination
    /// queue to fall below capacity; messages are never dropped.
    fn backpressure_wait(&self, dst: usize) {
        if let Some(bp) = self.faults.backpressure() {
            let mut retries = 0u64;
            for attempt in 0..bp.max_retries {
                if self.queue_len[dst].load(Ordering::Acquire) < bp.capacity
                    || self.terminated.load(Ordering::Acquire)
                {
                    break;
                }
                retries += 1;
                if attempt < 2 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(10u64 << attempt.min(10)));
                }
            }
            self.faults.note_backpressure_retries(retries);
        }
    }

    /// One past the highest global thread id this process can address
    /// locally (`num_threads` for unsharded runs) — sizes the send
    /// batcher's per-destination buffers.
    #[inline]
    pub fn global_threads(&self) -> usize {
        self.thread_base + self.num_threads
    }

    /// `true` when global thread id `dst` falls inside this process's shard
    /// window (always true for unsharded runs). The send batcher buffers
    /// only local destinations; boundary-crossing messages keep the
    /// immediate path so their latency stays governed by the distributed
    /// GVT tracker.
    #[inline]
    pub fn dst_is_local(&self, dst: usize) -> bool {
        self.remote.is_none()
            || (dst >= self.thread_base && dst < self.thread_base + self.num_threads)
    }

    /// Publish `t` into thread `me`'s send window *without* enqueueing — the
    /// coverage half of [`Self::push_msg`], used by the send batcher at
    /// buffer time. A message buffered locally is invisible to the
    /// destination's `queue_min`, so it must stay covered by the sender's
    /// window until the flush lands it in a queue. The window is only reset
    /// by this thread's own [`Self::fold_min`], and the worker flushes
    /// before every fold, so coverage never lapses.
    #[inline]
    pub fn publish_window(&self, me: usize, t: VirtualTime) {
        fetch_min(&self.window_min[me], t);
    }

    /// Bulk enqueue on a local destination (global thread id): one queue
    /// lock and one length update for the whole batch, preserving order.
    ///
    /// Callers must have already published every message into their send
    /// window via [`Self::publish_window`] — this method only re-covers the
    /// batch on the destination's `queue_min` after the push, exactly like
    /// the per-message path.
    pub fn push_batch(&self, dst: usize, msgs: &mut Vec<Msg<P>>) {
        if msgs.is_empty() {
            return;
        }
        debug_assert!(self.dst_is_local(dst), "push_batch is local-only");
        let dst = if self.remote.is_some() {
            dst - self.thread_base
        } else {
            dst
        };
        self.backpressure_wait(dst);
        let n = msgs.len();
        let mut t = VirtualTime::INFINITY;
        for m in msgs.iter() {
            t = t.min(m.recv_time());
        }
        self.queues[dst].push_batch(msgs);
        fetch_min(&self.queue_min[dst], t);
        self.queue_len[dst].fetch_add(n, Ordering::AcqRel);
    }

    /// Drain the input queue of `me` into `out`; returns the count.
    pub fn drain(&self, me: usize, out: &mut Vec<Msg<P>>) -> usize {
        // Reset the minimum first: pushes racing with this drain re-publish
        // their minimum afterwards (or are covered by the sender's window).
        self.queue_min[me].store(u64::MAX, Ordering::Release);
        if self.faults.is_enabled() {
            return self.drain_with_faults(me, out);
        }
        let n = self.queues[me].drain_into(out);
        if n > 0 {
            self.queue_len[me].fetch_sub(n, Ordering::AcqRel);
        }
        n
    }

    /// Chaos drain: messages may be held back (delay / straggler storms)
    /// and the delivered batch may be adversarially reordered.
    ///
    /// Held-back messages go to `held[me]`, a per-thread side buffer that is
    /// delivered at the *front* of the next drain — they cannot simply be
    /// re-pushed onto the `SegQueue`, where they would land *behind*
    /// concurrently pushed newer messages and could overtake a same-uid
    /// successor (e.g. a re-sent positive passing its deferred anti). Held
    /// messages never leave `queue_len`/`queue_min` accounting, so GVT keeps
    /// covering them; only `me` drains this queue, so the reset-then-restore
    /// of `queue_min` cannot race another drain. Pops are bounded by the
    /// queue length at entry, and held messages redeliver unconditionally,
    /// so no message is deferred for more than one drain per decision.
    ///
    /// Per-uid FIFO is the one ordering contract chaos must respect (the
    /// pending set tolerates any interleaving *between* uids): once one
    /// message of a uid is held back, every later same-uid message in the
    /// batch is held back with it, and batches containing same-uid pairs
    /// are exempt from shuffling.
    fn drain_with_faults(&self, me: usize, out: &mut Vec<Msg<P>>) -> usize {
        let base = out.len();
        let mut held = self.held[me].lock();
        // Redeliver earlier hold-backs first: they are older than anything
        // still in the queue, so this preserves arrival order.
        let redelivered = held.len();
        out.extend(held.drain(..));
        let cap = self.queues[me].len();
        let mut popped = 0usize;
        let mut moved = 0usize;
        let mut deferred_uids: Vec<EventUid> = Vec::new();
        while popped < cap {
            let Some(m) = self.queues[me].pop() else {
                break;
            };
            popped += 1;
            let uid = m.key().uid;
            if deferred_uids.contains(&uid) || self.faults.defer_delivery() {
                deferred_uids.push(uid);
                fetch_min(&self.queue_min[me], m.recv_time());
                held.push_back(m);
                moved += 1;
            } else {
                out.push(m);
            }
        }
        // Straggler storm: hold back the minimum-timestamp message (plus any
        // later same-uid companion) while the rest of its batch delivers, so
        // it later arrives in the destination's past and forces a rollback.
        // A uid that already has a deferred member is ineligible — holding
        // its earlier member now would slot it *behind* the later one.
        if out.len() > base + 1 {
            let min_at = (base..out.len())
                .filter(|&i| !deferred_uids.contains(&out[i].key().uid))
                .min_by_key(|&i| out[i].recv_time().ticks());
            if let Some(min_at) = min_at {
                if self.faults.straggler_hold() {
                    let uid = out[min_at].key().uid;
                    let mut i = min_at;
                    while i < out.len() {
                        if out[i].key().uid == uid {
                            let m = out.remove(i);
                            fetch_min(&self.queue_min[me], m.recv_time());
                            held.push_back(m);
                            moved += 1;
                        } else {
                            i += 1;
                        }
                    }
                }
            }
        }
        let batch = &mut out[base..];
        if !batch_has_uid_pairs(batch) {
            self.faults.shuffle_batch(batch);
        }
        let delivered = redelivered + popped - moved;
        if delivered > 0 {
            self.queue_len[me].fetch_sub(delivered, Ordering::AcqRel);
        }
        delivered
    }

    /// Chaos-exempt drain for checkpoint cuts: flush the hold-back buffer
    /// and the whole input queue into `out`, with no deferral, reordering,
    /// or straggler holds. Every message sent before the cut GVT was folded
    /// into that GVT (send windows publish before the push), so after this
    /// drain the engine holds every cut-crossing event; anything pushed
    /// later carries a send time at or above the cut and stays queued for
    /// the ongoing run.
    pub fn drain_clean(&self, me: usize, out: &mut Vec<Msg<P>>) -> usize {
        self.queue_min[me].store(u64::MAX, Ordering::Release);
        let mut n = 0;
        {
            let mut held = self.held[me].lock();
            n += held.len();
            out.extend(held.drain(..));
        }
        n += self.queues[me].drain_into(out);
        if n > 0 {
            self.queue_len[me].fetch_sub(n, Ordering::AcqRel);
        }
        n
    }

    /// Fold a thread's local minimum and its send window into the round.
    pub fn fold_min(&self, me: usize, local: VirtualTime) {
        let w = self.window_min[me].swap(u64::MAX, Ordering::AcqRel);
        let m = local.ticks().min(w);
        self.min_fold.fetch_min(m, Ordering::AcqRel);
    }

    /// Pseudo-controller: fold the transient coverage and publish the new
    /// GVT. Returns it.
    ///
    /// With an ingest gate installed the whole computation runs under the
    /// gate's fence: no external admission can interleave between reading
    /// the queue minima and raising the admission floor, so the published
    /// GVT never overshoots an admitted timestamp (see
    /// `pdes_core::ingest` module docs).
    pub fn compute_gvt(&self) -> VirtualTime {
        match &self.ingest {
            Some(plane) => plane.gate.fence_gvt(|| self.compute_gvt_unfenced()),
            None => self.compute_gvt_unfenced(),
        }
    }

    fn compute_gvt_unfenced(&self) -> VirtualTime {
        let mut g = self.min_fold.load(Ordering::Acquire);
        for i in 0..self.num_threads {
            g = g
                .min(self.window_min[i].load(Ordering::Acquire))
                .min(self.queue_min[i].load(Ordering::Acquire))
                .min(self.park_min[i].load(Ordering::Acquire));
        }
        // Sharded runs: the cluster-wide floor (remote pending sets and
        // in-flight wire messages) caps the local estimate.
        if let Some(remote) = &self.remote {
            g = g.min(remote.remote_min().ticks());
        }
        let old = self.gvt.load(Ordering::Acquire);
        if g < old {
            self.gvt_regressions.fetch_add(1, Ordering::AcqRel);
        } else {
            self.gvt.store(g, Ordering::Release);
        }
        self.gvt_rounds.fetch_add(1, Ordering::AcqRel);
        let gvt = load_vt(&self.gvt);
        if gvt >= self.end_time {
            self.terminated.store(true, Ordering::Release);
        }
        gvt
    }

    /// Open a round if none is open; returns whether `me` participates in
    /// the open round and its id.
    pub fn try_join_round(&self, me: usize) -> (bool, u64) {
        let mut m = self.membership.lock();
        if !m.open {
            m.open = true;
            // Arm a checkpoint round on cadence: force-wake every parked
            // thread first, so the round's participant set — and therefore
            // the cut — covers every engine's committed state. The wake-ups
            // are exempt from wake-up faults, like termination wake-ups:
            // losing one would wedge the armed round rather than exercise
            // anything interesting.
            let arm = self.ckpt_every > 0
                && !self.terminated.load(Ordering::Acquire)
                && (self.gvt_rounds.load(Ordering::Acquire) + 1).is_multiple_of(self.ckpt_every);
            if arm {
                for i in 0..self.num_threads {
                    if !m.subscribed[i] {
                        m.subscribed[i] = true;
                    }
                    if !self.active[i].load(Ordering::Acquire) {
                        self.active[i].store(true, Ordering::Release);
                        self.num_active.fetch_add(1, Ordering::AcqRel);
                        self.sems[i].post();
                    }
                }
                self.ckpt_ready.store(false, Ordering::Release);
                self.ckpt_armed.store(m.id + 1, Ordering::Release);
            }
            let subscribed = m.subscribed.clone();
            m.participant.copy_from_slice(&subscribed);
            m.participants = subscribed.iter().filter(|&&s| s).count();
            self.a_done.store(0, Ordering::Release);
            self.b_done.store(0, Ordering::Release);
            self.end_done.store(0, Ordering::Release);
            self.aware_claimed.store(false, Ordering::Release);
            self.min_fold.store(u64::MAX, Ordering::Release);
            for b in &self.bars {
                b.set_expected(m.participants.max(1));
            }
        }
        (m.participant[me], m.id)
    }

    /// Peek the open round without opening one.
    pub fn round_waiting_for(&self, me: usize) -> Option<u64> {
        let m = self.membership.lock();
        if m.open && m.participant[me] {
            Some(m.id)
        } else {
            None
        }
    }

    /// Number of participants of the current round.
    pub fn participants(&self) -> usize {
        self.membership.lock().participants
    }

    /// Complete the End phase; the last participant closes the round.
    pub fn end_phase(&self) -> bool {
        let done = self.end_done.fetch_add(1, Ordering::AcqRel) + 1;
        let mut m = self.membership.lock();
        if done == m.participants {
            m.open = false;
            m.id += 1;
            true
        } else {
            false
        }
    }

    /// Algorithm 2: wake inactive threads with queued input. Must be called
    /// by the round's pseudo-controller (Phase Aware).
    pub fn activate(&self) -> usize {
        let mut n = 0;
        if self.num_active.load(Ordering::Acquire) < self.num_threads {
            let mut m = self.membership.lock();
            for i in 0..self.num_threads {
                if !self.active[i].load(Ordering::Acquire)
                    && self.queue_len[i].load(Ordering::Acquire) > 0
                {
                    self.active[i].store(true, Ordering::Release);
                    m.subscribed[i] = true;
                    self.num_active.fetch_add(1, Ordering::AcqRel);
                    if self.faults.lose_wakeup() {
                        // Lost wake-up: the thread is marked active but its
                        // semaphore is never posted — it stays parked, the
                        // round it now belongs to can never complete, and
                        // the liveness watchdog must catch the stall.
                    } else {
                        self.sems[i].post();
                    }
                    n += 1;
                }
            }
            // Spurious wake-up: post a thread that was *not* activated; the
            // worker's parked loop must re-check its active flag and go back
            // to sleep.
            if self.faults.spurious_wakeup() {
                if let Some(i) =
                    (0..self.num_threads).find(|&i| !self.active[i].load(Ordering::Acquire))
                {
                    self.sems[i].post();
                }
            }
        }
        n
    }

    /// `true` when `me` has no unfolded send window (its last sends are
    /// already folded into GVT accounting) — part of the deactivation
    /// condition.
    pub fn window_is_clear(&self, me: usize) -> bool {
        self.window_min[me].load(Ordering::Acquire) == u64::MAX
    }

    /// Publish `me`'s pending-set floor before parking with live pending
    /// work (conservative runtime): folded into every subsequent GVT/LBTS
    /// computation until [`Self::clear_park_min`]. Must be called *before*
    /// [`Self::deactivate_self`], so the membership-lock handoff orders the
    /// store ahead of any round that excludes `me`.
    pub fn set_park_min(&self, me: usize, floor: VirtualTime) {
        self.park_min[me].store(floor.ticks(), Ordering::Release);
    }

    /// Withdraw `me`'s parked floor after waking (conservative runtime).
    pub fn clear_park_min(&self, me: usize) {
        self.park_min[me].store(u64::MAX, Ordering::Release);
    }

    /// `me`'s parked pending-set floor in ticks (`u64::MAX` = not parked
    /// with live pending). The conservative round closer reads peers' floors
    /// to decide which parked threads the new bound lets advance.
    pub fn park_min_ticks(&self, i: usize) -> u64 {
        self.park_min[i].load(Ordering::Acquire)
    }

    /// Algorithm 1 bookkeeping: de-schedule `me` (the caller then blocks on
    /// its semaphore). Refuses for the last active thread, and refuses when
    /// a round other than `completed_round` is open with `me` in its
    /// participant snapshot — parking then would strand the round.
    pub fn deactivate_self(&self, me: usize, completed_round: u64) -> bool {
        let mut m = self.membership.lock();
        if self.num_active.load(Ordering::Acquire) <= 1 {
            return false;
        }
        if m.open && m.participant[me] && m.id != completed_round {
            return false;
        }
        self.aff.lock().clear(me);
        self.active[me].store(false, Ordering::Release);
        m.subscribed[me] = false;
        self.num_active.fetch_sub(1, Ordering::AcqRel);
        let parked = self.num_threads - self.num_active.load(Ordering::Acquire);
        self.max_descheduled.fetch_max(parked, Ordering::AcqRel);
        true
    }

    /// Wake everyone for termination and stop the DD controller.
    ///
    /// Termination wake-ups are exempt from wake-up faults: losing them
    /// would turn every completed chaos run into a watchdog trip and mask
    /// the interesting (mid-run) stalls.
    pub fn release_all_for_termination(&self) {
        self.controller_exit.store(true, Ordering::Release);
        for i in 0..self.num_threads {
            if !self.active[i].load(Ordering::Acquire) {
                self.sems[i].post();
            }
        }
    }

    /// Emergency drain: mark the run terminated and make every blocking
    /// primitive permanently non-blocking, so all workers can observe
    /// `terminated` and exit. Called by the liveness watchdog on a trip and
    /// by the panic guard of a dying worker.
    pub fn poison_all(&self) {
        self.terminated.store(true, Ordering::Release);
        self.controller_exit.store(true, Ordering::Release);
        for s in &self.sems {
            s.poison();
        }
        for b in &self.bars {
            b.poison();
        }
    }

    /// Snapshot everything a stall post-mortem needs.
    pub fn build_stall_dump(&self, reason: &str, system: &str) -> StallDump {
        let m = self.membership.lock();
        let fmt_vt = |cell: &AtomicU64| {
            let v = cell.load(Ordering::Acquire);
            if v == u64::MAX {
                "inf".to_string()
            } else {
                VirtualTime::from_ticks(v).to_string()
            }
        };
        StallDump {
            reason: reason.into(),
            system: system.into(),
            gvt: self.gvt().to_string(),
            gvt_rounds: self.gvt_rounds.load(Ordering::Acquire),
            num_active: self.num_active.load(Ordering::Acquire),
            terminated: self.terminated.load(Ordering::Acquire),
            round: RoundDump {
                open: m.open,
                id: m.id,
                participants: m.participants,
                a_done: self.a_done.load(Ordering::Acquire),
                b_done: self.b_done.load(Ordering::Acquire),
                end_done: self.end_done.load(Ordering::Acquire),
                aware_claimed: self.aware_claimed.load(Ordering::Acquire),
            },
            threads: (0..self.num_threads)
                .map(|i| ThreadDump {
                    thread: i,
                    phase: PHASE_NAMES[self.dbg_phase[i]
                        .load(Ordering::Relaxed)
                        .min(PHASE_NAMES.len() - 1)]
                    .into(),
                    joined_round: match self.dbg_joined[i].load(Ordering::Relaxed) {
                        0 => None,
                        id => Some(id - 1),
                    },
                    queue_len: self.queue_len[i].load(Ordering::Acquire),
                    active: self.active[i].load(Ordering::Acquire),
                    subscribed: m.subscribed[i],
                    sem_tokens: self.sems[i].tokens(),
                    window_min: fmt_vt(&self.window_min[i]),
                    queue_min: fmt_vt(&self.queue_min[i]),
                })
                .collect(),
            fault_counts: self.faults.counts(),
            last_round: self.telemetry.last_round(),
        }
    }
}

impl<P: Clone + serde::Serialize> RtShared<P> {
    /// Admit queued external submissions — called by the round's
    /// pseudo-controller right after [`Self::compute_gvt`]. Each admitted
    /// event is journaled and pushed to the thread owning its destination
    /// LP *inside* the gate lock, so the admission check, the durability
    /// append, and the queue-accounting publish are one atomic step with
    /// respect to the next GVT fence. Returns the number injected.
    pub fn pump_ingest(&self) -> u64 {
        let Some(plane) = &self.ingest else {
            return 0;
        };
        let res = plane.gate.pump(|_| true, &mut |ev| {
            let dst = plane.map.thread_of(ev.key.dst).index();
            self.push_msg(0, self.thread_base + dst, Msg::Event(ev));
        });
        match res {
            Ok(out) => out.injected,
            Err(e) => {
                // Durability is gone for this admission: park the error for
                // the runner (the run fails rather than silently accepting
                // events a crash would lose).
                let mut slot = plane.error.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::{EventKey, EventUid, LpId};

    fn msg(t: f64) -> Msg<()> {
        // Distinct uid per timestamp: chaos filters deliberately refuse to
        // split or reorder same-uid messages, which is not what these tests
        // exercise.
        Msg::Anti(EventKey {
            recv_time: VirtualTime::from_f64(t),
            dst: LpId(0),
            uid: EventUid::new(LpId(0), t.to_bits()),
        })
    }

    fn shared(n: usize) -> RtShared<()> {
        RtShared::new(n, 2, VirtualTime::from_f64(100.0))
    }

    /// Recording fake for the distributed boundary.
    struct FakeBoundary {
        sent: Mutex<Vec<(usize, SimThreadId, VirtualTime)>>,
        min: AtomicU64,
    }

    impl FakeBoundary {
        fn new() -> Self {
            FakeBoundary {
                sent: Mutex::new(Vec::new()),
                min: AtomicU64::new(u64::MAX),
            }
        }
    }

    impl RemoteBoundary<()> for FakeBoundary {
        fn send_remote(&self, from_local: usize, dst: SimThreadId, msg: Msg<()>) {
            self.sent.lock().push((from_local, dst, msg.recv_time()));
        }
        fn remote_min(&self) -> VirtualTime {
            VirtualTime::from_ticks(self.min.load(Ordering::Acquire))
        }
    }

    #[test]
    fn remote_boundary_routes_out_of_window_messages() {
        let remote = Arc::new(FakeBoundary::new());
        let mut s = shared(2);
        // This process owns global threads 2 and 3.
        s.set_remote_boundary(2, remote.clone());
        s.push_msg(0, 3, msg(5.0)); // in-window → local queue 1
        s.push_msg(0, 0, msg(6.0)); // below the window → remote
        s.push_msg(1, 5, msg(7.0)); // above the window → remote
        assert_eq!(s.queue_len[1].load(Ordering::Acquire), 1);
        assert_eq!(s.queue_len[0].load(Ordering::Acquire), 0);
        let sent = remote.sent.lock();
        assert_eq!(sent.len(), 2);
        assert_eq!(sent[0].0, 0);
        assert_eq!(sent[0].1, SimThreadId(0));
        assert_eq!(sent[1].1, SimThreadId(5));
    }

    #[test]
    fn remote_send_stays_covered_by_sender_window() {
        // Until the boundary's own accounting takes over, an outbound
        // message must hold local GVT down via the sender's send window.
        let remote = Arc::new(FakeBoundary::new());
        let mut s = shared(2);
        s.set_remote_boundary(0, remote);
        s.try_join_round(0);
        s.push_msg(0, 7, msg(3.0)); // leaves the process
        let g = s.compute_gvt();
        assert!(g <= VirtualTime::from_f64(3.0), "got {g}");
    }

    #[test]
    fn compute_gvt_folds_remote_min() {
        let remote = Arc::new(FakeBoundary::new());
        let mut s = shared(2);
        s.set_remote_boundary(0, remote.clone());
        s.try_join_round(0);
        s.fold_min(0, VirtualTime::from_f64(10.0));
        s.fold_min(1, VirtualTime::from_f64(12.0));
        // A peer shard still holds work at t=2: the local estimate is capped.
        remote
            .min
            .store(VirtualTime::from_f64(2.0).ticks(), Ordering::Release);
        assert_eq!(s.compute_gvt(), VirtualTime::from_f64(2.0));
        // Once the cluster drains, the local bound wins again (monotone:
        // the next round can only raise the estimate).
        remote.min.store(u64::MAX, Ordering::Release);
        s.try_join_round(0);
        s.fold_min(0, VirtualTime::from_f64(10.0));
        s.fold_min(1, VirtualTime::from_f64(12.0));
        assert_eq!(s.compute_gvt(), VirtualTime::from_f64(10.0));
    }

    #[test]
    fn push_drain_roundtrip() {
        let s = shared(2);
        s.push_msg(0, 1, msg(5.0));
        s.push_msg(0, 1, msg(3.0));
        assert_eq!(s.queue_len[1].load(Ordering::Acquire), 2);
        let mut out = Vec::new();
        assert_eq!(s.drain(1, &mut out), 2);
        assert_eq!(s.queue_len[1].load(Ordering::Acquire), 0);
    }

    #[test]
    fn gvt_covers_parked_queue() {
        let s = shared(2);
        s.try_join_round(0);
        s.fold_min(0, VirtualTime::from_f64(10.0));
        s.push_msg(0, 1, msg(4.0));
        let g = s.compute_gvt();
        // window of sender (reset by fold? fold happened before push) —
        // covered by queue_min and the sender's residual window.
        assert!(g <= VirtualTime::from_f64(4.0));
    }

    #[test]
    fn rounds_open_and_close() {
        let s = shared(2);
        let (p0, id0) = s.try_join_round(0);
        assert!(p0);
        let (p1, _) = s.try_join_round(1);
        assert!(p1);
        assert_eq!(s.participants(), 2);
        assert!(!s.end_phase());
        assert!(s.end_phase());
        let (_, id1) = s.try_join_round(0);
        assert_eq!(id1, id0 + 1);
    }

    #[test]
    fn deactivate_then_activate_flow() {
        let s = shared(3);
        assert!(s.deactivate_self(2, 0));
        assert_eq!(s.num_active.load(Ordering::Acquire), 2);
        // A message arrives for the parked thread.
        s.push_msg(0, 2, msg(1.0));
        assert_eq!(s.activate(), 1);
        assert_eq!(s.num_active.load(Ordering::Acquire), 3);
        // The semaphore now holds the wake token.
        assert!(s.sems[2].try_wait());
    }

    #[test]
    fn last_active_thread_cannot_deactivate() {
        let s = shared(2);
        assert!(s.deactivate_self(0, 0));
        assert!(!s.deactivate_self(1, 0));
    }

    #[test]
    fn deactivation_refused_while_a_fresh_round_waits() {
        let s = shared(3);
        let (_, id) = s.try_join_round(0);
        // Thread 0 completed round `id`, may park while it is still open…
        assert!(s.deactivate_self(0, id));
        // …but thread 1 may not park for a round it has not completed.
        assert!(!s.deactivate_self(1, id.wrapping_sub(1)));
    }

    #[test]
    fn faulty_drain_keeps_deferred_messages_covered() {
        let mut s = shared(2);
        s.set_faults(pdes_core::FaultInjector::new(pdes_core::FaultPlan {
            seed: 1,
            delay: Some(pdes_core::DelayFault { prob: 1.0 }),
            ..pdes_core::FaultPlan::default()
        }));
        s.push_msg(0, 1, msg(5.0));
        s.push_msg(0, 1, msg(3.0));
        let mut out = Vec::new();
        // Everything defers: nothing delivered, queue accounting intact.
        assert_eq!(s.drain(1, &mut out), 0);
        assert!(out.is_empty());
        assert_eq!(s.queue_len[1].load(Ordering::Acquire), 2);
        // The held-back minimum still pins GVT.
        s.try_join_round(0);
        s.fold_min(0, VirtualTime::INFINITY);
        assert!(s.compute_gvt() <= VirtualTime::from_f64(3.0));
    }

    #[test]
    fn straggler_hold_keeps_minimum_resident() {
        let mut s = shared(2);
        s.set_faults(pdes_core::FaultInjector::new(pdes_core::FaultPlan {
            seed: 2,
            straggler: Some(pdes_core::StragglerFault {
                prob: 1.0,
                max_storms: 1,
            }),
            ..pdes_core::FaultPlan::default()
        }));
        s.push_msg(0, 1, msg(5.0));
        s.push_msg(0, 1, msg(3.0));
        s.push_msg(0, 1, msg(7.0));
        let mut out = Vec::new();
        assert_eq!(s.drain(1, &mut out), 2, "minimum held back");
        assert!(out
            .iter()
            .all(|m| m.recv_time() > VirtualTime::from_f64(3.5)));
        assert_eq!(s.queue_len[1].load(Ordering::Acquire), 1);
        // Budget exhausted: the straggler delivers on the next drain.
        out.clear();
        assert_eq!(s.drain(1, &mut out), 1);
        assert_eq!(out[0].recv_time(), VirtualTime::from_f64(3.0));
    }

    #[test]
    fn lost_wakeup_leaves_thread_parked_but_active() {
        let mut s = shared(3);
        s.set_faults(pdes_core::FaultInjector::new(pdes_core::FaultPlan {
            seed: 3,
            wakeup: Some(pdes_core::WakeupFault {
                lose_prob: 1.0,
                spurious_prob: 0.0,
                max_lost: 8,
            }),
            ..pdes_core::FaultPlan::default()
        }));
        assert!(s.deactivate_self(2, 0));
        s.push_msg(0, 2, msg(1.0));
        assert_eq!(s.activate(), 1);
        assert!(s.active[2].load(Ordering::Acquire), "marked active");
        assert!(!s.sems[2].try_wait(), "but the wake token was lost");
    }

    #[test]
    fn cancel_then_resend_pairs_keep_their_order() {
        // An anti-message followed by the re-sent positive twin (same uid)
        // models rollback's cancel-then-resend on one channel. No chaos
        // filter may swap them: the pending set panics on a positive that
        // arrives twice without its anti in between.
        let mut s = shared(2);
        s.set_faults(pdes_core::FaultInjector::new(pdes_core::FaultPlan {
            seed: 4,
            delay: Some(pdes_core::DelayFault { prob: 0.5 }),
            reorder: Some(pdes_core::ReorderFault { prob: 1.0 }),
            ..pdes_core::FaultPlan::default()
        }));
        let k = EventKey {
            recv_time: VirtualTime::from_f64(2.0),
            dst: LpId(0),
            uid: EventUid::new(LpId(1), 9),
        };
        for round in 0..32u64 {
            s.push_msg(0, 1, msg(100.0 + round as f64)); // distinct-uid decoy
            s.push_msg(0, 1, Msg::Anti(k));
            s.push_msg(
                0,
                1,
                Msg::Event(pdes_core::Event {
                    key: k,
                    send_time: VirtualTime::from_f64(0.0),
                    payload: (),
                }),
            );
            let mut seen = Vec::new();
            for _ in 0..8 {
                let mut out = Vec::new();
                s.drain(1, &mut out);
                seen.extend(out.iter().filter(|m| m.key() == k).map(|m| m.is_anti()));
                if seen.len() == 2 {
                    break;
                }
            }
            assert_eq!(
                seen,
                [true, false],
                "round {round}: anti must precede its re-sent positive"
            );
        }
    }

    #[test]
    fn stall_dump_reflects_shared_state() {
        let s = shared(2);
        s.try_join_round(0);
        s.push_msg(0, 1, msg(2.5));
        s.set_phase(1, 7); // parked
        s.note_joined(1, 4);
        let d = s.build_stall_dump("test stall", "GG-PDES-Async");
        assert_eq!(d.round.participants, 2);
        assert!(d.round.open);
        assert_eq!(d.threads[1].phase, "parked");
        assert_eq!(d.threads[1].joined_round, Some(4));
        assert_eq!(d.threads[1].queue_len, 1);
        assert_eq!(d.threads[0].joined_round, None);
        let text = d.to_string();
        assert!(text.contains("test stall"));
        assert!(text.contains("qlen=1"));
    }

    #[test]
    fn poison_all_unblocks_everything() {
        let s = std::sync::Arc::new(shared(2));
        let s2 = std::sync::Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.sems[0].wait();
            s2.bars[0].wait()
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        s.poison_all();
        h.join().expect("join");
        assert!(s.terminated.load(Ordering::Acquire));
    }

    #[test]
    fn gvt_terminates_past_end() {
        let s = shared(1);
        s.try_join_round(0);
        s.fold_min(0, VirtualTime::INFINITY);
        let g = s.compute_gvt();
        assert!(g.is_infinite());
        assert!(s.terminated.load(Ordering::Acquire));
    }
}
