//! Shared state of the real-thread runtime.
//!
//! The hot arrays mirror the paper's layout: per-thread input queues
//! (crossbeam `SegQueue`), the `active_threads` flags and `sem_locks`
//! semaphores, all cache-line padded. GVT round *counters* are plain
//! atomics; only round membership transitions (open-snapshot, subscribe,
//! unsubscribe) take a small mutex — a documented deviation from the paper's
//! fully lock-free design that buys a provable absence of the
//! snapshot-vs-deactivation race on real hardware (see DESIGN.md; the
//! lock-free variant's behaviour is what `sim-rt` models and measures).

use crate::sync::{DynBarrier, Semaphore};
use crossbeam::queue::SegQueue;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use pdes_core::{Msg, VirtualTime};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Atomic fetch-min over `VirtualTime` ticks.
fn fetch_min(cell: &AtomicU64, t: VirtualTime) {
    cell.fetch_min(t.ticks(), Ordering::AcqRel);
}

fn load_vt(cell: &AtomicU64) -> VirtualTime {
    VirtualTime::from_ticks(cell.load(Ordering::Acquire))
}

/// Round state guarded by [`RtShared::membership`].
#[derive(Debug)]
pub struct Membership {
    pub open: bool,
    pub id: u64,
    pub participant: Vec<bool>,
    pub participants: usize,
    pub subscribed: Vec<bool>,
}

/// Shared state of one real-thread simulation run.
pub struct RtShared<P> {
    pub num_threads: usize,
    pub end_time: VirtualTime,

    // ---- message plane ----
    pub queues: Vec<SegQueue<Msg<P>>>,
    pub queue_len: Vec<CachePadded<AtomicUsize>>,
    queue_min: Vec<CachePadded<AtomicU64>>,
    window_min: Vec<CachePadded<AtomicU64>>,

    // ---- demand-driven scheduling ----
    pub active: Vec<CachePadded<AtomicBool>>,
    pub num_active: AtomicUsize,
    pub sems: Vec<Semaphore>,
    pub os_tids: Vec<AtomicI64>,

    // ---- GVT round ----
    pub membership: Mutex<Membership>,
    pub a_done: AtomicUsize,
    pub b_done: AtomicUsize,
    pub end_done: AtomicUsize,
    pub aware_claimed: AtomicBool,
    min_fold: AtomicU64,
    gvt: AtomicU64,
    pub gvt_rounds: AtomicU64,
    pub terminated: AtomicBool,
    /// Synchronous-mode rendezvous points (three per round).
    pub bars: [DynBarrier; 3],

    // ---- DD-PDES ----
    pub dd_lock: Mutex<()>,
    pub controller_exit: AtomicBool,

    // ---- affinity (dynamic) ----
    pub aff: Mutex<crate::worker::AffinityState>,

    // ---- metrics ----
    pub gvt_wall_ns: AtomicU64,
    pub max_descheduled: AtomicUsize,
    pub gvt_regressions: AtomicU64,
}

impl<P> RtShared<P> {
    pub fn new(num_threads: usize, num_cores: usize, end_time: VirtualTime) -> Self {
        RtShared {
            num_threads,
            end_time,
            queues: (0..num_threads).map(|_| SegQueue::new()).collect(),
            queue_len: (0..num_threads)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            queue_min: (0..num_threads)
                .map(|_| CachePadded::new(AtomicU64::new(u64::MAX)))
                .collect(),
            window_min: (0..num_threads)
                .map(|_| CachePadded::new(AtomicU64::new(u64::MAX)))
                .collect(),
            active: (0..num_threads)
                .map(|_| CachePadded::new(AtomicBool::new(true)))
                .collect(),
            num_active: AtomicUsize::new(num_threads),
            sems: (0..num_threads).map(|_| Semaphore::new(0, 1)).collect(),
            os_tids: (0..num_threads).map(|_| AtomicI64::new(0)).collect(),
            membership: Mutex::new(Membership {
                open: false,
                id: 0,
                participant: vec![false; num_threads],
                participants: 0,
                subscribed: vec![true; num_threads],
            }),
            a_done: AtomicUsize::new(0),
            b_done: AtomicUsize::new(0),
            end_done: AtomicUsize::new(0),
            aware_claimed: AtomicBool::new(false),
            min_fold: AtomicU64::new(u64::MAX),
            gvt: AtomicU64::new(0),
            gvt_rounds: AtomicU64::new(0),
            terminated: AtomicBool::new(false),
            bars: [
                DynBarrier::new(num_threads),
                DynBarrier::new(num_threads),
                DynBarrier::new(num_threads),
            ],
            dd_lock: Mutex::new(()),
            controller_exit: AtomicBool::new(false),
            aff: Mutex::new(crate::worker::AffinityState::new(num_cores, num_threads)),
            gvt_wall_ns: AtomicU64::new(0),
            max_descheduled: AtomicUsize::new(0),
            gvt_regressions: AtomicU64::new(0),
        }
    }

    /// Current GVT estimate.
    pub fn gvt(&self) -> VirtualTime {
        load_vt(&self.gvt)
    }

    /// Send a message: the window minimum is published *before* the push so
    /// the event is covered by GVT accounting at every instant (see module
    /// docs of `sim_rt::shared` for the coverage argument).
    pub fn push_msg(&self, sender: usize, dst: usize, msg: Msg<P>) {
        let t = msg.recv_time();
        fetch_min(&self.window_min[sender], t);
        self.queues[dst].push(msg);
        fetch_min(&self.queue_min[dst], t);
        self.queue_len[dst].fetch_add(1, Ordering::AcqRel);
    }

    /// Drain the input queue of `me` into `out`; returns the count.
    pub fn drain(&self, me: usize, out: &mut Vec<Msg<P>>) -> usize {
        // Reset the minimum first: pushes racing with this drain re-publish
        // their minimum afterwards (or are covered by the sender's window).
        self.queue_min[me].store(u64::MAX, Ordering::Release);
        let mut n = 0;
        while let Some(m) = self.queues[me].pop() {
            out.push(m);
            n += 1;
        }
        if n > 0 {
            self.queue_len[me].fetch_sub(n, Ordering::AcqRel);
        }
        n
    }

    /// Fold a thread's local minimum and its send window into the round.
    pub fn fold_min(&self, me: usize, local: VirtualTime) {
        let w = self.window_min[me].swap(u64::MAX, Ordering::AcqRel);
        let m = local.ticks().min(w);
        self.min_fold.fetch_min(m, Ordering::AcqRel);
    }

    /// Pseudo-controller: fold the transient coverage and publish the new
    /// GVT. Returns it.
    pub fn compute_gvt(&self) -> VirtualTime {
        let mut g = self.min_fold.load(Ordering::Acquire);
        for i in 0..self.num_threads {
            g = g
                .min(self.window_min[i].load(Ordering::Acquire))
                .min(self.queue_min[i].load(Ordering::Acquire));
        }
        let old = self.gvt.load(Ordering::Acquire);
        if g < old {
            self.gvt_regressions.fetch_add(1, Ordering::AcqRel);
        } else {
            self.gvt.store(g, Ordering::Release);
        }
        self.gvt_rounds.fetch_add(1, Ordering::AcqRel);
        let gvt = load_vt(&self.gvt);
        if gvt >= self.end_time {
            self.terminated.store(true, Ordering::Release);
        }
        gvt
    }

    /// Open a round if none is open; returns whether `me` participates in
    /// the open round and its id.
    pub fn try_join_round(&self, me: usize) -> (bool, u64) {
        let mut m = self.membership.lock();
        if !m.open {
            m.open = true;
            let subscribed = m.subscribed.clone();
            m.participant.copy_from_slice(&subscribed);
            m.participants = subscribed.iter().filter(|&&s| s).count();
            self.a_done.store(0, Ordering::Release);
            self.b_done.store(0, Ordering::Release);
            self.end_done.store(0, Ordering::Release);
            self.aware_claimed.store(false, Ordering::Release);
            self.min_fold.store(u64::MAX, Ordering::Release);
            for b in &self.bars {
                b.set_expected(m.participants.max(1));
            }
        }
        (m.participant[me], m.id)
    }

    /// Peek the open round without opening one.
    pub fn round_waiting_for(&self, me: usize) -> Option<u64> {
        let m = self.membership.lock();
        if m.open && m.participant[me] {
            Some(m.id)
        } else {
            None
        }
    }

    /// Number of participants of the current round.
    pub fn participants(&self) -> usize {
        self.membership.lock().participants
    }

    /// Complete the End phase; the last participant closes the round.
    pub fn end_phase(&self) -> bool {
        let done = self.end_done.fetch_add(1, Ordering::AcqRel) + 1;
        let mut m = self.membership.lock();
        if done == m.participants {
            m.open = false;
            m.id += 1;
            true
        } else {
            false
        }
    }

    /// Algorithm 2: wake inactive threads with queued input. Must be called
    /// by the round's pseudo-controller (Phase Aware).
    pub fn activate(&self) -> usize {
        let mut n = 0;
        if self.num_active.load(Ordering::Acquire) < self.num_threads {
            let mut m = self.membership.lock();
            for i in 0..self.num_threads {
                if !self.active[i].load(Ordering::Acquire)
                    && self.queue_len[i].load(Ordering::Acquire) > 0
                {
                    self.active[i].store(true, Ordering::Release);
                    m.subscribed[i] = true;
                    self.num_active.fetch_add(1, Ordering::AcqRel);
                    self.sems[i].post();
                    n += 1;
                }
            }
        }
        n
    }

    /// `true` when `me` has no unfolded send window (its last sends are
    /// already folded into GVT accounting) — part of the deactivation
    /// condition.
    pub fn window_is_clear(&self, me: usize) -> bool {
        self.window_min[me].load(Ordering::Acquire) == u64::MAX
    }

    /// Algorithm 1 bookkeeping: de-schedule `me` (the caller then blocks on
    /// its semaphore). Refuses for the last active thread, and refuses when
    /// a round other than `completed_round` is open with `me` in its
    /// participant snapshot — parking then would strand the round.
    pub fn deactivate_self(&self, me: usize, completed_round: u64) -> bool {
        let mut m = self.membership.lock();
        if self.num_active.load(Ordering::Acquire) <= 1 {
            return false;
        }
        if m.open && m.participant[me] && m.id != completed_round {
            return false;
        }
        self.aff.lock().clear(me);
        self.active[me].store(false, Ordering::Release);
        m.subscribed[me] = false;
        self.num_active.fetch_sub(1, Ordering::AcqRel);
        let parked = self.num_threads - self.num_active.load(Ordering::Acquire);
        self.max_descheduled.fetch_max(parked, Ordering::AcqRel);
        true
    }

    /// Wake everyone for termination and stop the DD controller.
    pub fn release_all_for_termination(&self) {
        self.controller_exit.store(true, Ordering::Release);
        for i in 0..self.num_threads {
            if !self.active[i].load(Ordering::Acquire) {
                self.sems[i].post();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::{EventKey, EventUid, LpId};

    fn msg(t: f64) -> Msg<()> {
        Msg::Anti(EventKey {
            recv_time: VirtualTime::from_f64(t),
            dst: LpId(0),
            uid: EventUid::new(LpId(0), 0),
        })
    }

    fn shared(n: usize) -> RtShared<()> {
        RtShared::new(n, 2, VirtualTime::from_f64(100.0))
    }

    #[test]
    fn push_drain_roundtrip() {
        let s = shared(2);
        s.push_msg(0, 1, msg(5.0));
        s.push_msg(0, 1, msg(3.0));
        assert_eq!(s.queue_len[1].load(Ordering::Acquire), 2);
        let mut out = Vec::new();
        assert_eq!(s.drain(1, &mut out), 2);
        assert_eq!(s.queue_len[1].load(Ordering::Acquire), 0);
    }

    #[test]
    fn gvt_covers_parked_queue() {
        let s = shared(2);
        s.try_join_round(0);
        s.fold_min(0, VirtualTime::from_f64(10.0));
        s.push_msg(0, 1, msg(4.0));
        let g = s.compute_gvt();
        // window of sender (reset by fold? fold happened before push) —
        // covered by queue_min and the sender's residual window.
        assert!(g <= VirtualTime::from_f64(4.0));
    }

    #[test]
    fn rounds_open_and_close() {
        let s = shared(2);
        let (p0, id0) = s.try_join_round(0);
        assert!(p0);
        let (p1, _) = s.try_join_round(1);
        assert!(p1);
        assert_eq!(s.participants(), 2);
        assert!(!s.end_phase());
        assert!(s.end_phase());
        let (_, id1) = s.try_join_round(0);
        assert_eq!(id1, id0 + 1);
    }

    #[test]
    fn deactivate_then_activate_flow() {
        let s = shared(3);
        assert!(s.deactivate_self(2, 0));
        assert_eq!(s.num_active.load(Ordering::Acquire), 2);
        // A message arrives for the parked thread.
        s.push_msg(0, 2, msg(1.0));
        assert_eq!(s.activate(), 1);
        assert_eq!(s.num_active.load(Ordering::Acquire), 3);
        // The semaphore now holds the wake token.
        assert!(s.sems[2].try_wait());
    }

    #[test]
    fn last_active_thread_cannot_deactivate() {
        let s = shared(2);
        assert!(s.deactivate_self(0, 0));
        assert!(!s.deactivate_self(1, 0));
    }

    #[test]
    fn deactivation_refused_while_a_fresh_round_waits() {
        let s = shared(3);
        let (_, id) = s.try_join_round(0);
        // Thread 0 completed round `id`, may park while it is still open…
        assert!(s.deactivate_self(0, id));
        // …but thread 1 may not park for a round it has not completed.
        assert!(!s.deactivate_self(1, id.wrapping_sub(1)));
    }

    #[test]
    fn gvt_terminates_past_end() {
        let s = shared(1);
        s.try_join_round(0);
        s.fold_min(0, VirtualTime::INFINITY);
        let g = s.compute_gvt();
        assert!(g.is_infinite());
        assert!(s.terminated.load(Ordering::Acquire));
    }
}
