//! # ggpdes-thread-rt — the engine on real OS threads
//!
//! The same Time Warp engine and the same six scheduling systems as
//! `sim-rt`, executed on real `std::thread`s: crossbeam `SegQueue` input
//! queues, cache-padded atomics for the `active_threads` array, parking-lot
//! semaphores as `sem_locks`, `sched_setaffinity` for the three affinity
//! policies.
//!
//! Its purpose is *functional* validation under genuine concurrency: any run
//! must commit exactly the sequential oracle's trace. Performance figures
//! come from the deterministic `sim-rt` (this host's core count is not the
//! paper's KNL). One documented deviation from the paper: GVT round
//! *membership* transitions take a small mutex (the hot per-event paths stay
//! lock-free); see DESIGN.md.

pub mod affinity;
pub mod batch;
pub mod ckpt;
pub mod runner;
pub mod shared;
pub mod supervisor;
pub mod sync;
pub mod worker;

pub use affinity::AffinityState;
pub use batch::SendBatcher;
pub use ckpt::CkptSink;
pub use runner::{
    run_threads, run_threads_attempt, run_threads_ingest, run_threads_resumable, RtAttempt,
    RtResult, RtRunConfig, RunError,
};
pub use shared::{IngestPlane, RemoteBoundary, RtShared};
pub use supervisor::{
    run_supervised, run_supervised_ingest, Recovered, SupervisedRun, SupervisorConfig,
};
pub use sync::{DynBarrier, Semaphore};
