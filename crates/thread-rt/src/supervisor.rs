//! Supervised execution with bounded recovery and graceful degradation.
//!
//! [`run_supervised`] wraps the real-thread runner in a retry loop:
//!
//! 1. Run an attempt (checkpointing on the configured GVT cadence).
//! 2. On [`RunError`], restore the newest checkpoint. If the failure was a
//!    worker panic and a checkpoint exists, the dead thread's LPs are
//!    remapped onto the survivors (least-loaded first, using the committed
//!    counts the joined survivors reported) and the run resumes one thread
//!    smaller. The scripted kill that felled the attempt is consumed so it
//!    does not re-fire on the restored fault streams.
//! 3. Retries are bounded by `max_recoveries` with exponential backoff.
//!    When the budget is exhausted the run *degrades* instead of erroring:
//!    the sequential reference engine finishes the simulation from the last
//!    consistent cut, so a supervised run always completes.

use crate::runner::{run_threads_attempt, RtResult, RtRunConfig, RunError};
use pdes_core::{
    run_sequential_from_with, run_sequential_with, Checkpoint, FaultInjector, IngestGate, Model,
    SequentialResult, SimThreadId,
};
use std::sync::Arc;

pub use pdes_core::SupervisorConfig;

/// How a supervised run finished.
// One instance per run; the size gap vs `Sequential` doesn't matter.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Recovered {
    /// The parallel runtime completed (possibly after recoveries).
    Parallel(RtResult),
    /// Recovery was exhausted; the sequential engine finished the run from
    /// the last checkpoint (or from genesis when none existed).
    Sequential(SequentialResult),
}

impl Recovered {
    pub fn committed(&self) -> u64 {
        match self {
            Recovered::Parallel(r) => r.metrics.committed,
            Recovered::Sequential(s) => s.committed,
        }
    }

    pub fn commit_digest(&self) -> u64 {
        match self {
            Recovered::Parallel(r) => r.metrics.commit_digest,
            Recovered::Sequential(s) => s.commit_digest,
        }
    }

    /// Final per-LP state digests, in LP order.
    pub fn state_digests(&self) -> &[u64] {
        match self {
            Recovered::Parallel(r) => &r.digests,
            Recovered::Sequential(s) => &s.state_digests,
        }
    }
}

/// Outcome of a supervised run — always a completed simulation.
#[derive(Debug, Clone)]
pub struct SupervisedRun {
    pub outcome: Recovered,
    /// Recoveries performed (0 = first attempt succeeded).
    pub recoveries: u32,
    /// Whether the run fell back to the sequential engine.
    pub degraded: bool,
    /// One line per failed attempt, for operators and tests.
    pub log: Vec<String>,
}

impl SupervisedRun {
    pub fn completed_parallel(&self) -> bool {
        matches!(self.outcome, Recovered::Parallel(_))
    }
}

/// Run `model` under supervision: recover from worker failures via the
/// checkpoint/restart path, degrade to sequential execution when the retry
/// budget is exhausted. Never returns an error — a supervised run completes.
pub fn run_supervised<M: Model>(
    model: &Arc<M>,
    rc: &RtRunConfig,
    sup: &SupervisorConfig,
) -> SupervisedRun {
    run_supervised_ingest(model, rc, sup, None)
}

/// [`run_supervised`] with an optional live ingest gate. The gate outlives
/// every failed attempt: after each restore its accepted-but-uncut events
/// are replayed (exactly once — see `pdes_core::ingest`), and the degraded
/// sequential path merges the accepted suffix into the oracle's pending set
/// so even a fully exhausted run commits every accepted event.
pub fn run_supervised_ingest<M: Model>(
    model: &Arc<M>,
    rc: &RtRunConfig,
    sup: &SupervisorConfig,
    ingest: Option<Arc<IngestGate<M::Payload>>>,
) -> SupervisedRun {
    let mut cfg = rc.clone();
    let mut ckpt: Option<Checkpoint<M::State, M::Payload>> = None;
    // Kills consumed since the newest checkpoint's fault cursor was taken.
    // A checkpoint's cursor already embeds every consumption applied before
    // the attempt that produced it, so the list resets whenever a fresher
    // checkpoint arrives — replaying it on top would consume twice.
    let mut consumed: Vec<usize> = Vec::new();
    let mut recoveries = 0u32;
    let mut log = Vec::new();

    loop {
        let injector = match ckpt.as_ref().and_then(|c| c.cursor.as_ref()) {
            Some(cur) => FaultInjector::with_cursor(cfg.faults.clone(), cur),
            None => FaultInjector::new(cfg.faults.clone()),
        };
        for &t in &consumed {
            injector.consume_kill(t);
        }
        let attempt =
            run_threads_attempt(model, &cfg, ckpt.as_ref(), Some(injector), ingest.clone());
        let loads = attempt.thread_loads;
        if let Some(c) = attempt.checkpoint {
            ckpt = Some(c);
            consumed.clear();
        }
        let err = match attempt.outcome {
            Ok(r) => {
                return SupervisedRun {
                    outcome: Recovered::Parallel(r),
                    recoveries,
                    degraded: false,
                    log,
                }
            }
            Err(e) => e,
        };
        log.push(format!(
            "attempt {} failed: {}",
            recoveries + 1,
            match &err {
                RunError::Stalled(_) => "stalled (watchdog)".to_string(),
                RunError::WorkerPanicked { thread, message } =>
                    format!("worker {thread} panicked: {message}"),
                RunError::Ingest(e) => format!("ingest journal failed: {e}"),
            }
        ));
        if recoveries >= sup.max_recoveries {
            // Graceful degradation: finish sequentially from the last cut,
            // with the accepted-but-uncut ingest suffix merged into the
            // oracle's pending set (older accepted events are inside the
            // cut already).
            let seq = match &ckpt {
                Some(c) => {
                    let extra: Vec<_> = ingest
                        .as_ref()
                        .map(|g| {
                            g.accepted_events()
                                .into_iter()
                                .filter(|e| e.send_time >= c.gvt)
                                .collect()
                        })
                        .unwrap_or_default();
                    run_sequential_from_with(model, &cfg.engine, c, &extra, None)
                }
                None => {
                    let extra = ingest
                        .as_ref()
                        .map(|g| g.accepted_events())
                        .unwrap_or_default();
                    run_sequential_with(model, &cfg.engine, &extra, None)
                }
            };
            if let Some(g) = &ingest {
                g.close();
            }
            log.push("recovery budget exhausted; degraded to sequential".into());
            return SupervisedRun {
                outcome: Recovered::Sequential(seq),
                recoveries,
                degraded: true,
                log,
            };
        }
        recoveries += 1;
        if let RunError::WorkerPanicked { thread, .. } = &err {
            let dead = *thread;
            consumed.push(dead);
            // Remap the dead worker's LPs onto the survivors when there is a
            // checkpoint to resume under the new map and enough survivors to
            // take the load; a pre-checkpoint failure just restarts from
            // genesis on the original map (the thread slot is respawned).
            if cfg.num_threads > 1 {
                if let Some(c) = &mut ckpt {
                    c.map = c.map.rebalanced_without(SimThreadId(dead as u32), &loads);
                    cfg.num_threads -= 1;
                }
            }
        }
        std::thread::sleep(sup.backoff * (1u32 << (recoveries - 1).min(16)));
    }
}
