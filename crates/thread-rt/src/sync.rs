//! Blocking synchronization primitives for the real-thread runtime: a binary
//! semaphore (the paper's `sem_locks` entries) and a dynamic-membership
//! barrier (the synchronous GVT rendezvous whose expected count changes as
//! threads de-schedule).

use parking_lot::{Condvar, Mutex};

/// A counting semaphore saturating at a cap (binary with `cap = 1`), built
/// on parking-lot primitives — `sem_wait` blocks without consuming CPU,
/// which is exactly the de-scheduling the paper relies on.
///
/// The semaphore can be *poisoned* (by the liveness watchdog or a panicking
/// sibling): a poisoned semaphore never blocks again — every current and
/// future `wait` returns immediately without consuming a token, so a stalled
/// run can always be drained instead of hanging in `join`.
pub struct Semaphore {
    state: Mutex<SemState>,
    cap: u32,
    cv: Condvar,
}

struct SemState {
    count: u32,
    poisoned: bool,
}

impl Semaphore {
    pub fn new(initial: u32, cap: u32) -> Self {
        assert!(cap >= 1 && initial <= cap);
        Semaphore {
            state: Mutex::new(SemState {
                count: initial,
                poisoned: false,
            }),
            cap,
            cv: Condvar::new(),
        }
    }

    /// Block until the count is positive, then decrement. Returns
    /// immediately (without decrementing) once poisoned.
    pub fn wait(&self) {
        let mut s = self.state.lock();
        while s.count == 0 && !s.poisoned {
            self.cv.wait(&mut s);
        }
        if !s.poisoned {
            s.count -= 1;
        }
    }

    /// Increment (saturating) and wake one waiter.
    pub fn post(&self) {
        let mut s = self.state.lock();
        s.count = (s.count + 1).min(self.cap);
        drop(s);
        self.cv.notify_one();
    }

    /// Non-blocking acquire attempt.
    pub fn try_wait(&self) -> bool {
        let mut s = self.state.lock();
        if s.count > 0 {
            s.count -= 1;
            true
        } else {
            false
        }
    }

    /// Make every current and future `wait` return immediately (emergency
    /// drain for watchdog trips and panic unwinding).
    pub fn poison(&self) {
        self.state.lock().poisoned = true;
        self.cv.notify_all();
    }

    /// Tokens currently held (diagnostics).
    pub fn tokens(&self) -> u32 {
        self.state.lock().count
    }
}

/// A generation barrier whose expected arrival count may change while
/// threads wait (a de-scheduling thread leaves the group; the update
/// re-checks completion so waiters are not stranded).
pub struct DynBarrier {
    inner: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    expected: usize,
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl DynBarrier {
    pub fn new(expected: usize) -> Self {
        assert!(expected >= 1);
        DynBarrier {
            inner: Mutex::new(BarrierState {
                expected,
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Arrive and block until the current generation completes. Returns
    /// `true` for exactly one arriver per generation (the "serial" thread).
    /// A poisoned barrier never blocks: every arrival passes straight
    /// through as a non-serial waiter.
    pub fn wait(&self) -> bool {
        let mut s = self.inner.lock();
        if s.poisoned {
            return false;
        }
        let gen = s.generation;
        s.arrived += 1;
        if s.arrived >= s.expected {
            s.arrived = 0;
            s.generation += 1;
            drop(s);
            self.cv.notify_all();
            return true;
        }
        while s.generation == gen && !s.poisoned {
            self.cv.wait(&mut s);
        }
        false
    }

    /// Release every waiter and make all future arrivals pass through
    /// (emergency drain for watchdog trips and panic unwinding).
    pub fn poison(&self) {
        self.inner.lock().poisoned = true;
        self.cv.notify_all();
    }

    /// Change the expected count, completing the generation if the change
    /// satisfies it.
    pub fn set_expected(&self, expected: usize) {
        assert!(expected >= 1);
        let mut s = self.inner.lock();
        s.expected = expected;
        if s.arrived >= s.expected {
            s.arrived = 0;
            s.generation += 1;
            drop(s);
            self.cv.notify_all();
        }
    }

    pub fn expected(&self) -> usize {
        self.inner.lock().expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn semaphore_blocks_until_post() {
        let sem = Arc::new(Semaphore::new(0, 1));
        let hits = Arc::new(AtomicUsize::new(0));
        let (s2, h2) = (Arc::clone(&sem), Arc::clone(&hits));
        let h = std::thread::spawn(move || {
            s2.wait();
            h2.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(hits.load(Ordering::SeqCst), 0, "must still be blocked");
        sem.post();
        h.join().expect("join");
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn binary_semaphore_saturates() {
        let sem = Semaphore::new(0, 1);
        sem.post();
        sem.post();
        sem.post();
        assert!(sem.try_wait());
        assert!(!sem.try_wait(), "binary semaphore holds at most one token");
    }

    #[test]
    fn barrier_releases_all_and_elects_one_serial() {
        let bar = Arc::new(DynBarrier::new(4));
        let serials = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&bar);
                let s = Arc::clone(&serials);
                std::thread::spawn(move || {
                    if b.wait() {
                        s.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(serials.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn shrinking_expected_releases_waiters() {
        let bar = Arc::new(DynBarrier::new(3));
        let b = Arc::clone(&bar);
        let h = std::thread::spawn(move || b.wait());
        std::thread::sleep(Duration::from_millis(30));
        // Two of three "leave": expected drops to 1, completing the round.
        bar.set_expected(1);
        h.join().expect("join");
    }

    #[test]
    fn poisoned_semaphore_releases_waiter_and_never_blocks() {
        let sem = Arc::new(Semaphore::new(0, 1));
        let s2 = Arc::clone(&sem);
        let h = std::thread::spawn(move || s2.wait());
        std::thread::sleep(Duration::from_millis(30));
        sem.poison();
        h.join().expect("join");
        // Future waits return immediately and keep any tokens intact.
        sem.post();
        sem.wait();
        assert_eq!(sem.tokens(), 1);
    }

    #[test]
    fn poisoned_barrier_releases_waiters() {
        let bar = Arc::new(DynBarrier::new(3));
        let b = Arc::clone(&bar);
        let h = std::thread::spawn(move || b.wait());
        std::thread::sleep(Duration::from_millis(30));
        bar.poison();
        assert!(!h.join().expect("join"), "poisoned release is non-serial");
        assert!(!bar.wait(), "future arrivals pass straight through");
    }

    #[test]
    fn barrier_generations_are_reusable() {
        let bar = Arc::new(DynBarrier::new(2));
        for _ in 0..3 {
            let b = Arc::clone(&bar);
            let h = std::thread::spawn(move || b.wait());
            bar.wait();
            h.join().expect("join");
        }
    }
}
