//! Spawn, run, and collect a real-thread simulation.

use crate::affinity::num_cores;
use crate::shared::RtShared;
use crate::worker::{controller_loop, worker_loop, WorkerResult};
use metrics::RunMetrics;
use pdes_core::{EngineConfig, LpId, LpMap, Model, SimThreadId, ThreadEngine};
use sim_rt::{Scheduler, SystemConfig};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for a real-thread run.
#[derive(Debug, Clone)]
pub struct RtRunConfig {
    pub num_threads: usize,
    pub engine: EngineConfig,
    pub system: SystemConfig,
    /// Cores used for the affinity policies (defaults to the host's count).
    pub pin_cores: usize,
}

impl RtRunConfig {
    pub fn new(num_threads: usize, engine: EngineConfig, system: SystemConfig) -> Self {
        RtRunConfig {
            num_threads,
            engine,
            system,
            pin_cores: num_cores(),
        }
    }
}

/// Result of a real-thread run.
#[derive(Debug, Clone)]
pub struct RtResult {
    pub metrics: RunMetrics,
    /// Final state digest of every LP, ordered by LP id.
    pub digests: Vec<u64>,
    pub gvt_regressions: u64,
}

/// Run `model` on real threads. Blocks until the simulation completes.
pub fn run_threads<M: Model>(model: &Arc<M>, rc: &RtRunConfig) -> RtResult {
    let n = rc.num_threads;
    assert!(
        model.num_lps().is_multiple_of(n),
        "weak scaling requires LPs divisible by thread count"
    );
    let map = LpMap::new(model.num_lps(), n, rc.engine.mapping);
    let shared: Arc<RtShared<M::Payload>> =
        Arc::new(RtShared::new(n, rc.pin_cores, rc.engine.end_time));

    // Build engines and pre-route initial events.
    let mut engines = Vec::with_capacity(n);
    for t in 0..n {
        let mut eng = ThreadEngine::new(Arc::clone(model), map, SimThreadId(t as u32), &rc.engine);
        for (dst, msg) in eng.take_init_events() {
            shared.push_msg(t, dst.index(), msg);
        }
        engines.push(eng);
    }

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (t, eng) in engines.into_iter().enumerate() {
        let sh = Arc::clone(&shared);
        let sys = rc.system;
        let ecfg = rc.engine.clone();
        let pin_cores = rc.pin_cores;
        handles.push(
            std::thread::Builder::new()
                .name(format!("sim{t}"))
                .spawn(move || worker_loop(t, eng, sh, sys, ecfg, pin_cores))
                .expect("spawn worker"),
        );
    }
    let controller = if matches!(rc.system.scheduler, Scheduler::DdPdes) {
        let sh = Arc::clone(&shared);
        Some(
            std::thread::Builder::new()
                .name("controller".into())
                .spawn(move || controller_loop(sh))
                .expect("spawn controller"),
        )
    } else {
        None
    };

    let mut results: Vec<WorkerResult> = Vec::with_capacity(n);
    for h in handles {
        results.push(h.join().expect("worker panicked"));
    }
    shared.controller_exit.store(true, Ordering::Release);
    if let Some(c) = controller {
        c.join().expect("controller panicked");
    }
    let wall = start.elapsed();

    let mut total = pdes_core::ThreadStats::default();
    let mut digests: Vec<(LpId, u64)> = Vec::new();
    for r in &results {
        total.merge(&r.stats);
        digests.extend(r.digests.iter().copied());
    }
    digests.sort_by_key(|&(lp, _)| lp);

    let metrics = RunMetrics {
        system: rc.system.name(),
        threads: n,
        lps: model.num_lps(),
        wall_secs: wall.as_secs_f64(),
        committed: total.committed,
        processed: total.processed,
        rolled_back: total.rolled_back,
        rollbacks: total.rollbacks,
        antis_sent: total.antis_sent,
        gvt_rounds: shared.gvt_rounds.load(Ordering::Acquire),
        gvt_cpu_secs: shared.gvt_wall_ns.load(Ordering::Acquire) as f64 * 1e-9,
        max_descheduled: shared.max_descheduled.load(Ordering::Acquire),
        commit_digest: total.commit_digest,
        ..Default::default()
    };
    RtResult {
        metrics,
        digests: digests.into_iter().map(|(_, d)| d).collect(),
        gvt_regressions: shared.gvt_regressions.load(Ordering::Acquire),
    }
}
