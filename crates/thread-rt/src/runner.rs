//! Spawn, run, and collect a real-thread simulation.
//!
//! Robustness contract: [`run_threads`] returns `Err` — never hangs, never
//! aborts the process — when a worker panics or the liveness watchdog
//! detects that GVT has stopped advancing. Both paths poison every blocking
//! primitive so sibling threads drain and join promptly, and the stall path
//! carries a structured [`StallDump`] of per-thread state for post-mortems.

use crate::affinity::num_cores;
use crate::shared::RtShared;
use crate::worker::{controller_loop, worker_loop, WorkerResult};
use metrics::RunMetrics;
use pdes_core::{
    EngineConfig, FaultInjector, FaultPlan, LpId, LpMap, Model, SimThreadId, StallDump,
    ThreadEngine,
};
use sim_rt::{Scheduler, SystemConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for a real-thread run.
#[derive(Debug, Clone)]
pub struct RtRunConfig {
    pub num_threads: usize,
    pub engine: EngineConfig,
    pub system: SystemConfig,
    /// Cores used for the affinity policies (defaults to the host's count).
    pub pin_cores: usize,
    /// Fault-injection plan (empty ⇒ zero-cost pass-through).
    pub faults: FaultPlan,
    /// Wall-clock bound on GVT progress before the liveness watchdog trips
    /// (`None` disables the watchdog entirely).
    pub watchdog: Option<Duration>,
}

impl RtRunConfig {
    pub fn new(num_threads: usize, engine: EngineConfig, system: SystemConfig) -> Self {
        RtRunConfig {
            num_threads,
            engine,
            system,
            pin_cores: num_cores(),
            faults: FaultPlan::default(),
            watchdog: Some(Duration::from_secs(30)),
        }
    }

    /// Attach a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Override (or disable, with `None`) the liveness watchdog bound.
    pub fn with_watchdog(mut self, bound: Option<Duration>) -> Self {
        self.watchdog = bound;
        self
    }
}

/// Result of a real-thread run.
#[derive(Debug, Clone)]
pub struct RtResult {
    pub metrics: RunMetrics,
    /// Final state digest of every LP, ordered by LP id.
    pub digests: Vec<u64>,
    pub gvt_regressions: u64,
    /// Fault injections actually performed (all zero without a plan).
    pub fault_counts: pdes_core::FaultCounts,
}

/// Why a real-thread run failed to complete.
#[derive(Debug)]
pub enum RunError {
    /// The liveness watchdog saw no GVT progress within its bound; the run
    /// was torn down and this dump captured where every thread was stuck.
    Stalled(Box<StallDump>),
    /// A worker thread panicked; siblings were woken and drained.
    WorkerPanicked { thread: usize, message: String },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Stalled(dump) => write!(f, "{dump}"),
            RunError::WorkerPanicked { thread, message } => {
                write!(f, "worker thread {thread} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Render a panic payload (the two shapes `panic!` actually produces).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `model` on real threads. Blocks until the simulation completes,
/// panics, or trips the liveness watchdog — it never hangs indefinitely
/// while the watchdog is armed.
pub fn run_threads<M: Model>(model: &Arc<M>, rc: &RtRunConfig) -> Result<RtResult, RunError> {
    let n = rc.num_threads;
    assert!(
        model.num_lps().is_multiple_of(n),
        "weak scaling requires LPs divisible by thread count"
    );
    let map = LpMap::new(model.num_lps(), n, rc.engine.mapping);
    let mut shared_init: RtShared<M::Payload> = RtShared::new(n, rc.pin_cores, rc.engine.end_time);
    shared_init.set_faults(FaultInjector::new(rc.faults.clone()));
    let shared = Arc::new(shared_init);

    // Build engines and pre-route initial events.
    let mut engines = Vec::with_capacity(n);
    for t in 0..n {
        let mut eng = ThreadEngine::new(Arc::clone(model), map, SimThreadId(t as u32), &rc.engine);
        for (dst, msg) in eng.take_init_events() {
            shared.push_msg(t, dst.index(), msg);
        }
        engines.push(eng);
    }

    let start = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (t, eng) in engines.into_iter().enumerate() {
        let sh = Arc::clone(&shared);
        let sys = rc.system;
        let ecfg = rc.engine.clone();
        let pin_cores = rc.pin_cores;
        handles.push(
            std::thread::Builder::new()
                .name(format!("sim{t}"))
                .spawn(move || {
                    // A panicking worker must not strand its siblings in
                    // semaphores or barriers: poison everything, then report.
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        worker_loop(t, eng, Arc::clone(&sh), sys, ecfg, pin_cores)
                    }));
                    match caught {
                        Ok(r) => Ok(r),
                        Err(payload) => {
                            sh.poison_all();
                            Err(panic_message(payload.as_ref()))
                        }
                    }
                })
                .expect("spawn worker"),
        );
    }
    let controller = if matches!(rc.system.scheduler, Scheduler::DdPdes) {
        let sh = Arc::clone(&shared);
        Some(
            std::thread::Builder::new()
                .name("controller".into())
                .spawn(move || controller_loop(sh))
                .expect("spawn controller"),
        )
    } else {
        None
    };

    // Liveness watchdog: sample (gvt, gvt_rounds) and trip when neither has
    // changed within the bound — the run is wedged, so capture a structured
    // dump and poison every primitive instead of hanging in `join` below.
    let monitor_exit = Arc::new(AtomicBool::new(false));
    let monitor = rc.watchdog.map(|bound| {
        let sh = Arc::clone(&shared);
        let exit = Arc::clone(&monitor_exit);
        let system = rc.system.name();
        let tick = (bound / 8).clamp(Duration::from_millis(5), Duration::from_millis(500));
        std::thread::Builder::new()
            .name("watchdog".into())
            .spawn(move || -> Option<Box<StallDump>> {
                let mut last = (0u64, 0u64);
                let mut last_change = Instant::now();
                loop {
                    std::thread::park_timeout(tick);
                    if exit.load(Ordering::Acquire) || sh.terminated.load(Ordering::Acquire) {
                        return None;
                    }
                    let now = (sh.gvt().ticks(), sh.gvt_rounds.load(Ordering::Acquire));
                    if now != last {
                        last = now;
                        last_change = Instant::now();
                        continue;
                    }
                    if last_change.elapsed() < bound {
                        continue;
                    }
                    let reason = format!(
                        "no GVT progress for {:.1}s (bound {:.1}s)",
                        last_change.elapsed().as_secs_f64(),
                        bound.as_secs_f64()
                    );
                    let dump = Box::new(sh.build_stall_dump(&reason, &system));
                    sh.watchdog_tripped.store(true, Ordering::Release);
                    sh.poison_all();
                    return Some(dump);
                }
            })
            .expect("spawn watchdog")
    });

    let mut results: Vec<WorkerResult> = Vec::with_capacity(n);
    let mut first_panic: Option<(usize, String)> = None;
    for (t, h) in handles.into_iter().enumerate() {
        match h.join().expect("worker join") {
            Ok(r) => results.push(r),
            Err(message) => {
                if first_panic.is_none() {
                    first_panic = Some((t, message));
                }
            }
        }
    }
    shared.controller_exit.store(true, Ordering::Release);
    if let Some(c) = controller {
        c.join().expect("controller panicked");
    }
    monitor_exit.store(true, Ordering::Release);
    let stall = monitor.and_then(|m| {
        m.thread().unpark();
        m.join().expect("watchdog panicked")
    });
    let wall = start.elapsed();

    // Panic beats stall: a panicked worker stops folding minima, so a
    // watchdog trip during teardown is a symptom, not the cause.
    if let Some((thread, message)) = first_panic {
        return Err(RunError::WorkerPanicked { thread, message });
    }
    if let Some(dump) = stall {
        return Err(RunError::Stalled(dump));
    }

    let mut total = pdes_core::ThreadStats::default();
    let mut digests: Vec<(LpId, u64)> = Vec::new();
    for r in &results {
        total.merge(&r.stats);
        digests.extend(r.digests.iter().copied());
    }
    digests.sort_by_key(|&(lp, _)| lp);

    let metrics = RunMetrics {
        system: rc.system.name(),
        threads: n,
        lps: model.num_lps(),
        wall_secs: wall.as_secs_f64(),
        committed: total.committed,
        processed: total.processed,
        rolled_back: total.rolled_back,
        rollbacks: total.rollbacks,
        antis_sent: total.antis_sent,
        gvt_rounds: shared.gvt_rounds.load(Ordering::Acquire),
        gvt_cpu_secs: shared.gvt_wall_ns.load(Ordering::Acquire) as f64 * 1e-9,
        max_descheduled: shared.max_descheduled.load(Ordering::Acquire),
        commit_digest: total.commit_digest,
        pin_failures: shared.aff.lock().pin_failures,
        ..Default::default()
    };
    Ok(RtResult {
        metrics,
        digests: digests.into_iter().map(|(_, d)| d).collect(),
        gvt_regressions: shared.gvt_regressions.load(Ordering::Acquire),
        fault_counts: shared.faults.counts(),
    })
}
